#!/usr/bin/env bash
# Dataset-pack smoke: the full packed-graph pipeline end to end.
#
#   1. Parallel-generate a mid-scale dataset stand-in and pack it into the
#      delta+varint container (`scalagraph-sim graph pack`).
#   2. Mmap-open the container and print its header (`graph info`) — this
#      exercises open-time validation (magic/version/checksum/structure).
#   3. Replay a conformance corpus scenario with `--packed`, which re-runs
#      the scenario on a packed on-disk backing and fails unless the
#      replayed report is bit-identical to the in-memory run.
#   4. Re-measure the dataset benchmarks and gate against the checked-in
#      BENCH_datasets.json (pack ratio >10% worse, or gen/cold-open
#      speedups below half their recorded values, fail the job).
#
# Usage: scripts/dataset_pack_smoke.sh [--skip-bench]
#   --skip-bench  run only the pack/info/replay smoke (fast path)
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_BENCH=0
for a in "$@"; do
  case "$a" in
    --skip-bench) SKIP_BENCH=1 ;;
    *) echo "unknown flag: $a" >&2; exit 2 ;;
  esac
done

SIM=(cargo run --release --bin scalagraph-sim --)
CONTAINER=$(mktemp -t scalagraph-smoke-XXXXXX.sgpk)
trap 'rm -f "$CONTAINER"' EXIT

echo "== pack: Pokec/4 (parallel generation -> packed container) =="
"${SIM[@]}" graph pack --graph PK --scale 4 --seed 42 --out "$CONTAINER"

echo "== info: mmap-open and validate the container =="
"${SIM[@]}" graph info "$CONTAINER"

echo "== replay: corpus scenario on packed backing must be bit-identical =="
"${SIM[@]}" replay --packed corpus/converge-pagerank-dense.json

if [ "$SKIP_BENCH" = 0 ]; then
  echo "== bench: regression gates vs checked-in BENCH_datasets.json =="
  cargo run --release -p scalagraph-bench --bin bench_datasets -- \
    --out BENCH_datasets.ci.json --check BENCH_datasets.json
fi

echo "dataset-pack smoke: OK"
