#!/usr/bin/env bash
# Regenerates every table and figure of the paper (plus the extension
# experiments) into out/experiments/. Scale can be overridden per run:
#   SCALAGRAPH_SCALE=256 scripts/run_all_experiments.sh
set -euo pipefail
cd "$(dirname "$0")/.."
out=out/experiments
mkdir -p "$out"
bins=(tables_1_3 fig4 fig6 fig8 table2 fig14 fig15 fig16 fig17 fig18 \
      fig19a fig19b fig20 fig21 table4 ext_noc ext_reorder)
for b in "${bins[@]}"; do
    echo "== $b"
    cargo run --release -q -p scalagraph-bench --bin "$b" > "$out/$b.txt"
done
echo "All experiment outputs written to $out/"
