#!/usr/bin/env python3
"""Rebuilds the quoted output blocks in EXPERIMENTS.md from out/experiments/.

Run scripts/run_all_experiments.sh first. Prose and the headline table are
kept; only the fenced code blocks following each "## <title> (`--bin X`)"
heading are replaced with the fresh capture of X.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "out" / "experiments"
MD = ROOT / "EXPERIMENTS.md"


def main() -> int:
    text = MD.read_text()
    # Find headings that name a regenerator binary, then replace the next
    # fenced block.
    pattern = re.compile(r"\(`--bin (\w+)`\)(.*?)```\n(.*?)```", re.S)

    def sub(m: re.Match) -> str:
        name, prose, _old = m.groups()
        path = OUT / f"{name}.txt"
        if not path.exists():
            print(f"  (no fresh capture for {name}, keeping old block)")
            return m.group(0)
        fresh = path.read_text().strip()
        print(f"  refreshed {name}")
        return f"(`--bin {name}`){prose}```\n{fresh}\n```"

    MD.write_text(pattern.sub(sub, text))
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
