//! Immutable graph cache with single-flight construction.
//!
//! Building a CSR is the most expensive prefix of every job: a thousand
//! queued scenarios on the same three graph families must not build a
//! thousand graphs. The cache maps a [`GraphSpec`] — a pure description of
//! the generator, its seeds, and its post-processing — to the `Arc<Csr>` it
//! builds. Soundness rests on two facts:
//!
//! * generation is a **pure function** of the spec (same spec, same bytes),
//!   so a cached graph is indistinguishable from a fresh build;
//! * the cached CSR is **immutable** — every consumer holds a shared `Arc`
//!   and the simulator never mutates its input graph.
//!
//! Construction is *single-flight*: the first caller of a spec inserts a
//! `Building` placeholder and builds outside the lock; concurrent callers
//! of the same spec block on a condvar and receive the published `Arc`
//! instead of racing N redundant builds. Deterministic build failures are
//! cached too (`Failed`), so a storm of identical malformed specs fails
//! fast instead of re-deriving the same error.
//!
//! Eviction is LRU over **resident bytes** (each finished graph's actual
//! CSR heap size) with a secondary bounded entry count, so one paper-scale
//! graph cannot silently pin N× memory behind an entry-count-only policy.
//! `Building` placeholders are never evicted — a waiter is parked on them.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use scalagraph_conformance::GraphSpec;
use scalagraph_graph::Csr;

/// Counters describing the cache's behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphCacheStats {
    /// Graphs actually constructed (successful builds).
    pub builds: u64,
    /// Requests served from a cached graph (including waiters that joined
    /// an in-flight build).
    pub hits: u64,
    /// Requests that had to trigger a build.
    pub misses: u64,
    /// Ready entries evicted by the LRU policy.
    pub evictions: u64,
    /// Actual resident bytes of currently cached graphs (sum of each
    /// cached CSR's heap footprint).
    pub resident_bytes: u64,
    /// Configured resident-byte budget; 0 when the cache is unbounded.
    pub byte_budget: u64,
}

enum Entry {
    /// A builder is constructing this graph right now; wait, don't build.
    Building,
    /// The finished graph, with an LRU stamp and its measured heap size.
    Ready {
        graph: Arc<Csr>,
        last_used: u64,
        bytes: u64,
    },
    /// The spec deterministically fails to build; cached so repeat
    /// offenders fail fast.
    Failed { message: String, last_used: u64 },
}

struct State {
    entries: HashMap<GraphSpec, Entry>,
    tick: u64,
    stats: GraphCacheStats,
}

/// A bounded, thread-safe, single-flight cache of immutable CSR graphs.
pub struct GraphCache {
    state: Mutex<State>,
    published: Condvar,
    capacity: usize,
    byte_budget: u64,
}

/// What [`GraphCache::fetch`] resolved.
#[derive(Debug)]
pub struct Fetched {
    /// The (shared, immutable) graph.
    pub graph: Arc<Csr>,
    /// Whether *this* call performed the build. `false` for both plain
    /// cache hits and waiters that joined another caller's in-flight build.
    pub built: bool,
}

fn recover<'a>(
    r: Result<MutexGuard<'a, State>, PoisonError<MutexGuard<'a, State>>>,
) -> MutexGuard<'a, State> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl GraphCache {
    /// A cache holding at most `capacity` finished entries (minimum 1),
    /// with no resident-byte budget.
    pub fn new(capacity: usize) -> Self {
        GraphCache::with_byte_budget(capacity, u64::MAX)
    }

    /// A cache bounded by both a finished-entry count and a resident-byte
    /// budget: eviction runs until both constraints hold (the entry just
    /// published is never evicted, so a single over-budget graph still
    /// serves its own fetch). A `byte_budget` of 0 keeps at most the
    /// in-flight graph resident.
    pub fn with_byte_budget(capacity: usize, byte_budget: u64) -> Self {
        GraphCache {
            state: Mutex::new(State {
                entries: HashMap::new(),
                tick: 0,
                stats: GraphCacheStats::default(),
            }),
            published: Condvar::new(),
            capacity: capacity.max(1),
            byte_budget,
        }
    }

    /// A cache with the default capacity (64 graphs, unbounded bytes).
    pub fn with_default_capacity() -> Self {
        GraphCache::new(64)
    }

    /// The configured resident-byte budget (`u64::MAX` when unbounded).
    pub fn byte_budget(&self) -> u64 {
        self.byte_budget
    }

    /// Actual bytes currently held by finished graphs.
    pub fn resident_bytes(&self) -> u64 {
        recover(self.state.lock()).stats.resident_bytes
    }

    /// Resolves `spec` to its graph, building it at most once per cached
    /// lifetime no matter how many threads ask concurrently.
    ///
    /// # Errors
    ///
    /// The build error of an unusable spec (propagated to every caller,
    /// including waiters of the failing flight).
    pub fn fetch(&self, spec: &GraphSpec) -> Result<Fetched, String> {
        let mut state = recover(self.state.lock());
        loop {
            state.tick += 1;
            let tick = state.tick;
            match state.entries.get_mut(spec) {
                Some(Entry::Ready {
                    graph, last_used, ..
                }) => {
                    *last_used = tick;
                    let graph = Arc::clone(graph);
                    state.stats.hits += 1;
                    return Ok(Fetched {
                        graph,
                        built: false,
                    });
                }
                Some(Entry::Failed { message, last_used }) => {
                    *last_used = tick;
                    let message = message.clone();
                    state.stats.hits += 1;
                    return Err(message);
                }
                Some(Entry::Building) => {
                    state = recover(self.published.wait(state));
                }
                None => {
                    state.entries.insert(spec.clone(), Entry::Building);
                    state.stats.misses += 1;
                    break;
                }
            }
        }
        drop(state);

        // Build outside the lock: concurrent fetches of *other* specs keep
        // flowing, and waiters of this spec park on the condvar.
        let result = spec.build();

        let mut state = recover(self.state.lock());
        state.tick += 1;
        let tick = state.tick;
        let outcome = match result {
            Ok(csr) => {
                let bytes = csr.storage_bytes();
                let graph = Arc::new(csr);
                state.stats.builds += 1;
                state.stats.resident_bytes += bytes;
                state.entries.insert(
                    spec.clone(),
                    Entry::Ready {
                        graph: Arc::clone(&graph),
                        last_used: tick,
                        bytes,
                    },
                );
                Ok(Fetched { graph, built: true })
            }
            Err(message) => {
                state.entries.insert(
                    spec.clone(),
                    Entry::Failed {
                        message: message.clone(),
                        last_used: tick,
                    },
                );
                Err(message)
            }
        };
        self.evict_to_fit(&mut state, spec);
        drop(state);
        self.published.notify_all();
        outcome
    }

    /// Evicts least-recently-used finished entries until the cache fits
    /// both its entry capacity and its resident-byte budget. Never evicts
    /// `Building` placeholders or `keep` (the entry just published, which
    /// the caller is about to hand out) — so one graph larger than the
    /// whole budget still serves its own fetch and is dropped on the next
    /// publication.
    fn evict_to_fit(&self, state: &mut State, keep: &GraphSpec) {
        while state.entries.len() > self.capacity || state.stats.resident_bytes > self.byte_budget {
            let victim = state
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } | Entry::Failed { last_used, .. }
                        if k != keep =>
                    {
                        Some((*last_used, k.clone()))
                    }
                    _ => None,
                })
                .min_by_key(|(last_used, _)| *last_used);
            match victim {
                Some((_, key)) => {
                    if let Some(Entry::Ready { bytes, .. }) = state.entries.remove(&key) {
                        state.stats.evictions += 1;
                        state.stats.resident_bytes =
                            state.stats.resident_bytes.saturating_sub(bytes);
                    }
                }
                None => break, // everything left is Building or `keep`
            }
        }
    }

    /// Point-in-time counters (plus the configured byte budget, reported
    /// as 0 when unbounded).
    pub fn stats(&self) -> GraphCacheStats {
        let mut stats = recover(self.state.lock()).stats;
        stats.byte_budget = if self.byte_budget == u64::MAX {
            0
        } else {
            self.byte_budget
        };
        stats
    }

    /// Finished entries currently cached.
    pub fn len(&self) -> usize {
        recover(self.state.lock())
            .entries
            .values()
            .filter(|e| !matches!(e, Entry::Building))
            .count()
    }

    /// Whether the cache holds no finished entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_conformance::scenario::Family;
    use scalagraph_conformance::GraphSource;

    fn spec(seed: u64) -> GraphSpec {
        GraphSpec {
            family: Family::Uniform {
                vertices: 64,
                edges: 256,
                seed,
            },
            symmetrize: false,
            max_weight: 0,
            weight_seed: 0,
            source: GraphSource::Generate,
        }
    }

    #[test]
    fn second_fetch_is_a_hit_on_the_same_arc() {
        let cache = GraphCache::new(8);
        let first = cache.fetch(&spec(1)).unwrap();
        assert!(first.built);
        let second = cache.fetch(&spec(1)).unwrap();
        assert!(!second.built);
        assert!(Arc::ptr_eq(&first.graph, &second.graph), "same allocation");
        let stats = cache.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn distinct_specs_build_distinct_graphs() {
        let cache = GraphCache::new(8);
        cache.fetch(&spec(1)).unwrap();
        cache.fetch(&spec(2)).unwrap();
        let mut weighted = spec(1);
        weighted.max_weight = 255;
        cache.fetch(&weighted).unwrap();
        assert_eq!(cache.stats().builds, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn concurrent_fetches_of_one_spec_build_exactly_once() {
        let cache = GraphCache::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| scope.spawn(|| cache.fetch(&spec(7)).unwrap()))
                .collect();
            let fetched: Vec<Fetched> = handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect();
            assert_eq!(
                fetched.iter().filter(|f| f.built).count(),
                1,
                "single-flight: exactly one builder"
            );
            for f in &fetched {
                assert!(Arc::ptr_eq(&f.graph, &fetched[0].graph));
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 15);
    }

    #[test]
    fn lru_eviction_keeps_the_capacity_and_counts() {
        let cache = GraphCache::new(2);
        cache.fetch(&spec(1)).unwrap();
        cache.fetch(&spec(2)).unwrap();
        cache.fetch(&spec(1)).unwrap(); // touch 1 so 2 is the LRU victim
        cache.fetch(&spec(3)).unwrap();
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        // Spec 1 survived; fetching it again is a hit, spec 2 rebuilds.
        assert!(!cache.fetch(&spec(1)).unwrap().built);
        assert!(cache.fetch(&spec(2)).unwrap().built);
    }

    #[test]
    fn deterministic_build_failures_are_cached_and_propagate() {
        let cache = GraphCache::new(8);
        let bad = GraphSpec {
            family: Family::Path { vertices: 1 },
            symmetrize: false,
            max_weight: 0,
            weight_seed: 0,
            source: GraphSource::Generate,
        };
        let first = cache.fetch(&bad).unwrap_err();
        assert!(first.contains("at least 2"), "{first}");
        let second = cache.fetch(&bad).unwrap_err();
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!(stats.builds, 0, "failures never count as builds");
        assert_eq!(stats.misses, 1, "the failure is cached after one try");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn eviction_accounts_resident_bytes() {
        let cache = GraphCache::new(1);
        cache.fetch(&spec(1)).unwrap();
        let full = cache.stats().resident_bytes;
        cache.fetch(&spec(2)).unwrap();
        assert_eq!(
            cache.stats().resident_bytes,
            full,
            "one evicted, one inserted, same family size"
        );
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn resident_bytes_are_actual_csr_heap_sizes() {
        let cache = GraphCache::new(8);
        let a = cache.fetch(&spec(1)).unwrap();
        let b = cache.fetch(&spec(2)).unwrap();
        assert_eq!(
            cache.resident_bytes(),
            (a.graph.storage_bytes() + b.graph.storage_bytes()) as u64
        );
    }

    #[test]
    fn byte_budget_evicts_even_under_entry_capacity() {
        // Budget fits exactly one of these graphs; entry capacity is ample.
        let probe = spec(1).build().unwrap().storage_bytes();
        let cache = GraphCache::with_byte_budget(64, probe + probe / 2);
        cache.fetch(&spec(1)).unwrap();
        cache.fetch(&spec(2)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "byte budget forced an eviction");
        assert!(stats.resident_bytes <= probe + probe / 2);
        assert_eq!(cache.len(), 1);
        // The newest entry survived.
        assert!(!cache.fetch(&spec(2)).unwrap().built);
    }

    #[test]
    fn oversized_graph_still_serves_its_own_fetch() {
        let cache = GraphCache::with_byte_budget(8, 1);
        let f = cache.fetch(&spec(1)).unwrap();
        assert!(f.built);
        assert_eq!(f.graph.num_vertices(), 64);
        // The next publication evicts it (it is no longer `keep`).
        cache.fetch(&spec(2)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
    }
}
