//! Job vocabulary: what enters the runtime and what comes out.
//!
//! A [`JobSpec`] wraps one conformance [`Scenario`] with scheduling
//! metadata (priority lane, per-job wall-clock deadline). Every submitted
//! job produces exactly one [`JobOutcome`] whose [`JobStatus`] lands in
//! exactly one ledger bucket — completed, failed, cancelled, or rejected —
//! so `submitted == completed + failed + cancelled + rejected` always
//! balances.

use std::time::Duration;

use scalagraph_conformance::Scenario;

/// Runtime-assigned job identifier: the index of the spec in the submitted
/// batch, so outcomes can be correlated with inputs positionally.
pub type JobId = usize;

/// Admission lane. High-priority jobs are popped before normal ones but
/// share the same bounded capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// FIFO behind any high-priority work.
    #[default]
    Normal,
    /// Popped ahead of the normal lane (FIFO within the lane).
    High,
}

/// One unit of work for the batch runtime.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The scenario to simulate.
    pub scenario: Scenario,
    /// Admission lane.
    pub priority: Priority,
    /// Per-job wall-clock deadline; `None` uses the runtime default.
    pub deadline: Option<Duration>,
    /// Test-only hook: the worker panics instead of running the scenario,
    /// exercising panic isolation end to end.
    #[doc(hidden)]
    pub inject_panic: bool,
}

impl JobSpec {
    /// A normal-priority job with the runtime's default deadline.
    pub fn new(scenario: Scenario) -> Self {
        JobSpec {
            scenario,
            priority: Priority::Normal,
            deadline: None,
            inject_panic: false,
        }
    }

    /// Sets the admission lane.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a per-job wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why admission control turned a job away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded admission queue was at capacity.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The runtime is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

/// Why a job ended in the failed bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// The simulation surfaced a [`SimError`](scalagraph::SimError).
    Sim {
        /// Variant name (`WatchdogStall`, `FaultUnrecoverable`, ...).
        variant: String,
        /// Rendered error message.
        message: String,
    },
    /// The scenario could not be built (bad graph spec, root out of
    /// range, invalid configuration).
    Malformed {
        /// What was wrong.
        message: String,
    },
    /// The worker caught a panic while running this job. The pool keeps
    /// serving other jobs.
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// The scenario's circuit breaker is open: too many consecutive
    /// failures with the same behavioral fingerprint.
    Quarantined {
        /// The scenario fingerprint the breaker tracks.
        fingerprint: u64,
        /// Consecutive failures observed when the breaker opened.
        consecutive_failures: u32,
    },
    /// The job exceeded its resource budget and could not be degraded to
    /// fit.
    OverBudget {
        /// Estimated demand (bytes).
        estimated: u64,
        /// The configured ceiling (bytes).
        budget: u64,
    },
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::Sim { variant, message } => write!(f, "{variant}: {message}"),
            FailureReason::Malformed { message } => write!(f, "malformed scenario: {message}"),
            FailureReason::Panicked { message } => write!(f, "worker panicked: {message}"),
            FailureReason::Quarantined {
                fingerprint,
                consecutive_failures,
            } => write!(
                f,
                "quarantined by circuit breaker ({consecutive_failures} consecutive failures \
                 of fingerprint {fingerprint:#018x})"
            ),
            FailureReason::OverBudget { estimated, budget } => write!(
                f,
                "over budget: estimated {estimated} bytes exceeds ceiling {budget} bytes"
            ),
        }
    }
}

/// Headline counters of a completed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobMetrics {
    /// Iterations until convergence.
    pub iterations: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Edges traversed.
    pub traversed_edges: u64,
}

/// Terminal state of a job. Exactly one per submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The simulation converged.
    Completed {
        /// Headline counters.
        metrics: JobMetrics,
    },
    /// The job ended in an error (ledger bucket: failed).
    Failed {
        /// What went wrong.
        reason: FailureReason,
    },
    /// Cooperative cancellation landed before completion (ledger bucket:
    /// cancelled).
    Cancelled {
        /// Simulated cycle the engine observed the signal on, when the
        /// simulation was already running.
        at_cycle: Option<u64>,
    },
    /// A wall-clock deadline expired (ledger bucket: cancelled; counted as
    /// a deadline kill).
    DeadlineExceeded {
        /// Simulated cycle the engine observed the expiry on, when the
        /// simulation was already running.
        at_cycle: Option<u64>,
    },
    /// Admission control refused the job (ledger bucket: rejected).
    Rejected {
        /// Why.
        rejection: Rejection,
    },
}

impl JobStatus {
    /// Short machine-readable label (stable; used by the CLI records).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed { .. } => "completed",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Cancelled { .. } => "cancelled",
            JobStatus::DeadlineExceeded { .. } => "deadline-exceeded",
            JobStatus::Rejected { .. } => "rejected",
        }
    }
}

/// The record a batch run emits for each submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Runtime-assigned id (submission index).
    pub job: JobId,
    /// Scenario name.
    pub name: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Attempts consumed (0 when the job never started, e.g. rejected).
    pub attempts: u32,
    /// Whether the job ran in a budget-degraded configuration.
    pub degraded: bool,
    /// Wall-clock milliseconds from admission to terminal state.
    pub wall_ms: u64,
}

impl std::fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {:>4} {:<32} {:<18} attempts={} wall_ms={}",
            self.job,
            self.name,
            self.status.label(),
            self.attempts,
            self.wall_ms
        )?;
        if self.degraded {
            write!(f, " degraded")?;
        }
        match &self.status {
            JobStatus::Failed { reason } => write!(f, " ({reason})"),
            JobStatus::Rejected { rejection } => write!(f, " ({rejection})"),
            JobStatus::Cancelled { at_cycle: Some(c) }
            | JobStatus::DeadlineExceeded { at_cycle: Some(c) } => write!(f, " (at cycle {c})"),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_labels_are_stable() {
        assert_eq!(
            JobStatus::Completed {
                metrics: JobMetrics::default()
            }
            .label(),
            "completed"
        );
        assert_eq!(
            JobStatus::Rejected {
                rejection: Rejection::QueueFull { capacity: 4 }
            }
            .label(),
            "rejected"
        );
        assert_eq!(
            JobStatus::DeadlineExceeded { at_cycle: None }.label(),
            "deadline-exceeded"
        );
    }

    #[test]
    fn outcome_rendering_names_the_cause() {
        let outcome = JobOutcome {
            job: 3,
            name: "wedge".into(),
            status: JobStatus::Failed {
                reason: FailureReason::Panicked {
                    message: "boom".into(),
                },
            },
            attempts: 1,
            degraded: true,
            wall_ms: 12,
        };
        let line = outcome.to_string();
        assert!(line.contains("failed"), "{line}");
        assert!(line.contains("worker panicked: boom"), "{line}");
        assert!(line.contains("degraded"), "{line}");
    }
}
