//! One attempt of one scenario under runtime control.
//!
//! The runner is the bridge between the batch layer and the simulator: it
//! builds the scenario exactly the way the conformance oracle does (same
//! graph construction, same config assembly, same root checks), then runs
//! the ScalaGraph engine *cancellably* — threading the worker's
//! [`CancelToken`] and any budget-derived cycle ceiling into the hot loop.
//! Retries enter here too: an attempt can override the scenario's fault
//! seed so a probabilistic fault stream rolls differently.

use scalagraph::{CancelToken, SimError, Simulator};
use scalagraph_algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp, WidestPath};
use scalagraph_algo::Algorithm;
use scalagraph_conformance::materialize_batch;
use scalagraph_conformance::scenario::AlgoSpec;
use scalagraph_conformance::Scenario;
use scalagraph_graph::mutate::DynamicCsr;
use scalagraph_graph::Csr;

use crate::job::JobMetrics;

/// Per-attempt knobs layered on top of the scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttemptOverrides {
    /// Deterministic simulated-cycle ceiling (from resource budgets); the
    /// engine ends the run with `SimError::DeadlineExceeded` on exactly
    /// this cycle. Merged (min) with any ceiling the config already has.
    pub cycle_limit: Option<u64>,
    /// Replacement fault seed (retry reseeding). `None` keeps the
    /// scenario's own seed.
    pub fault_seed: Option<u64>,
}

/// Why an attempt did not complete.
#[derive(Debug)]
pub enum AttemptError {
    /// The scenario itself is unusable (bad graph spec, out-of-range
    /// root, invalid config). Never retried.
    Malformed(String),
    /// The simulation surfaced a typed error — including cooperative
    /// `Cancelled` / `DeadlineExceeded` terminations.
    Sim(SimError),
}

/// Runs one attempt of `scenario`, polling `token` every simulated cycle.
///
/// Builds the scenario's graph itself; batch and serve layers that share
/// graphs across jobs should resolve the graph through a
/// [`GraphCache`](crate::GraphCache) and call [`run_attempt_on`] instead.
///
/// # Errors
///
/// [`AttemptError::Malformed`] for unusable scenarios,
/// [`AttemptError::Sim`] for every in-simulation termination (faults,
/// wedges, cancellation, deadlines).
pub fn run_attempt(
    scenario: &Scenario,
    overrides: AttemptOverrides,
    token: &CancelToken,
) -> Result<JobMetrics, AttemptError> {
    let graph = scenario.graph.build().map_err(AttemptError::Malformed)?;
    run_attempt_on(scenario, &graph, overrides, token)
}

/// [`run_attempt`] against a prebuilt (typically cached, shared) graph.
/// The graph must be the one `scenario.graph` builds — the caller owns that
/// invariant (a [`GraphCache`](crate::GraphCache) keyed by `GraphSpec`
/// provides it by construction). The simulator never mutates its input
/// graph, so one immutable CSR can back any number of concurrent attempts.
///
/// # Errors
///
/// Same contract as [`run_attempt`].
pub fn run_attempt_on(
    scenario: &Scenario,
    graph: &Csr,
    overrides: AttemptOverrides,
    token: &CancelToken,
) -> Result<JobMetrics, AttemptError> {
    // A mutation schedule runs the simulation against the final mutated
    // snapshot. The cached base graph stays shared and immutable: the
    // schedule is replayed onto a private copy per attempt, while the
    // scenario fingerprint (which covers the schedule) keeps batch/serve
    // memoization distinct across schedules sharing one base graph.
    let mutated;
    let graph = match scenario.mutations {
        Some(_) => {
            mutated = mutated_snapshot(scenario, graph).map_err(AttemptError::Malformed)?;
            &mutated
        }
        None => graph,
    };
    let n = graph.num_vertices() as u32;
    let root_ok = |root: u32| {
        if root < n {
            Ok(())
        } else {
            Err(AttemptError::Malformed(format!(
                "root {root} out of range for {n} vertices"
            )))
        }
    };
    match scenario.algo {
        AlgoSpec::Bfs { root } => {
            root_ok(root)?;
            run_typed(scenario, graph, &Bfs::from_root(root), overrides, token)
        }
        AlgoSpec::Sssp { root } => {
            root_ok(root)?;
            run_typed(scenario, graph, &Sssp::from_root(root), overrides, token)
        }
        AlgoSpec::Cc => run_typed(
            scenario,
            graph,
            &ConnectedComponents::new(),
            overrides,
            token,
        ),
        AlgoSpec::PageRank { iters } => {
            if iters == 0 {
                return Err(AttemptError::Malformed(
                    "pagerank needs at least 1 iteration".into(),
                ));
            }
            run_typed(scenario, graph, &PageRank::new(iters), overrides, token)
        }
        AlgoSpec::WidestPath { root } => {
            root_ok(root)?;
            run_typed(
                scenario,
                graph,
                &WidestPath::from_root(root),
                overrides,
                token,
            )
        }
    }
}

/// Replays the scenario's full mutation schedule onto a copy of `base`
/// and returns the final canonical snapshot. Batches are materialized from
/// the seeded [`MutationSpec`](scalagraph_conformance::MutationSpec)
/// exactly the way the conformance dynamic oracle does, so runtime jobs
/// and oracle replays agree on the graph every schedule produces.
fn mutated_snapshot(scenario: &Scenario, base: &Csr) -> Result<Csr, String> {
    let Some(spec) = scenario.mutations else {
        return Ok(base.clone());
    };
    if spec.batches == 0 {
        return Err("mutation schedule needs at least 1 batch".into());
    }
    let mut dynamic = DynamicCsr::new(base.clone());
    for batch_index in 1..=spec.batches {
        let batch = materialize_batch(
            &spec,
            scenario.graph.max_weight,
            dynamic.canonical(),
            batch_index,
        );
        dynamic
            .apply(&batch)
            .map_err(|e| format!("mutation batch {batch_index}: {e}"))?;
    }
    Ok(dynamic.canonical().clone())
}

fn run_typed<A: Algorithm>(
    scenario: &Scenario,
    graph: &Csr,
    algo: &A,
    overrides: AttemptOverrides,
    token: &CancelToken,
) -> Result<JobMetrics, AttemptError> {
    let mut cfg = scenario.config.build().map_err(AttemptError::Malformed)?;
    cfg.fault_plan = match overrides.fault_seed {
        Some(seed) => {
            let mut reseeded = scenario.clone();
            reseeded.fault_seed = seed;
            reseeded.fault_plan()
        }
        None => scenario.fault_plan(),
    };
    cfg.fast_forward = scenario.modes.fast_forward;
    if let Some(limit) = overrides.cycle_limit {
        cfg.cycle_limit = Some(cfg.cycle_limit.map_or(limit, |own| own.min(limit)));
    }
    let result = Simulator::try_new(algo, graph, cfg)
        .and_then(|mut sim| sim.try_run_cancellable(token))
        .map_err(AttemptError::Sim)?;
    Ok(JobMetrics {
        iterations: result.stats.iterations,
        cycles: result.stats.cycles,
        traversed_edges: result.stats.traversed_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_conformance::scenario::{ConfigSpec, Expectation, Family, ModeMatrix};
    use scalagraph_conformance::{GraphSource, GraphSpec};

    fn scenario() -> Scenario {
        Scenario {
            name: "runner-test".into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices: 64,
                    edges: 256,
                    seed: 7,
                },
                symmetrize: false,
                max_weight: 0,
                weight_seed: 0,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        }
    }

    #[test]
    fn a_healthy_scenario_completes_with_metrics() {
        let token = CancelToken::new();
        let metrics = run_attempt(&scenario(), AttemptOverrides::default(), &token)
            .expect("scenario converges");
        assert!(metrics.iterations > 0);
        assert!(metrics.cycles > 0);
        assert!(metrics.traversed_edges > 0);
    }

    #[test]
    fn out_of_range_roots_are_malformed_not_sim_errors() {
        let mut s = scenario();
        s.algo = AlgoSpec::Bfs { root: 10_000 };
        let token = CancelToken::new();
        match run_attempt(&s, AttemptOverrides::default(), &token) {
            Err(AttemptError::Malformed(msg)) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn zero_iteration_pagerank_is_malformed() {
        let mut s = scenario();
        s.algo = AlgoSpec::PageRank { iters: 0 };
        let token = CancelToken::new();
        assert!(matches!(
            run_attempt(&s, AttemptOverrides::default(), &token),
            Err(AttemptError::Malformed(_))
        ));
    }

    #[test]
    fn cycle_limit_override_surfaces_deadline_exceeded() {
        let token = CancelToken::new();
        let overrides = AttemptOverrides {
            cycle_limit: Some(5),
            fault_seed: None,
        };
        match run_attempt(&scenario(), overrides, &token) {
            Err(AttemptError::Sim(SimError::DeadlineExceeded { cycle, partial })) => {
                assert_eq!(cycle, 5);
                assert_eq!(partial.cycles, 5);
            }
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn a_pre_cancelled_token_stops_the_attempt_immediately() {
        let token = CancelToken::new();
        token.cancel();
        match run_attempt(&scenario(), AttemptOverrides::default(), &token) {
            Err(AttemptError::Sim(SimError::Cancelled { cycle, .. })) => {
                assert!(cycle >= 1, "token polled on the first stepped cycle");
            }
            other => panic!("expected cancelled, got {other:?}"),
        }
    }

    #[test]
    fn a_mutation_schedule_runs_on_the_mutated_snapshot() {
        use scalagraph_conformance::MutationSpec;
        let mut s = scenario();
        s.mutations = Some(MutationSpec {
            batches: 3,
            insert_edges: 8,
            remove_edges: 8,
            add_vertices: 1,
            isolate_vertices: 1,
            seed: 1234,
        });
        let token = CancelToken::new();
        let metrics =
            run_attempt(&s, AttemptOverrides::default(), &token).expect("dynamic scenario runs");
        assert!(metrics.iterations > 0);
        assert!(metrics.traversed_edges > 0);

        // The same base CSR passed through run_attempt_on must produce the
        // same metrics: the schedule is replayed per attempt, never applied
        // to the shared cached graph.
        let base = s.graph.build().expect("base graph builds");
        let via_cache_path = run_attempt_on(&s, &base, AttemptOverrides::default(), &token)
            .expect("cached-graph path runs");
        assert_eq!(metrics, via_cache_path);
        assert_eq!(base.num_vertices(), 64, "base graph left untouched");

        // And the run genuinely saw a different graph than the static one.
        let static_metrics = run_attempt(&scenario(), AttemptOverrides::default(), &token)
            .expect("static scenario runs");
        assert_ne!(
            metrics.traversed_edges, static_metrics.traversed_edges,
            "mutated snapshot must change the traversal workload"
        );
    }

    #[test]
    fn schedules_share_a_cached_base_graph_but_not_a_fingerprint() {
        use scalagraph_conformance::MutationSpec;
        let spec = |seed: u64| {
            let mut s = scenario();
            s.mutations = Some(MutationSpec {
                batches: 2,
                insert_edges: 4,
                remove_edges: 4,
                add_vertices: 0,
                isolate_vertices: 0,
                seed,
            });
            s
        };
        let (a, b) = (spec(1), spec(2));
        // Same GraphSpec: a GraphCache keyed by it hands both scenarios one
        // shared CSR. Memoization stays sound because the scenario
        // fingerprint covers the schedule.
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), scenario().fingerprint());

        let base = a.graph.build().expect("shared graph builds");
        let token = CancelToken::new();
        let ra = run_attempt_on(&a, &base, AttemptOverrides::default(), &token)
            .expect("schedule A runs");
        let rb = run_attempt_on(&b, &base, AttemptOverrides::default(), &token)
            .expect("schedule B runs");
        assert_ne!(
            ra.traversed_edges, rb.traversed_edges,
            "different schedules must diverge on the same base graph"
        );
    }

    #[test]
    fn an_empty_mutation_schedule_is_malformed() {
        use scalagraph_conformance::MutationSpec;
        let mut s = scenario();
        s.mutations = Some(MutationSpec {
            batches: 0,
            insert_edges: 1,
            remove_edges: 0,
            add_vertices: 0,
            isolate_vertices: 0,
            seed: 1,
        });
        let token = CancelToken::new();
        match run_attempt(&s, AttemptOverrides::default(), &token) {
            Err(AttemptError::Malformed(msg)) => assert!(msg.contains("at least 1 batch"), "{msg}"),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn fault_seed_override_changes_the_plan_seed_only() {
        // Reseeding without faults is a no-op plan either way.
        let s = scenario();
        let token = CancelToken::new();
        let base = run_attempt(&s, AttemptOverrides::default(), &token).expect("base run");
        let reseeded = run_attempt(
            &s,
            AttemptOverrides {
                cycle_limit: None,
                fault_seed: Some(99),
            },
            &token,
        )
        .expect("reseeded run");
        assert_eq!(base, reseeded, "no faults: seed override must not matter");
    }
}
