//! Resource budgets with graceful degradation.
//!
//! A batch endpoint cannot let one 10-billion-edge scenario monopolize the
//! host. Budgets put ceilings on the two resources a scenario can demand —
//! estimated graph memory and simulated cycles — *before* anything is
//! built. Instead of flatly refusing over-budget work, the planner degrades
//! it: the graph family is halved until its estimate fits (the job is
//! tagged `degraded` so the caller knows the result is for a scaled-down
//! input), and the cycle ceiling becomes a deterministic
//! [`cycle_limit`](scalagraph::ScalaGraphConfig::cycle_limit). Only a
//! budget no minimal scenario can fit yields a hard
//! [`FailureReason::OverBudget`].

use scalagraph_conformance::scenario::{AlgoSpec, Family};
use scalagraph_conformance::{GraphSource, GraphSpec, Scenario};

use crate::job::FailureReason;

/// Ceilings one job may not exceed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceBudgets {
    /// Simulated-cycle ceiling, enforced as a deterministic
    /// `cycle_limit` (the job ends `DeadlineExceeded` on exactly that
    /// cycle in any execution mode).
    pub max_cycles: Option<u64>,
    /// Ceiling on [`estimated_graph_bytes`].
    pub max_graph_bytes: Option<u64>,
}

/// Estimated resident bytes of the CSR a [`GraphSpec`] builds, derived
/// from the generator parameters alone (nothing is built): ~16 bytes of
/// per-vertex bookkeeping (offsets, in-degrees, property slots) plus 8
/// bytes per directed edge (destination + weight), doubled when the spec
/// symmetrizes.
pub fn estimated_graph_bytes(spec: &GraphSpec) -> u64 {
    let vertices = spec.family.vertices() as u64;
    let directed = spec.family.edges() as u64 * if spec.symmetrize { 2 } else { 1 };
    vertices * 16 + directed * 8
}

/// What the planner decided for one job.
#[derive(Debug, Clone)]
pub struct BudgetPlan {
    /// The scenario to actually run (possibly scaled down).
    pub scenario: Scenario,
    /// Whether the scenario was scaled down to fit its budget.
    pub degraded: bool,
    /// Deterministic cycle ceiling to apply, if any.
    pub cycle_limit: Option<u64>,
}

/// Halves a family's size, preserving its shape and seeds. Returns `None`
/// once the family is already minimal.
fn halve(family: Family) -> Option<Family> {
    match family {
        Family::Rmat {
            vertices,
            edges,
            seed,
        } => (vertices > 2).then(|| Family::Rmat {
            vertices: (vertices / 2).max(2),
            edges: (edges / 2).max(1),
            seed,
        }),
        Family::Uniform {
            vertices,
            edges,
            seed,
        } => (vertices > 2).then(|| Family::Uniform {
            vertices: (vertices / 2).max(2),
            edges: (edges / 2).max(1),
            seed,
        }),
        Family::Path { vertices } => (vertices > 2).then(|| Family::Path {
            vertices: (vertices / 2).max(2),
        }),
        Family::Star { vertices } => (vertices > 2).then(|| Family::Star {
            vertices: (vertices / 2).max(2),
        }),
        Family::BinaryTree { vertices } => (vertices > 2).then(|| Family::BinaryTree {
            vertices: (vertices / 2).max(2),
        }),
        Family::Grid { rows, cols } => {
            if rows > 1 {
                Some(Family::Grid {
                    rows: (rows / 2).max(1),
                    cols,
                })
            } else if cols > 2 {
                Some(Family::Grid {
                    rows,
                    cols: (cols / 2).max(2),
                })
            } else {
                None
            }
        }
    }
}

/// Keeps a rooted algorithm's root inside a (possibly shrunken) vertex
/// range.
fn clamp_root(algo: AlgoSpec, vertices: usize) -> AlgoSpec {
    let clamp = |root: u32| root.min(vertices.saturating_sub(1) as u32);
    match algo {
        AlgoSpec::Bfs { root } => AlgoSpec::Bfs { root: clamp(root) },
        AlgoSpec::Sssp { root } => AlgoSpec::Sssp { root: clamp(root) },
        AlgoSpec::WidestPath { root } => AlgoSpec::WidestPath { root: clamp(root) },
        other => other,
    }
}

impl ResourceBudgets {
    /// No ceilings.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Plans a job: degrades the scenario until it fits the graph-byte
    /// budget and translates the cycle budget into a `cycle_limit`.
    ///
    /// # Errors
    ///
    /// [`FailureReason::OverBudget`] when even the minimal degradation of
    /// the scenario exceeds `max_graph_bytes`.
    pub fn plan(&self, scenario: &Scenario) -> Result<BudgetPlan, FailureReason> {
        let mut planned = scenario.clone();
        let mut degraded = false;
        if let Some(budget) = self.max_graph_bytes {
            // A packed-file graph is immutable on disk: halving its family
            // would desynchronize the spec from the file's actual contents,
            // so a packed spec either fits its budget or is refused whole.
            let packed = matches!(planned.graph.source, GraphSource::PackedFile { .. });
            while estimated_graph_bytes(&planned.graph) > budget {
                if packed {
                    return Err(FailureReason::OverBudget {
                        estimated: estimated_graph_bytes(&planned.graph),
                        budget,
                    });
                }
                match halve(planned.graph.family) {
                    Some(smaller) => {
                        planned.graph.family = smaller;
                        degraded = true;
                    }
                    None => {
                        return Err(FailureReason::OverBudget {
                            estimated: estimated_graph_bytes(&planned.graph),
                            budget,
                        });
                    }
                }
            }
            if degraded {
                planned.algo = clamp_root(planned.algo, planned.graph.family.vertices());
            }
        }
        Ok(BudgetPlan {
            scenario: planned,
            degraded,
            cycle_limit: self.max_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_conformance::scenario::{ConfigSpec, Expectation, ModeMatrix};

    fn scenario(family: Family) -> Scenario {
        Scenario {
            name: "budget-test".into(),
            graph: GraphSpec {
                family,
                symmetrize: false,
                max_weight: 0,
                weight_seed: 0,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 40 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        }
    }

    #[test]
    fn estimate_scales_with_symmetrization() {
        let mut spec = scenario(Family::Uniform {
            vertices: 100,
            edges: 500,
            seed: 1,
        })
        .graph;
        let directed = estimated_graph_bytes(&spec);
        spec.symmetrize = true;
        let sym = estimated_graph_bytes(&spec);
        assert_eq!(directed, 100 * 16 + 500 * 8);
        assert_eq!(sym, 100 * 16 + 1000 * 8);
    }

    #[test]
    fn within_budget_passes_through_untouched() {
        let s = scenario(Family::Uniform {
            vertices: 64,
            edges: 256,
            seed: 3,
        });
        let plan = ResourceBudgets {
            max_cycles: Some(10_000),
            max_graph_bytes: Some(1 << 20),
        }
        .plan(&s)
        .unwrap();
        assert!(!plan.degraded);
        assert_eq!(plan.scenario, s);
        assert_eq!(plan.cycle_limit, Some(10_000));
    }

    #[test]
    fn oversized_scenarios_are_halved_until_they_fit() {
        let s = scenario(Family::Uniform {
            vertices: 4096,
            edges: 65_536,
            seed: 3,
        });
        let budget = 20_000u64;
        let plan = ResourceBudgets {
            max_cycles: None,
            max_graph_bytes: Some(budget),
        }
        .plan(&s)
        .unwrap();
        assert!(plan.degraded);
        assert!(estimated_graph_bytes(&plan.scenario.graph) <= budget);
        // Shape and seed survive; only the size shrinks.
        match plan.scenario.graph.family {
            Family::Uniform { seed, vertices, .. } => {
                assert_eq!(seed, 3);
                assert!(vertices < 4096);
                // The root was clamped into the shrunken range.
                match plan.scenario.algo {
                    AlgoSpec::Bfs { root } => assert!((root as usize) < vertices),
                    ref other => panic!("algo changed: {other:?}"),
                }
            }
            ref other => panic!("family changed shape: {other:?}"),
        }
    }

    #[test]
    fn impossible_budgets_fail_with_over_budget() {
        let s = scenario(Family::Path { vertices: 64 });
        let err = ResourceBudgets {
            max_cycles: None,
            max_graph_bytes: Some(10),
        }
        .plan(&s)
        .unwrap_err();
        match err {
            FailureReason::OverBudget { estimated, budget } => {
                assert_eq!(budget, 10);
                assert!(estimated > 10);
            }
            other => panic!("wrong reason: {other:?}"),
        }
    }

    #[test]
    fn packed_specs_are_never_degraded() {
        let mut s = scenario(Family::Uniform {
            vertices: 4096,
            edges: 65_536,
            seed: 3,
        });
        s.graph.source = GraphSource::PackedFile {
            path: "g.sgpk".into(),
        };
        let err = ResourceBudgets {
            max_cycles: None,
            max_graph_bytes: Some(20_000),
        }
        .plan(&s)
        .unwrap_err();
        assert!(matches!(err, FailureReason::OverBudget { .. }));
        // Within budget, a packed spec passes through untouched.
        let plan = ResourceBudgets {
            max_cycles: None,
            max_graph_bytes: Some(1 << 30),
        }
        .plan(&s)
        .unwrap();
        assert!(!plan.degraded);
        assert_eq!(plan.scenario, s);
    }

    #[test]
    fn grids_shrink_rows_then_columns() {
        let mut family = Family::Grid { rows: 4, cols: 4 };
        family = halve(family).unwrap();
        assert_eq!(family, Family::Grid { rows: 2, cols: 4 });
        family = halve(halve(family).unwrap()).unwrap();
        assert_eq!(family, Family::Grid { rows: 1, cols: 2 });
        assert!(halve(family).is_none(), "minimal grid cannot shrink");
    }

    #[test]
    fn degraded_scenarios_still_build() {
        let s = scenario(Family::Rmat {
            vertices: 1 << 14,
            edges: 1 << 17,
            seed: 9,
        });
        let plan = ResourceBudgets {
            max_cycles: None,
            max_graph_bytes: Some(4096),
        }
        .plan(&s)
        .unwrap();
        assert!(plan.degraded);
        plan.scenario.graph.build().expect("degraded graph builds");
    }
}
