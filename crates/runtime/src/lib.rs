//! Resilient batch-execution runtime for simulation-as-a-service.
//!
//! This crate is the single entry point for running conformance
//! [`Scenario`](scalagraph_conformance::Scenario)s *at scale*: hundreds of
//! jobs, bounded resources, and hostile inputs (wedges, panics, fault
//! storms) that must never take the service down with them. The design is
//! a classic supervised worker pool, specialized for a cycle-accurate
//! simulator whose jobs can only be stopped *cooperatively*:
//!
//! | layer | module | guarantee |
//! |-------|--------|-----------|
//! | admission control | [`queue`] | bounded, two-lane, typed [`Rejection`](job::Rejection) instead of unbounded growth |
//! | deadlines & cancellation | [`batch`] + [`runner`] | wall-clock deadlines expire a [`CancelToken`](scalagraph::CancelToken) polled in the simulator hot loop |
//! | retries | [`retry`] | transient fault casualties retry with seeded deterministic backoff |
//! | circuit breaker | [`breaker`] | repeat offenders (same scenario fingerprint) are quarantined |
//! | resource budgets | [`budget`] | oversized jobs degrade gracefully, tagged `degraded` |
//! | panic isolation | [`batch`] | `catch_unwind` per attempt; a panicking job is one failed outcome |
//! | shared graphs | [`graphcache`] | one [`GraphCache`] build per distinct spec, single-flight, LRU-bounded |
//!
//! The load-bearing invariant is the **ledger**: every submitted job lands
//! in exactly one terminal bucket, so
//! `submitted == completed + failed + cancelled + rejected` after every
//! batch ([`BatchReport::balanced`]).
//!
//! ```
//! use scalagraph_runtime::{BatchRuntime, JobSpec, RuntimeConfig};
//! # use scalagraph_conformance::scenario::{AlgoSpec, ConfigSpec, Expectation, Family, ModeMatrix};
//! # use scalagraph_conformance::{GraphSource, GraphSpec, Scenario};
//! # let scenario = Scenario {
//! #     name: "doc".into(),
//! #     graph: GraphSpec {
//! #         family: Family::Uniform { vertices: 64, edges: 256, seed: 7 },
//! #         symmetrize: false,
//! #         max_weight: 0,
//! #         weight_seed: 0,
//! #         source: GraphSource::Generate,
//! #     },
//! #     algo: AlgoSpec::Bfs { root: 0 },
//! #     config: ConfigSpec::small(),
//! #     fault_seed: 0,
//! #     faults: Vec::new(),
//! #     modes: ModeMatrix::sim_only(),
//! #     expect: Expectation::Converge,
//! #     strict_frontier: None,
//! #     synthetic_bug: false,
//! #     mutations: None,
//! # };
//! let runtime = BatchRuntime::new(RuntimeConfig::default());
//! let report = runtime.run(vec![JobSpec::new(scenario)]);
//! assert!(report.balanced());
//! assert_eq!(report.counters.completed, 1);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod breaker;
pub mod budget;
pub mod graphcache;
pub mod job;
pub mod queue;
pub mod retry;
pub mod runner;

pub use batch::{BatchReport, BatchRuntime, RuntimeConfig};
pub use breaker::{BreakerState, CircuitBreaker};
pub use budget::{estimated_graph_bytes, BudgetPlan, ResourceBudgets};
pub use graphcache::{Fetched, GraphCache, GraphCacheStats};
pub use job::{
    FailureReason, JobId, JobMetrics, JobOutcome, JobSpec, JobStatus, Priority, Rejection,
};
pub use queue::AdmissionQueue;
pub use retry::RetryPolicy;
pub use runner::{run_attempt, run_attempt_on, AttemptError, AttemptOverrides};
