//! The batch runtime: a worker pool with supervision.
//!
//! [`BatchRuntime::run`] takes a batch of [`JobSpec`]s and produces exactly
//! one [`JobOutcome`] per spec, never fewer, never more — the ledger
//! invariant `submitted == completed + failed + cancelled + rejected` is
//! checked by [`BatchReport::balanced`] and holds by construction:
//!
//! * admission control rejects what the bounded queue cannot hold
//!   (outcome recorded at submit time);
//! * a supervisor thread expires per-job wall-clock deadlines into the
//!   simulator's cooperative [`CancelToken`], and on a global deadline
//!   cancels running work and drains the queue into cancelled outcomes;
//! * workers run each attempt under `catch_unwind`, so one panicking job
//!   becomes a `Failed(Panicked)` outcome instead of a poisoned pool;
//! * transient fault-injection errors retry with deterministic backoff,
//!   while a per-fingerprint circuit breaker quarantines scenarios that
//!   keep failing;
//! * resource budgets degrade oversized scenarios before they run.
//!
//! Everything is std-only: `thread::scope`, `Mutex`, `Condvar`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use scalagraph::{CancelToken, SimError};
use scalagraph_telemetry::{ServiceCounters, ServiceMetrics};

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::budget::ResourceBudgets;
use crate::graphcache::GraphCache;
use crate::job::{FailureReason, JobId, JobOutcome, JobSpec, JobStatus};
use crate::queue::AdmissionQueue;
use crate::retry::RetryPolicy;
use crate::runner::{run_attempt_on, AttemptError, AttemptOverrides};

/// Knobs of one batch run.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Admission queue capacity across both lanes.
    pub queue_capacity: usize,
    /// Wall-clock deadline applied to jobs that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Wall-clock ceiling on the whole batch: when it expires, running
    /// jobs are cancelled and queued jobs drain into cancelled outcomes.
    pub global_deadline: Option<Duration>,
    /// Retry budget for transient fault-injection failures.
    pub retry: RetryPolicy,
    /// Consecutive failures of one scenario fingerprint before the
    /// circuit breaker quarantines it (0 disables).
    pub breaker_threshold: u32,
    /// Resource ceilings with graceful degradation.
    pub budgets: ResourceBudgets,
    /// Supervisor polling cadence for deadline enforcement.
    pub poll_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            queue_capacity: 256,
            default_deadline: None,
            global_deadline: None,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            budgets: ResourceBudgets::unlimited(),
            poll_interval: Duration::from_millis(2),
        }
    }
}

/// What one batch run produced.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per submitted spec, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Final service counters.
    pub counters: ServiceCounters,
    /// Wall-clock duration of the whole batch in milliseconds.
    pub wall_ms: u64,
    /// Worker threads spawned.
    pub workers_spawned: usize,
    /// Worker threads that exited cleanly (leak check: must equal
    /// `workers_spawned`).
    pub workers_joined: usize,
}

impl BatchReport {
    /// The ledger invariant: every submitted job landed in exactly one
    /// terminal bucket.
    pub fn balanced(&self) -> bool {
        self.counters.balanced() && self.outcomes.len() as u64 == self.counters.submitted
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "{}\nworkers: {}/{} joined  wall: {} ms",
            self.counters, self.workers_joined, self.workers_spawned, self.wall_ms
        )
    }
}

/// A job admitted to the queue, waiting for a worker.
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    admitted: Instant,
}

/// Supervisor-visible state of a job a worker is currently running.
struct ActiveJob {
    started: Instant,
    deadline: Option<Duration>,
    token: CancelToken,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn sim_variant(e: &SimError) -> &'static str {
    match e {
        SimError::ConfigInvalid { .. } => "ConfigInvalid",
        SimError::ProtocolViolation { .. } => "ProtocolViolation",
        SimError::FaultUnrecoverable { .. } => "FaultUnrecoverable",
        SimError::DeadlockDetected { .. } => "DeadlockDetected",
        SimError::WatchdogStall { .. } => "WatchdogStall",
        SimError::CycleCapExceeded { .. } => "CycleCapExceeded",
        SimError::Cancelled { .. } => "Cancelled",
        SimError::DeadlineExceeded { .. } => "DeadlineExceeded",
        _ => "Unknown",
    }
}

/// The resilient batch executor. See the module docs for the guarantees.
pub struct BatchRuntime {
    config: RuntimeConfig,
    graphs: Arc<GraphCache>,
}

impl BatchRuntime {
    /// A runtime with the given knobs and a private graph cache.
    pub fn new(config: RuntimeConfig) -> Self {
        BatchRuntime {
            config,
            graphs: Arc::new(GraphCache::with_default_capacity()),
        }
    }

    /// A runtime sharing an existing graph cache — how the serve daemon
    /// keeps one cache alive across many batches.
    pub fn with_graph_cache(config: RuntimeConfig, graphs: Arc<GraphCache>) -> Self {
        BatchRuntime { config, graphs }
    }

    /// The graph cache this runtime resolves scenarios through.
    pub fn graph_cache(&self) -> &Arc<GraphCache> {
        &self.graphs
    }

    /// Runs a whole batch to completion and reports every outcome.
    pub fn run(&self, specs: Vec<JobSpec>) -> BatchReport {
        let cfg = self.config;
        let workers = cfg.workers.max(1);
        let started = Instant::now();

        let metrics = ServiceMetrics::new();
        let queue: AdmissionQueue<QueuedJob> = AdmissionQueue::new(cfg.queue_capacity.max(1));
        let breaker = CircuitBreaker::new(cfg.breaker_threshold);
        let active: Mutex<HashMap<JobId, ActiveJob>> = Mutex::new(HashMap::new());
        let outcomes: Mutex<Vec<Option<JobOutcome>>> = Mutex::new(vec![None; specs.len()]);
        let stop = AtomicBool::new(false);

        let record = |id: JobId, outcome: JobOutcome| {
            let mut slots = recover(outcomes.lock());
            if let Some(slot) = slots.get_mut(id) {
                *slot = Some(outcome);
            }
        };

        let mut workers_joined = 0usize;
        std::thread::scope(|scope| {
            // Worker pool: pop until the queue is closed and drained.
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        while let Some(job) = queue.pop() {
                            metrics.queue_left();
                            let outcome = self.process(
                                job.id,
                                &job.spec,
                                job.admitted,
                                &metrics,
                                &breaker,
                                &active,
                            );
                            record(job.id, outcome);
                        }
                    })
                })
                .collect();

            // Supervisor: walks deadlines on the poll cadence.
            let supervisor = scope.spawn(|| {
                let mut global_fired = false;
                loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    for job in recover(active.lock()).values() {
                        if let Some(deadline) = job.deadline {
                            if job.started.elapsed() >= deadline {
                                job.token.expire();
                            }
                        }
                    }
                    if !global_fired {
                        if let Some(global) = cfg.global_deadline {
                            if started.elapsed() >= global {
                                global_fired = true;
                                // Stop running work cooperatively...
                                for job in recover(active.lock()).values() {
                                    job.token.cancel();
                                }
                                // ...and turn everything still queued into
                                // cancelled outcomes without running it.
                                for job in queue.drain() {
                                    metrics.queue_left();
                                    metrics.job_cancelled();
                                    record(
                                        job.id,
                                        JobOutcome {
                                            job: job.id,
                                            name: job.spec.scenario.name.clone(),
                                            status: JobStatus::Cancelled { at_cycle: None },
                                            attempts: 0,
                                            degraded: false,
                                            wall_ms: job.admitted.elapsed().as_millis() as u64,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    std::thread::sleep(cfg.poll_interval);
                }
            });

            // Submission: admission control answers inline.
            for (id, spec) in specs.iter().enumerate() {
                metrics.job_submitted();
                let queued = QueuedJob {
                    id,
                    spec: spec.clone(),
                    admitted: Instant::now(),
                };
                // The gauge must rise before the item becomes visible to a
                // worker: a worker that pops it decrements immediately, and
                // an entered-after-push ordering would let the depth
                // underflow under a fast consumer.
                metrics.queue_entered();
                match queue.try_push(queued, spec.priority) {
                    Ok(()) => {}
                    Err(rejection) => {
                        metrics.queue_left();
                        metrics.job_rejected();
                        record(
                            id,
                            JobOutcome {
                                job: id,
                                name: spec.scenario.name.clone(),
                                status: JobStatus::Rejected { rejection },
                                attempts: 0,
                                degraded: false,
                                wall_ms: 0,
                            },
                        );
                    }
                }
            }
            queue.close();

            for handle in handles {
                if handle.join().is_ok() {
                    workers_joined += 1;
                }
            }
            stop.store(true, Ordering::Release);
            drop(supervisor); // joined implicitly at scope exit
        });

        // Safety net: a lost job would silently unbalance the ledger, so
        // synthesize a failure for any slot no thread ever filled.
        let outcomes: Vec<JobOutcome> = recover(outcomes.lock())
            .drain(..)
            .enumerate()
            .map(|(id, slot)| {
                slot.unwrap_or_else(|| {
                    metrics.job_failed();
                    JobOutcome {
                        job: id,
                        name: specs
                            .get(id)
                            .map(|s| s.scenario.name.clone())
                            .unwrap_or_default(),
                        status: JobStatus::Failed {
                            reason: FailureReason::Malformed {
                                message: "job lost by the runtime (no outcome recorded)".into(),
                            },
                        },
                        attempts: 0,
                        degraded: false,
                        wall_ms: 0,
                    }
                })
            })
            .collect();

        BatchReport {
            outcomes,
            counters: metrics.snapshot(),
            wall_ms: started.elapsed().as_millis() as u64,
            workers_spawned: workers,
            workers_joined,
        }
    }

    /// Runs one job to a terminal status on the calling worker thread.
    #[allow(clippy::too_many_arguments)]
    fn process(
        &self,
        id: JobId,
        spec: &JobSpec,
        admitted: Instant,
        metrics: &ServiceMetrics,
        breaker: &CircuitBreaker,
        active: &Mutex<HashMap<JobId, ActiveJob>>,
    ) -> JobOutcome {
        let cfg = self.config;
        let fingerprint = spec.scenario.fingerprint();
        let finish = |status: JobStatus, attempts: u32, degraded: bool| JobOutcome {
            job: id,
            name: spec.scenario.name.clone(),
            status,
            attempts,
            degraded,
            wall_ms: admitted.elapsed().as_millis() as u64,
        };

        // Circuit breaker: quarantine repeat offenders before spending a
        // deadline + retry budget on them.
        if let BreakerState::Open { failures } = breaker.check(fingerprint) {
            metrics.job_quarantined();
            metrics.job_failed();
            return finish(
                JobStatus::Failed {
                    reason: FailureReason::Quarantined {
                        fingerprint,
                        consecutive_failures: failures,
                    },
                },
                0,
                false,
            );
        }

        // Resource budgets: degrade or refuse before building anything.
        let plan = match cfg.budgets.plan(&spec.scenario) {
            Ok(plan) => plan,
            Err(reason) => {
                metrics.job_failed();
                return finish(JobStatus::Failed { reason }, 0, false);
            }
        };
        if plan.degraded {
            metrics.job_degraded();
        }

        // Resolve the graph through the shared cache: one build per distinct
        // spec no matter how many jobs in the batch reuse it. Build failures
        // are deterministic, so they fail the job like any malformed input.
        let graph = match self.graphs.fetch(&plan.scenario.graph) {
            Ok(fetched) => {
                if fetched.built {
                    metrics.graph_cache_miss();
                } else {
                    metrics.graph_cache_hit();
                }
                fetched.graph
            }
            Err(message) => {
                metrics.job_failed();
                if breaker.record_failure(fingerprint) {
                    metrics.breaker_opened();
                }
                return finish(
                    JobStatus::Failed {
                        reason: FailureReason::Malformed { message },
                    },
                    0,
                    plan.degraded,
                );
            }
        };

        let deadline = spec.deadline.or(cfg.default_deadline);
        let token = CancelToken::new();
        recover(active.lock()).insert(
            id,
            ActiveJob {
                started: Instant::now(),
                deadline,
                token: token.clone(),
            },
        );

        let mut attempt = 0u32;
        let status = loop {
            attempt += 1;
            if attempt > 1 {
                metrics.retry_scheduled();
                std::thread::sleep(cfg.retry.backoff(fingerprint, attempt));
            }
            let overrides = AttemptOverrides {
                cycle_limit: plan.cycle_limit,
                fault_seed: (attempt > 1)
                    .then(|| RetryPolicy::reseed(plan.scenario.fault_seed, attempt)),
            };
            let inject_panic = spec.inject_panic;
            let scenario = &plan.scenario;
            let result = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected test panic");
                }
                run_attempt_on(scenario, &graph, overrides, &token)
            }));
            match result {
                Err(payload) => {
                    metrics.panic_contained();
                    metrics.job_failed();
                    if breaker.record_failure(fingerprint) {
                        metrics.breaker_opened();
                    }
                    break JobStatus::Failed {
                        reason: FailureReason::Panicked {
                            message: panic_message(payload),
                        },
                    };
                }
                Ok(Ok(job_metrics)) => {
                    metrics.job_completed();
                    breaker.record_success(fingerprint);
                    break JobStatus::Completed {
                        metrics: job_metrics,
                    };
                }
                Ok(Err(AttemptError::Malformed(message))) => {
                    metrics.job_failed();
                    if breaker.record_failure(fingerprint) {
                        metrics.breaker_opened();
                    }
                    break JobStatus::Failed {
                        reason: FailureReason::Malformed { message },
                    };
                }
                Ok(Err(AttemptError::Sim(e))) => match e {
                    SimError::Cancelled { cycle, .. } => {
                        metrics.job_cancelled();
                        break JobStatus::Cancelled {
                            at_cycle: Some(cycle),
                        };
                    }
                    SimError::DeadlineExceeded { cycle, .. } => {
                        metrics.deadline_kill();
                        metrics.job_cancelled();
                        if breaker.record_failure(fingerprint) {
                            metrics.breaker_opened();
                        }
                        break JobStatus::DeadlineExceeded {
                            at_cycle: Some(cycle),
                        };
                    }
                    other
                        if RetryPolicy::is_transient(&other)
                            && attempt < cfg.retry.max_attempts =>
                    {
                        continue;
                    }
                    other => {
                        metrics.job_failed();
                        if breaker.record_failure(fingerprint) {
                            metrics.breaker_opened();
                        }
                        break JobStatus::Failed {
                            reason: FailureReason::Sim {
                                variant: sim_variant(&other).to_string(),
                                message: other.to_string(),
                            },
                        };
                    }
                },
            }
        };

        recover(active.lock()).remove(&id);
        finish(status, attempt, plan.degraded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobMetrics, Priority};
    use scalagraph_conformance::scenario::{
        AlgoSpec, ConfigSpec, Expectation, Family, FaultKindSpec, FaultSpec, ModeMatrix,
    };
    use scalagraph_conformance::{GraphSource, GraphSpec, Scenario};

    fn healthy(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices: 64,
                    edges: 256,
                    seed: 7,
                },
                symmetrize: false,
                max_weight: 0,
                weight_seed: 0,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        }
    }

    /// A scenario that can never converge: the watchdog is disabled and a
    /// permanent HBM stall (the corpus wedge scenario's fault) freezes all
    /// progress, so only an external deadline or cancellation can end it.
    fn wedge(name: &str) -> Scenario {
        let mut s = healthy(name);
        s.graph.family = Family::Uniform {
            vertices: 400,
            edges: 3000,
            seed: 4,
        };
        s.config.watchdog_stall_cycles = 0;
        s.modes.fast_forward = false;
        s.faults = vec![FaultSpec {
            kind: FaultKindSpec::HbmStall {
                tile: 0,
                channel: 0,
                cycles: 0, // pins the channel forever once applied
            },
            from: 20,
            until: 21,
        }];
        s.fault_seed = 1;
        s.expect = Expectation::Wedge {
            suspect_contains: String::new(),
        };
        s
    }

    fn run_with(cfg: RuntimeConfig, specs: Vec<JobSpec>) -> BatchReport {
        BatchRuntime::new(cfg).run(specs)
    }

    #[test]
    fn a_healthy_batch_completes_and_balances() {
        let specs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec::new(healthy(&format!("job-{i}"))))
            .collect();
        let report = run_with(
            RuntimeConfig {
                workers: 3,
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.completed, 6);
        assert_eq!(report.workers_joined, report.workers_spawned);
        for outcome in &report.outcomes {
            assert!(
                matches!(outcome.status, JobStatus::Completed { metrics: JobMetrics { cycles, .. } } if cycles > 0),
                "{outcome}"
            );
        }
    }

    #[test]
    fn queue_overflow_is_rejected_not_dropped() {
        // One worker, capacity 1, and jobs that take real time: with 8
        // submissions some must be rejected, and the ledger still balances.
        let specs: Vec<JobSpec> = (0..8)
            .map(|i| JobSpec::new(healthy(&format!("burst-{i}"))))
            .collect();
        let report = run_with(
            RuntimeConfig {
                workers: 1,
                queue_capacity: 1,
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert!(
            report.counters.rejected > 0,
            "capacity 1 must reject part of an 8-job burst: {}",
            report.render()
        );
        assert_eq!(
            report.counters.completed + report.counters.rejected,
            8,
            "{}",
            report.render()
        );
        for outcome in &report.outcomes {
            if let JobStatus::Rejected { rejection } = &outcome.status {
                assert!(
                    matches!(rejection, crate::job::Rejection::QueueFull { capacity: 1 }),
                    "{outcome}"
                );
            }
        }
    }

    #[test]
    fn a_wedged_job_is_deadline_killed_while_others_complete() {
        let specs = vec![
            JobSpec::new(healthy("ok-1")),
            JobSpec::new(wedge("wedged")).with_deadline(Duration::from_millis(120)),
            JobSpec::new(healthy("ok-2")),
        ];
        let report = run_with(
            RuntimeConfig {
                workers: 3,
                breaker_threshold: 0,
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.completed, 2, "{}", report.render());
        assert_eq!(report.counters.deadline_kills, 1, "{}", report.render());
        let wedged = &report.outcomes[1];
        assert!(
            matches!(wedged.status, JobStatus::DeadlineExceeded { at_cycle: Some(c) } if c >= 1),
            "{wedged}"
        );
    }

    #[test]
    fn a_panicking_job_is_contained_and_the_pool_keeps_serving() {
        let mut bomb = JobSpec::new(healthy("bomb"));
        bomb.inject_panic = true;
        let specs = vec![
            bomb,
            JobSpec::new(healthy("after-1")),
            JobSpec::new(healthy("after-2")),
        ];
        let report = run_with(
            RuntimeConfig {
                workers: 1, // the panicking worker must survive to run the rest
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.panics_contained, 1);
        assert_eq!(report.counters.completed, 2);
        assert_eq!(
            report.workers_joined, report.workers_spawned,
            "no leaked workers"
        );
        assert!(
            matches!(
                &report.outcomes[0].status,
                JobStatus::Failed { reason: FailureReason::Panicked { message } }
                    if message.contains("injected")
            ),
            "{}",
            report.outcomes[0]
        );
    }

    #[test]
    fn the_circuit_breaker_quarantines_repeat_offenders() {
        // Four copies of the same malformed scenario (identical
        // fingerprint: only the name differs). Threshold 2: the first two
        // fail on their own, the rest are quarantined instantly.
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| {
                let mut s = healthy(&format!("dup-{i}"));
                s.algo = AlgoSpec::Bfs { root: 9_999 };
                JobSpec::new(s)
            })
            .collect();
        let report = run_with(
            RuntimeConfig {
                workers: 1, // serialize so the breaker sees failures in order
                breaker_threshold: 2,
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.failed, 4);
        assert_eq!(report.counters.quarantined, 2, "{}", report.render());
        assert_eq!(report.counters.breaker_opened, 1);
        assert!(matches!(
            &report.outcomes[3].status,
            JobStatus::Failed {
                reason: FailureReason::Quarantined {
                    consecutive_failures: 2,
                    ..
                }
            }
        ));
    }

    #[test]
    fn budgets_degrade_oversized_jobs_instead_of_failing_them() {
        let mut big = healthy("big");
        big.graph.family = Family::Uniform {
            vertices: 4096,
            edges: 32_768,
            seed: 1,
        };
        let report = run_with(
            RuntimeConfig {
                workers: 1,
                budgets: ResourceBudgets {
                    max_cycles: None,
                    max_graph_bytes: Some(30_000),
                },
                ..RuntimeConfig::default()
            },
            vec![JobSpec::new(big)],
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.completed, 1, "{}", report.render());
        assert_eq!(report.counters.degraded, 1);
        assert!(report.outcomes[0].degraded, "{}", report.outcomes[0]);
    }

    #[test]
    fn a_cycle_budget_lands_as_a_deadline_kill_at_that_exact_cycle() {
        let report = run_with(
            RuntimeConfig {
                workers: 1,
                breaker_threshold: 0,
                budgets: ResourceBudgets {
                    max_cycles: Some(7),
                    max_graph_bytes: None,
                },
                ..RuntimeConfig::default()
            },
            vec![JobSpec::new(healthy("capped"))],
        );
        assert!(report.balanced(), "{}", report.render());
        assert!(matches!(
            report.outcomes[0].status,
            JobStatus::DeadlineExceeded { at_cycle: Some(7) }
        ));
        assert_eq!(report.counters.deadline_kills, 1);
    }

    #[test]
    fn a_global_deadline_cancels_running_and_queued_work() {
        // One worker grinds a wedge with no per-job deadline; the rest sit
        // in the queue. The global deadline must cancel the runner and
        // drain the queue into cancelled outcomes.
        let mut specs = vec![JobSpec::new(wedge("runner"))];
        for i in 0..3 {
            specs.push(JobSpec::new(healthy(&format!("queued-{i}"))));
        }
        let report = run_with(
            RuntimeConfig {
                workers: 1,
                breaker_threshold: 0,
                global_deadline: Some(Duration::from_millis(100)),
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(
            report.counters.cancelled,
            4,
            "runner + all queued work cancelled: {}",
            report.render()
        );
        assert!(matches!(
            report.outcomes[0].status,
            JobStatus::Cancelled { at_cycle: Some(_) }
        ));
        for queued in &report.outcomes[1..] {
            assert!(
                matches!(queued.status, JobStatus::Cancelled { at_cycle: None }),
                "{queued}"
            );
        }
    }

    #[test]
    fn high_priority_jobs_jump_the_queue() {
        // One worker; submit a slow normal job first so the lanes fill
        // while it runs, then check the high-priority job ran before the
        // other normal ones by comparing completion order via wall_ms is
        // unreliable — instead use a capacity-bounded queue and assert all
        // complete with the ledger balanced (ordering itself is covered by
        // the queue unit tests).
        let specs = vec![
            JobSpec::new(healthy("first")),
            JobSpec::new(healthy("normal")),
            JobSpec::new(healthy("urgent")).with_priority(Priority::High),
        ];
        let report = run_with(
            RuntimeConfig {
                workers: 1,
                ..RuntimeConfig::default()
            },
            specs,
        );
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.completed, 3);
    }

    #[test]
    fn a_corpus_over_three_families_builds_exactly_three_graphs() {
        // Thirty scenarios cycling over three graph families: the shared
        // cache must build three graphs, not thirty, and the hit/miss
        // telemetry must account for every fetch.
        let specs: Vec<JobSpec> = (0..30)
            .map(|i| {
                let mut s = healthy(&format!("fam-{i}"));
                s.graph.family = match i % 3 {
                    0 => Family::Uniform {
                        vertices: 64,
                        edges: 256,
                        seed: 7,
                    },
                    1 => Family::Path { vertices: 64 },
                    _ => Family::Star { vertices: 64 },
                };
                JobSpec::new(s)
            })
            .collect();
        let runtime = BatchRuntime::new(RuntimeConfig {
            workers: 4,
            ..RuntimeConfig::default()
        });
        let report = runtime.run(specs);
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.completed, 30);
        let stats = runtime.graph_cache().stats();
        assert_eq!(stats.builds, 3, "three families, three builds: {stats:?}");
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 27);
        assert_eq!(report.counters.graph_cache_misses, 3);
        assert_eq!(report.counters.graph_cache_hits, 27);
    }

    #[test]
    fn a_shared_cache_survives_across_batches() {
        let cache = Arc::new(GraphCache::with_default_capacity());
        for _ in 0..2 {
            let runtime =
                BatchRuntime::with_graph_cache(RuntimeConfig::default(), Arc::clone(&cache));
            let report = runtime.run(vec![JobSpec::new(healthy("cross-batch"))]);
            assert!(report.balanced(), "{}", report.render());
        }
        let stats = cache.stats();
        assert_eq!(stats.builds, 1, "second batch reuses the first's graph");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn malformed_scenarios_fail_without_retries() {
        let mut s = healthy("malformed");
        s.algo = AlgoSpec::PageRank { iters: 0 };
        let report = run_with(RuntimeConfig::default(), vec![JobSpec::new(s)]);
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.failed, 1);
        assert_eq!(report.counters.retries, 0, "malformed jobs never retry");
        assert_eq!(report.outcomes[0].attempts, 1);
    }
}
