//! Deterministic retry policy with seeded exponential backoff.
//!
//! Only *transient* errors are retried: fault-injection casualties
//! ([`SimError::FaultUnrecoverable`]) whose probabilistic fault stream can
//! resolve differently under a reseeded attempt. Deterministic failures —
//! wedges, config errors, protocol violations — retry into the exact same
//! wall, so they fail fast instead.
//!
//! Backoff is a pure function of `(policy seed, scenario fingerprint,
//! attempt)`: replaying a batch replays its backoff schedule, which keeps
//! soak runs reproducible down to the sleep pattern.

use std::time::Duration;

use scalagraph::SimError;
use scalagraph_conformance::SplitMix64;

/// Retry budget and backoff shape for transient failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Whether `error` is worth another attempt.
    pub fn is_transient(error: &SimError) -> bool {
        matches!(error, SimError::FaultUnrecoverable { .. })
    }

    /// The backoff to sleep before retry number `attempt` (the first retry
    /// is attempt 2). Exponential with deterministic +/-25% jitter derived
    /// from `(seed, fingerprint, attempt)`.
    pub fn backoff(&self, fingerprint: u64, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(2).min(32);
        let nominal = self
            .base_backoff
            .saturating_mul(1u32 << doublings.min(31))
            .min(self.max_backoff);
        let mut rng = SplitMix64::new(
            self.seed ^ fingerprint ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Map one draw onto [-25%, +25%] of the nominal backoff.
        let nanos = nominal.as_nanos() as u64;
        let jitter_span = nanos / 2;
        let jittered = if jitter_span == 0 {
            nanos
        } else {
            nanos - jitter_span / 2 + rng.next_u64() % jitter_span
        };
        Duration::from_nanos(jittered)
    }

    /// The fault seed attempt number `attempt` should run with, derived
    /// deterministically from the scenario's own seed. Attempt 1 preserves
    /// the scenario verbatim; retries perturb the probabilistic fault
    /// stream (drop/corrupt chances) while keeping scheduled fault windows
    /// intact.
    pub fn reseed(original: u64, attempt: u32) -> u64 {
        if attempt <= 1 {
            original
        } else {
            original ^ (attempt as u64).wrapping_mul(0xD134_2543_DE82_EF95)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            seed: 42,
        };
        for attempt in 2..=5 {
            let a = p.backoff(0xABCD, attempt);
            let b = p.backoff(0xABCD, attempt);
            assert_eq!(a, b, "same inputs, same backoff");
            assert!(
                a <= p.max_backoff + p.max_backoff / 4,
                "attempt {attempt}: {a:?} beyond jittered ceiling"
            );
            assert!(
                a >= p.base_backoff / 2,
                "attempt {attempt}: {a:?} too small"
            );
        }
        assert_ne!(
            p.backoff(0xABCD, 2),
            p.backoff(0xABCE, 2),
            "fingerprint feeds the jitter stream"
        );
    }

    #[test]
    fn backoff_grows_geometrically_before_the_ceiling() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_secs(60),
            seed: 0,
        };
        // Nominal values double; jitter is within +/-25%, so attempt n+1
        // must exceed attempt n whenever the nominal doubles.
        let early = p.backoff(7, 2);
        let late = p.backoff(7, 5);
        assert!(late > early, "{late:?} vs {early:?}");
    }

    #[test]
    fn reseed_preserves_attempt_one() {
        assert_eq!(RetryPolicy::reseed(99, 1), 99);
        assert_ne!(RetryPolicy::reseed(99, 2), 99);
        assert_ne!(RetryPolicy::reseed(99, 2), RetryPolicy::reseed(99, 3));
        // Deterministic.
        assert_eq!(RetryPolicy::reseed(99, 2), RetryPolicy::reseed(99, 2));
    }

    #[test]
    fn only_fault_casualties_are_transient() {
        let transient = SimError::FaultUnrecoverable {
            detail: "link down".into(),
            cycle: 10,
        };
        assert!(RetryPolicy::is_transient(&transient));
        let config = SimError::ConfigInvalid {
            detail: "bad".into(),
        };
        assert!(!RetryPolicy::is_transient(&config));
    }
}
