//! Per-scenario circuit breaker.
//!
//! A corpus often contains many jobs that are the *same scenario* under
//! different names (re-submissions, sweep duplicates, fuzz re-runs). When
//! one of them wedges or dies deterministically, burning a full deadline +
//! retry budget on every clone wastes most of the batch's wall clock. The
//! breaker counts consecutive failures per behavioral
//! [fingerprint](scalagraph_conformance::Scenario::fingerprint) and, once a
//! threshold is hit, quarantines further clones instantly.
//!
//! One success closes the breaker for that fingerprint (the classic
//! consecutive-failure breaker, without a half-open timer: batch runs are
//! finite, so probing is pointless).

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Breaker verdict for a fingerprint about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Run it.
    Closed,
    /// Quarantine it: `failures` consecutive failures already observed.
    Open {
        /// Consecutive failures recorded when the breaker opened.
        failures: u32,
    },
}

/// Counts consecutive failures per scenario fingerprint.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: Mutex<HashMap<u64, u32>>,
}

impl CircuitBreaker {
    /// Opens after `threshold` consecutive failures of one fingerprint.
    /// `threshold == 0` disables the breaker entirely.
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold,
            consecutive: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, u32>> {
        self.consecutive
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Verdict for a job with this fingerprint.
    pub fn check(&self, fingerprint: u64) -> BreakerState {
        if self.threshold == 0 {
            return BreakerState::Closed;
        }
        match self.lock().get(&fingerprint) {
            Some(&failures) if failures >= self.threshold => BreakerState::Open { failures },
            _ => BreakerState::Closed,
        }
    }

    /// Records a success, closing the breaker for this fingerprint.
    pub fn record_success(&self, fingerprint: u64) {
        self.lock().remove(&fingerprint);
    }

    /// Records a failure. Returns `true` when this failure is the one that
    /// opened the breaker (for the `breaker_opened` counter).
    pub fn record_failure(&self, fingerprint: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut map = self.lock();
        let failures = map.entry(fingerprint).or_insert(0);
        *failures += 1;
        *failures == self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3);
        assert_eq!(b.check(7), BreakerState::Closed);
        assert!(!b.record_failure(7));
        assert!(!b.record_failure(7));
        assert_eq!(b.check(7), BreakerState::Closed, "threshold not yet hit");
        assert!(b.record_failure(7), "third failure opens the breaker");
        assert_eq!(b.check(7), BreakerState::Open { failures: 3 });
        // Other fingerprints are unaffected.
        assert_eq!(b.check(8), BreakerState::Closed);
    }

    #[test]
    fn a_success_resets_the_streak() {
        let b = CircuitBreaker::new(2);
        b.record_failure(1);
        b.record_success(1);
        assert!(!b.record_failure(1), "streak restarted");
        assert_eq!(b.check(1), BreakerState::Closed);
        assert!(b.record_failure(1));
        assert_eq!(b.check(1), BreakerState::Open { failures: 2 });
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let b = CircuitBreaker::new(0);
        for _ in 0..100 {
            assert!(!b.record_failure(9));
        }
        assert_eq!(b.check(9), BreakerState::Closed);
    }

    #[test]
    fn opened_is_reported_exactly_once() {
        let b = CircuitBreaker::new(2);
        assert!(!b.record_failure(5));
        assert!(b.record_failure(5));
        assert!(!b.record_failure(5), "already open: not a new transition");
    }
}
