//! Bounded two-lane admission queue.
//!
//! Admission control is the first resilience layer: a batch of 10,000
//! scenarios must not balloon resident memory or hide an overload — excess
//! work is *refused*, visibly, with a typed [`Rejection`]. The queue is a
//! mutex-and-condvar structure (std only): two FIFO lanes sharing one
//! capacity, blocking consumers, and a close signal that drains cleanly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::job::{Priority, Rejection};

struct Lanes<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    closed: bool,
}

impl<T> Lanes<T> {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// A bounded MPMC queue with a high-priority lane and explicit rejection.
pub struct AdmissionQueue<T> {
    lanes: Mutex<Lanes<T>>,
    capacity: usize,
    available: Condvar,
}

// A worker panicking while holding the lock must not wedge the pool:
// recover the guard and keep serving.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, Lanes<T>>, PoisonError<MutexGuard<'a, Lanes<T>>>>,
) -> MutexGuard<'a, Lanes<T>> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items across both lanes.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            lanes: Mutex::new(Lanes {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
            }),
            capacity,
            available: Condvar::new(),
        }
    }

    /// Attempts to admit an item. Never blocks: a full queue or a closed
    /// runtime answers with a typed [`Rejection`] instead.
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), Rejection> {
        let mut lanes = recover(self.lanes.lock());
        if lanes.closed {
            return Err(Rejection::ShuttingDown);
        }
        if lanes.len() >= self.capacity {
            return Err(Rejection::QueueFull {
                capacity: self.capacity,
            });
        }
        match priority {
            Priority::High => lanes.high.push_back(item),
            Priority::Normal => lanes.normal.push_back(item),
        }
        drop(lanes);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (high lane first) or the queue is
    /// closed *and* drained, which yields `None` — the consumer's signal to
    /// exit.
    pub fn pop(&self) -> Option<T> {
        let mut lanes = recover(self.lanes.lock());
        loop {
            if let Some(item) = lanes.high.pop_front() {
                return Some(item);
            }
            if let Some(item) = lanes.normal.pop_front() {
                return Some(item);
            }
            if lanes.closed {
                return None;
            }
            lanes = recover(self.available.wait(lanes));
        }
    }

    /// Closes the queue: future pushes are rejected with
    /// [`Rejection::ShuttingDown`], and consumers drain what remains then
    /// see `None`.
    pub fn close(&self) {
        recover(self.lanes.lock()).closed = true;
        self.available.notify_all();
    }

    /// Closes the queue and removes everything still waiting, in pop order.
    /// Used by a global deadline to turn queued work into cancelled
    /// outcomes without running it.
    pub fn drain(&self) -> Vec<T> {
        let mut lanes = recover(self.lanes.lock());
        lanes.closed = true;
        let mut drained: Vec<T> = lanes.high.drain(..).collect();
        drained.extend(lanes.normal.drain(..));
        drop(lanes);
        self.available.notify_all();
        drained
    }

    /// Items currently queued (both lanes).
    pub fn len(&self) -> usize {
        recover(self.lanes.lock()).len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_lane() {
        let q = AdmissionQueue::new(8);
        q.try_push(1, Priority::Normal).unwrap();
        q.try_push(2, Priority::Normal).unwrap();
        q.try_push(3, Priority::Normal).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn high_lane_preempts_normal_lane() {
        let q = AdmissionQueue::new(8);
        q.try_push("n1", Priority::Normal).unwrap();
        q.try_push("h1", Priority::High).unwrap();
        q.try_push("n2", Priority::Normal).unwrap();
        q.try_push("h2", Priority::High).unwrap();
        assert_eq!(q.pop(), Some("h1"));
        assert_eq!(q.pop(), Some("h2"));
        assert_eq!(q.pop(), Some("n1"));
        assert_eq!(q.pop(), Some("n2"));
    }

    #[test]
    fn overflow_is_rejected_with_the_capacity() {
        let q = AdmissionQueue::new(2);
        q.try_push(1, Priority::Normal).unwrap();
        q.try_push(2, Priority::High).unwrap();
        assert_eq!(
            q.try_push(3, Priority::Normal),
            Err(Rejection::QueueFull { capacity: 2 })
        );
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(2));
        assert!(q.try_push(3, Priority::Normal).is_ok());
    }

    #[test]
    fn close_rejects_pushes_and_drains_consumers() {
        let q = AdmissionQueue::new(4);
        q.try_push(1, Priority::Normal).unwrap();
        q.close();
        assert_eq!(
            q.try_push(2, Priority::Normal),
            Err(Rejection::ShuttingDown)
        );
        assert_eq!(q.pop(), Some(1), "closing still drains queued work");
        assert_eq!(q.pop(), None, "drained + closed = consumer exit signal");
    }

    #[test]
    fn drain_returns_everything_in_pop_order() {
        let q = AdmissionQueue::new(8);
        q.try_push("n", Priority::Normal).unwrap();
        q.try_push("h", Priority::High).unwrap();
        assert_eq!(q.drain(), vec!["h", "n"]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_on_close() {
        let q = AdmissionQueue::new(4);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let first = q.pop();
                let second = q.pop();
                (first, second)
            });
            q.try_push(42, Priority::Normal).unwrap();
            // Give the consumer a chance to block on the second pop, then
            // close; it must wake and observe None.
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            let (first, second) = consumer.join().expect("consumer panicked");
            assert_eq!(first, Some(42));
            assert_eq!(second, None);
        });
    }
}
