//! Graph transformations: vertex relabelings and degree orderings.
//!
//! Classic preprocessing for cache-based graph systems reorders vertices
//! (by degree, by BFS discovery) to improve locality. ScalaGraph's hashed
//! vertex placement makes it largely *insensitive* to vertex order — a
//! deliberate design property this module lets us demonstrate (the
//! `ext_reorder` experiment): the same graph under random, degree-sorted,
//! and BFS relabelings lands on the accelerator with nearly identical
//! performance, while order-sensitive systems swing.

use crate::{Csr, Edge, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Applies a vertex relabeling: vertex `v` becomes `mapping[v]`.
///
/// # Panics
///
/// Panics if `mapping` is not a permutation of `0..num_vertices`.
pub fn relabel(graph: &Csr, mapping: &[VertexId]) -> Csr {
    let n = graph.num_vertices();
    assert_eq!(mapping.len(), n, "mapping must cover every vertex");
    let mut seen = vec![false; n];
    for &m in mapping {
        assert!(
            (m as usize) < n && !seen[m as usize],
            "mapping must be a permutation"
        );
        seen[m as usize] = true;
    }
    let edges: Vec<Edge> = graph
        .edges()
        .map(|e| Edge::weighted(mapping[e.src as usize], mapping[e.dst as usize], e.weight))
        .collect();
    Csr::from_edges(n, &edges)
}

/// A relabeling that sorts vertices by descending out-degree (hubs get the
/// smallest ids) — the "degree ordering" used by cache-oriented systems.
pub fn degree_order(graph: &Csr) -> Vec<VertexId> {
    let mut by_degree: Vec<VertexId> = graph.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let mut mapping = vec![0 as VertexId; graph.num_vertices()];
    for (new_id, &old) in by_degree.iter().enumerate() {
        mapping[old as usize] = new_id as VertexId;
    }
    mapping
}

/// A relabeling by BFS discovery order from `root` (unreached vertices
/// keep their relative order after all reached ones) — the locality
/// ordering of Cuthill–McKee-style preprocessing.
pub fn bfs_order(graph: &Csr, root: VertexId) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut mapping = vec![VertexId::MAX; n];
    if n == 0 {
        return mapping;
    }
    let mut queue = VecDeque::new();
    queue.push_back(root);
    mapping[root as usize] = 0;
    let mut next_id: VertexId = 1;
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if mapping[u as usize] == VertexId::MAX {
                mapping[u as usize] = next_id;
                next_id += 1;
                queue.push_back(u);
            }
        }
    }
    for m in mapping.iter_mut() {
        if *m == VertexId::MAX {
            *m = next_id;
            next_id += 1;
        }
    }
    mapping
}

/// A uniformly random relabeling.
pub fn random_order(num_vertices: usize, seed: u64) -> Vec<VertexId> {
    let mut mapping: Vec<VertexId> = (0..num_vertices as VertexId).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    for i in (1..num_vertices).rev() {
        let j = rng.gen_range(0..=i);
        mapping.swap(i, j);
    }
    mapping
}

/// Inverse of a permutation mapping.
pub fn invert(mapping: &[VertexId]) -> Vec<VertexId> {
    let mut inv = vec![0 as VertexId; mapping.len()];
    for (old, &new) in mapping.iter().enumerate() {
        inv[new as usize] = old as VertexId;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn sample() -> Csr {
        Csr::from_edges(100, &generators::power_law(100, 800, 0.8, 3))
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = sample();
        let mapping = random_order(100, 7);
        let h = relabel(&g, &mapping);
        assert_eq!(h.num_edges(), g.num_edges());
        // Degree multiset is invariant under relabeling.
        let mut dg: Vec<usize> = g.vertices().map(|v| g.out_degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.out_degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
        // And each relabeled vertex keeps its adjacency (mapped).
        for v in g.vertices() {
            let mut a: Vec<VertexId> = g
                .neighbors(v)
                .iter()
                .map(|&u| mapping[u as usize])
                .collect();
            let mut b = h.neighbors(mapping[v as usize]).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn relabel_roundtrips_through_inverse() {
        let g = sample();
        let mapping = random_order(100, 9);
        let h = relabel(&g, &mapping);
        let back = relabel(&h, &invert(&mapping));
        assert_eq!(back, g);
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = sample();
        let mapping = degree_order(&g);
        let h = relabel(&g, &mapping);
        let degrees: Vec<usize> = h.vertices().map(|v| h.out_degree(v)).collect();
        for w in degrees.windows(2) {
            assert!(w[0] >= w[1], "degrees must be non-increasing");
        }
    }

    #[test]
    fn bfs_order_is_a_permutation_and_root_is_zero() {
        let g = Csr::from_edges(64, &generators::binary_tree(64));
        let mapping = bfs_order(&g, 0);
        assert_eq!(mapping[0], 0);
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // Children get larger labels than parents in a tree BFS.
        for v in 1..64usize {
            let parent = (v - 1) / 2;
            assert!(mapping[parent] < mapping[v]);
        }
    }

    #[test]
    fn bfs_order_handles_unreachable_vertices() {
        let g = Csr::from_edges(10, &[Edge::new(0, 1)]);
        let mapping = bfs_order(&g, 0);
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(mapping[2] > mapping[1]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabel_rejects_non_permutation() {
        let g = sample();
        let mut mapping = random_order(100, 1);
        mapping[0] = mapping[1];
        let _ = relabel(&g, &mapping);
    }
}
