//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced when building or validating graph data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex identifier.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// The CSR offset array is not monotonically non-decreasing, or its last
    /// entry disagrees with the neighbor array length.
    MalformedOffsets {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A weighted view was requested on an unweighted graph.
    MissingWeights,
    /// The weights array length does not match the neighbor array length.
    WeightLengthMismatch {
        /// Number of edges in the graph.
        edges: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A partition request was invalid (for example, zero partitions).
    InvalidPartition {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A dataset down-scaling divisor was zero (the divisor must be a
    /// positive integer; `scale == 1` is full paper size).
    InvalidScale,
    /// A packed-CSR container is structurally invalid: bad magic,
    /// unsupported version, truncated section, or inconsistent block index.
    PackedFormat {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A packed-CSR container failed checksum verification (bit rot or
    /// truncation past the structural checks).
    PackedChecksum {
        /// Checksum declared by the container header.
        expected: u64,
        /// Checksum computed over the container body.
        found: u64,
    },
    /// A filesystem operation on a graph container failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// The underlying I/O error, stringified (keeps `GraphError: Clone`).
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::MalformedOffsets { detail } => {
                write!(f, "malformed CSR offsets: {detail}")
            }
            GraphError::MissingWeights => write!(f, "graph has no edge weights"),
            GraphError::WeightLengthMismatch { edges, weights } => write!(
                f,
                "weight array length {weights} does not match edge count {edges}"
            ),
            GraphError::InvalidPartition { detail } => {
                write!(f, "invalid partition request: {detail}")
            }
            GraphError::InvalidScale => {
                write!(f, "scale divisor must be a positive integer")
            }
            GraphError::PackedFormat { detail } => {
                write!(f, "malformed packed CSR container: {detail}")
            }
            GraphError::PackedChecksum { expected, found } => write!(
                f,
                "packed CSR checksum mismatch: header declares {expected:#018x}, \
                 body hashes to {found:#018x}"
            ),
            GraphError::Io { path, detail } => {
                write!(f, "i/o error on {path}: {detail}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
