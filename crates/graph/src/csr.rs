//! Compressed-sparse-row graph storage.
//!
//! CSR is the on-device format used by ScalaGraph (Section III-B). A graph
//! with `V` vertices and `M` directed edges is stored as an offset array of
//! `V + 1` entries plus a neighbor array of `M` destination vertex ids (4
//! bytes each), with an optional parallel weight array for SSSP workloads.

use crate::{Edge, EdgeList, GraphError, VertexId, Weight, EDGE_BYTES};

/// An immutable directed graph in compressed-sparse-row form.
///
/// # Example
///
/// ```
/// use scalagraph_graph::{Csr, Edge};
///
/// let g = Csr::from_edges(3, &[Edge::new(0, 1), Edge::new(0, 2), Edge::new(2, 0)]);
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
}

impl Csr {
    /// Builds a CSR from a slice of edges. Edge order within a vertex's
    /// adjacency list follows the input order (stable counting sort), which
    /// the degree-aware re-layout (Section IV-C) later permutes.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is `>= num_vertices`. Use
    /// [`Csr::try_from_edges`] for fallible construction from untrusted data.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        match Self::try_from_edges(num_vertices, edges) {
            Ok(csr) => csr,
            Err(e) => panic!("edge endpoint out of range: {e}"),
        }
    }

    /// Fallible variant of [`Csr::from_edges`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is `>=
    /// num_vertices`.
    pub fn try_from_edges(num_vertices: usize, edges: &[Edge]) -> Result<Self, GraphError> {
        let mut degree = vec![0u64; num_vertices + 1];
        for e in edges {
            for v in [e.src, e.dst] {
                if v as usize >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v as u64,
                        num_vertices: num_vertices as u64,
                    });
                }
            }
            degree[e.src as usize + 1] += 1;
        }
        for i in 1..=num_vertices {
            degree[i] += degree[i - 1];
        }
        let offsets = degree;
        let mut cursor: Vec<u64> = offsets[..num_vertices].to_vec();
        let mut neighbors = vec![0 as VertexId; edges.len()];
        let mut weights = vec![0 as Weight; edges.len()];
        let mut weighted = false;
        for e in edges {
            let slot = cursor[e.src as usize] as usize;
            neighbors[slot] = e.dst;
            weights[slot] = e.weight;
            weighted |= e.weight != 0;
            cursor[e.src as usize] += 1;
        }
        Ok(Csr {
            offsets,
            neighbors,
            weights: weighted.then_some(weights),
        })
    }

    /// Builds a CSR from an [`EdgeList`].
    pub fn from_edge_list(list: &EdgeList) -> Self {
        Self::from_edges(list.num_vertices(), list.as_slice())
    }

    /// Constructs a CSR directly from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MalformedOffsets`] when the offsets are not
    /// monotone or do not cover the neighbor array,
    /// [`GraphError::VertexOutOfRange`] when a neighbor id is out of range,
    /// and [`GraphError::WeightLengthMismatch`] when a weight array of the
    /// wrong length is supplied.
    pub fn from_raw_parts(
        offsets: Vec<u64>,
        neighbors: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
    ) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::MalformedOffsets {
                detail: "offsets array must have at least one entry".to_owned(),
            });
        }
        if offsets[0] != 0 {
            return Err(GraphError::MalformedOffsets {
                detail: format!("offsets[0] must be 0, found {}", offsets[0]),
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::MalformedOffsets {
                detail: "offsets must be non-decreasing".to_owned(),
            });
        }
        let final_offset = offsets.last().copied().unwrap_or(0);
        if final_offset != neighbors.len() as u64 {
            return Err(GraphError::MalformedOffsets {
                detail: format!(
                    "final offset {final_offset} does not equal neighbor count {}",
                    neighbors.len()
                ),
            });
        }
        let num_vertices = offsets.len() - 1;
        if let Some(&v) = neighbors.iter().find(|&&v| v as usize >= num_vertices) {
            return Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: num_vertices as u64,
            });
        }
        if let Some(w) = &weights {
            if w.len() != neighbors.len() {
                return Err(GraphError::WeightLengthMismatch {
                    edges: neighbors.len(),
                    weights: w.len(),
                });
            }
        }
        Ok(Csr {
            offsets,
            neighbors,
            weights,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether edge weights are stored.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Index range of `v`'s edges inside the neighbor array. This is the
    /// "edge memory address" the prefetcher reads per active vertex.
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }

    /// Destination vertices of `v`'s out-edges.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.edge_range(v)]
    }

    /// Weights of `v`'s out-edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingWeights`] on an unweighted graph.
    pub fn edge_weights(&self, v: VertexId) -> Result<&[Weight], GraphError> {
        let r = self.edge_range(v);
        self.weights
            .as_ref()
            .map(|w| &w[r])
            .ok_or(GraphError::MissingWeights)
    }

    /// Weight of the edge stored at flat index `idx`, or `0` when the graph
    /// is unweighted (the neutral element for the algorithms in this suite).
    pub fn weight_at(&self, idx: usize) -> Weight {
        self.weights.as_ref().map_or(0, |w| w[idx])
    }

    /// Destination vertex stored at flat edge index `idx`.
    pub fn neighbor_at(&self, idx: usize) -> VertexId {
        self.neighbors[idx]
    }

    /// The raw offset array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw neighbor array.
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// The raw weight array, when the graph is weighted.
    pub fn weight_array(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all `(src, dst, weight)` triples in CSR order.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            csr: self,
            vertex: 0,
            idx: 0,
        }
    }

    /// The transpose graph (every edge reversed). Weights are carried over.
    pub fn reverse(&self) -> Csr {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges());
        for e in self.edges() {
            edges.push(Edge::weighted(e.dst, e.src, e.weight));
        }
        Csr::from_edges(n, &edges)
    }

    /// In-degrees of every vertex, computed in one pass.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices()];
        for &dst in &self.neighbors {
            d[dst as usize] += 1;
        }
        d
    }

    /// Bytes occupied by the CSR arrays in off-chip memory: the offsets
    /// (8 bytes per vertex, modelling the vertex record of id + edge
    /// address) plus 4 bytes per edge. Used by the off-chip traffic model.
    pub fn storage_bytes(&self) -> u64 {
        (self.offsets.len() as u64) * 8 + (self.neighbors.len() as u64) * EDGE_BYTES as u64
    }

    /// Replaces the adjacency order of each vertex with the permutation
    /// produced by the degree-aware re-layout. `perm` maps new flat edge
    /// index -> old flat edge index and must be a permutation that keeps
    /// every edge within its source vertex's range.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `perm` is not a within-vertex permutation.
    pub(crate) fn apply_edge_permutation(&mut self, perm: &[usize]) {
        debug_assert_eq!(perm.len(), self.neighbors.len());
        let new_neighbors: Vec<VertexId> = perm.iter().map(|&old| self.neighbors[old]).collect();
        let new_weights = self
            .weights
            .as_ref()
            .map(|w| perm.iter().map(|&old| w[old]).collect());
        self.neighbors = new_neighbors;
        self.weights = new_weights;
    }
}

/// Iterator over all edges of a [`Csr`], created by [`Csr::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    csr: &'a Csr,
    vertex: usize,
    idx: usize,
}

impl Iterator for Edges<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Self::Item> {
        if self.idx >= self.csr.neighbors.len() {
            return None;
        }
        while self.csr.offsets[self.vertex + 1] as usize <= self.idx {
            self.vertex += 1;
        }
        let e = Edge::weighted(
            self.vertex as VertexId,
            self.csr.neighbors[self.idx],
            self.csr.weight_at(self.idx),
        );
        self.idx += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.csr.neighbors.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Edges<'_> {}

/// Incremental CSR builder: push adjacency lists vertex by vertex.
///
/// # Example
///
/// ```
/// use scalagraph_graph::CsrBuilder;
///
/// let mut b = CsrBuilder::new();
/// b.push_vertex(&[1, 2]);
/// b.push_vertex(&[2]);
/// b.push_vertex(&[]);
/// let g = b.finish();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    weights: Vec<Weight>,
    weighted: bool,
}

impl CsrBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CsrBuilder {
            offsets: vec![0],
            neighbors: Vec::new(),
            weights: Vec::new(),
            weighted: false,
        }
    }

    /// Appends the next vertex with the given unweighted adjacency list and
    /// returns the builder for chaining.
    pub fn push_vertex(&mut self, neighbors: &[VertexId]) -> &mut Self {
        self.neighbors.extend_from_slice(neighbors);
        self.weights.extend(std::iter::repeat_n(0, neighbors.len()));
        self.offsets.push(self.neighbors.len() as u64);
        self
    }

    /// Appends the next vertex with a weighted adjacency list.
    pub fn push_vertex_weighted(&mut self, neighbors: &[(VertexId, Weight)]) -> &mut Self {
        for &(n, w) in neighbors {
            self.neighbors.push(n);
            self.weights.push(w);
            self.weighted |= w != 0;
        }
        self.offsets.push(self.neighbors.len() as u64);
        self
    }

    /// Finalizes the builder into a [`Csr`].
    ///
    /// # Panics
    ///
    /// Panics if any recorded neighbor id is `>=` the number of pushed
    /// vertices.
    pub fn finish(self) -> Csr {
        let n = self.offsets.len() - 1;
        Csr::from_raw_parts(
            self.offsets,
            self.neighbors,
            self.weighted.then_some(self.weights),
        )
        .unwrap_or_else(|e| panic!("builder produced invalid CSR for {n} vertices: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(
            4,
            &[
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        )
    }

    #[test]
    fn degrees_and_ranges() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.edge_range(1), 2..3);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = diamond();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let g2 = Csr::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn edges_iterator_skips_isolated_vertices() {
        let g = Csr::from_edges(5, &[Edge::new(0, 4), Edge::new(4, 0)]);
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![Edge::new(0, 4), Edge::new(4, 0)]);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn reverse_transposes() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.out_degree(0), 0);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn in_degrees_match_reverse_out_degrees() {
        let g = diamond();
        let ind = g.in_degrees();
        let r = g.reverse();
        for v in 0..4 {
            assert_eq!(ind[v as usize] as usize, r.out_degree(v));
        }
    }

    #[test]
    fn weighted_graph_keeps_weights_through_reverse() {
        let g = Csr::from_edges(3, &[Edge::weighted(0, 1, 7), Edge::weighted(1, 2, 9)]);
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0).unwrap(), &[7]);
        let r = g.reverse();
        assert_eq!(r.edge_weights(2).unwrap(), &[9]);
    }

    #[test]
    fn unweighted_graph_reports_missing_weights() {
        let g = diamond();
        assert!(!g.is_weighted());
        assert_eq!(g.edge_weights(0).unwrap_err(), GraphError::MissingWeights);
        assert_eq!(g.weight_at(0), 0);
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(matches!(
            Csr::from_raw_parts(vec![], vec![], None),
            Err(GraphError::MalformedOffsets { .. })
        ));
        assert!(matches!(
            Csr::from_raw_parts(vec![0, 2, 1], vec![0, 0], None),
            Err(GraphError::MalformedOffsets { .. })
        ));
        assert!(matches!(
            Csr::from_raw_parts(vec![0, 1], vec![3], None),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Csr::from_raw_parts(vec![0, 1], vec![0], Some(vec![1, 2])),
            Err(GraphError::WeightLengthMismatch { .. })
        ));
        assert!(Csr::from_raw_parts(vec![0, 1, 1], vec![1], None).is_ok());
    }

    #[test]
    fn builder_matches_from_edges() {
        let mut b = CsrBuilder::new();
        b.push_vertex(&[1, 2]);
        b.push_vertex(&[3]);
        b.push_vertex(&[3]);
        b.push_vertex(&[]);
        assert_eq!(b.finish(), diamond());
    }

    #[test]
    fn builder_weighted() {
        let mut b = CsrBuilder::new();
        b.push_vertex_weighted(&[(1, 5)]);
        b.push_vertex_weighted(&[]);
        let g = b.finish();
        assert_eq!(g.edge_weights(0).unwrap(), &[5]);
    }

    #[test]
    fn storage_bytes_accounts_offsets_and_edges() {
        let g = diamond();
        assert_eq!(g.storage_bytes(), 5 * 8 + 4 * 4);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn try_from_edges_rejects_bad_endpoint() {
        let err = Csr::try_from_edges(2, &[Edge::new(0, 2)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 2, .. }
        ));
    }
}
