//! Seedable synthetic graph generators.
//!
//! The paper evaluates on SNAP social graphs plus a Graph500 R-MAT graph
//! (Table III). Those raw datasets are not redistributable here, so this
//! module provides generators that reproduce the properties the paper's
//! experiments actually depend on: vertex/edge counts and a power-law degree
//! distribution (the source of the load-imbalance phenomena in Sections
//! II-C, IV-C, IV-D).
//!
//! All generators are deterministic given a seed.

use crate::{Edge, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an R-MAT graph (Graph500 parameters a=0.57, b=0.19, c=0.19),
/// the recursive-matrix model behind the paper's `RMAT24` dataset and a good
/// stand-in for heavy-tailed social graphs such as Twitter.
///
/// `num_vertices` is rounded up to a power of two internally for the
/// recursion; emitted endpoints are folded back below `num_vertices`.
/// Self-loops are kept (they exist in Graph500 output too) but can be
/// stripped via [`crate::EdgeList::remove_self_loops`].
pub fn rmat(num_vertices: usize, num_edges: usize, seed: u64) -> Vec<Edge> {
    rmat_with_params(num_vertices, num_edges, 0.57, 0.19, 0.19, seed)
}

/// R-MAT with explicit quadrant probabilities `a`, `b`, `c` (and
/// `d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics if `a + b + c > 1` or any probability is negative.
pub fn rmat_with_params(
    num_vertices: usize,
    num_edges: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
) -> Vec<Edge> {
    let depth = (num_vertices.max(2) as f64).log2().ceil() as u32;
    rmat_with_depth(num_vertices, num_edges, a, b, c, depth, seed)
}

/// R-MAT with an explicit recursion `depth`. When `depth` exceeds
/// `log2(num_vertices)`, endpoints are generated in the deeper id space
/// and folded into `num_vertices` by modulo — this preserves the degree
/// skew of the *deep* graph at a reduced size, which is how the dataset
/// presets keep a scaled-down RMAT24's hub concentration faithful to the
/// paper-scale original instead of exaggerating it.
///
/// # Panics
///
/// Panics if `a + b + c > 1` or any probability is negative.
pub fn rmat_with_depth(
    num_vertices: usize,
    num_edges: usize,
    a: f64,
    b: f64,
    c: f64,
    depth: u32,
    seed: u64,
) -> Vec<Edge> {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12);
    if num_vertices == 0 {
        return Vec::new();
    }
    let scale = depth
        .max((num_vertices.max(2) as f64).log2().ceil() as u32)
        .min(63);
    let side = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1ab1e);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut x, mut y) = (0usize, 0usize);
        let mut step = side >> 1;
        while step > 0 {
            // Add per-level noise so the quadrant probabilities wobble like
            // the Graph500 reference implementation, avoiding artificial
            // symmetry.
            let r: f64 = rng.gen();
            if r < a {
                // top-left
            } else if r < a + b {
                y += step;
            } else if r < a + b + c {
                x += step;
            } else {
                x += step;
                y += step;
            }
            step >>= 1;
        }
        let src = (x % num_vertices) as VertexId;
        let dst = (y % num_vertices) as VertexId;
        edges.push(Edge::new(src, dst));
    }
    edges
}

/// Generates a directed graph whose out-degrees follow a Zipf distribution
/// with exponent `alpha`, then wires each edge to a preferentially chosen
/// destination. This is the configuration-model stand-in for the SNAP social
/// graphs (Pokec, LiveJournal, Orkut, Flickr): the measured phenomena —
/// a few very-high-degree hubs next to a long tail of low-degree vertices —
/// come directly from this distribution.
///
/// The result has exactly `num_edges` edges (degrees are scaled to match).
pub fn power_law(num_vertices: usize, num_edges: usize, alpha: f64, seed: u64) -> Vec<Edge> {
    power_law_capped(num_vertices, num_edges, alpha, 1.0, seed)
}

/// [`power_law`] with the per-vertex edge share (both out-degree and
/// in-degree weight) clamped to `max_share` of the edge count.
///
/// Down-scaling a Zipf distribution inflates the *relative* share of the
/// top vertex: a 41M-vertex Twitter's biggest hub owns ~0.1% of the edges,
/// but a plain Zipf over an 80k-vertex stand-in hands its top vertex
/// several percent. The dataset presets use this cap to keep per-vertex
/// load shares — what the accelerators' load-balancing actually sees —
/// faithful to paper scale.
///
/// # Panics
///
/// Panics unless `0 < max_share <= 1`.
pub fn power_law_capped(
    num_vertices: usize,
    num_edges: usize,
    alpha: f64,
    max_share: f64,
    seed: u64,
) -> Vec<Edge> {
    assert!(
        max_share > 0.0 && max_share <= 1.0,
        "share must be in (0, 1]"
    );
    if num_vertices == 0 || num_edges == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdeadbeef);

    // Draw raw Zipf-like ranks: weight(i) = 1 / rank^alpha with ranks
    // assigned to a random permutation of the vertices so hub ids are not
    // clustered at 0 (real SNAP ids are not sorted by degree either).
    let mut perm: Vec<usize> = (0..num_vertices).collect();
    for i in (1..num_vertices).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut weights = vec![0f64; num_vertices];
    let mut total = 0f64;
    // First pass to learn the uncapped mass, then clamp each weight so no
    // vertex exceeds `max_share` of the total.
    let uncapped: f64 = (1..=num_vertices)
        .map(|r| 1.0 / (r as f64).powf(alpha))
        .sum();
    let cap = max_share * uncapped;
    for (rank, &v) in perm.iter().enumerate() {
        let w = (1.0 / ((rank + 1) as f64).powf(alpha)).min(cap);
        weights[v] = w;
        total += w;
    }

    // Integer out-degrees proportional to weight, then fix up the remainder
    // one edge at a time so the total is exact.
    let mut degrees = vec![0usize; num_vertices];
    let mut assigned = 0usize;
    for v in 0..num_vertices {
        let d = ((weights[v] / total) * num_edges as f64).floor() as usize;
        degrees[v] = d;
        assigned += d;
    }
    while assigned < num_edges {
        // Give leftover edges to random vertices weighted by id hash; cheap
        // and keeps the tail non-degenerate.
        let v = rng.gen_range(0..num_vertices);
        degrees[v] += 1;
        assigned += 1;
    }

    // Destination choice: preferential (hubs receive more in-edges too),
    // approximated by sampling the same Zipf weights through an alias-free
    // cumulative trick: sample a rank with the inverse-CDF of Zipf, map
    // through the permutation.
    let cdf: Vec<f64> = {
        let mut acc = 0.0;
        perm.iter()
            .enumerate()
            .map(|(rank, _)| {
                acc += (1.0 / ((rank + 1) as f64).powf(alpha)).min(cap);
                acc / total
            })
            .collect()
    };
    let sample_dst = |rng: &mut SmallRng| -> VertexId {
        let r: f64 = rng.gen();
        let rank = cdf.partition_point(|&c| c < r).min(num_vertices - 1);
        perm[rank] as VertexId
    };

    let mut edges = Vec::with_capacity(num_edges);
    for (v, &degree) in degrees.iter().enumerate() {
        for _ in 0..degree {
            let mut dst = sample_dst(&mut rng);
            if dst as usize == v {
                dst = ((v + 1) % num_vertices) as VertexId;
            }
            edges.push(Edge::new(v as VertexId, dst));
        }
    }
    edges
}

/// Uniform random directed graph: each edge's endpoints are independent
/// uniform draws (an Erdős–Rényi-style G(n, m) multigraph).
pub fn uniform(num_vertices: usize, num_edges: usize, seed: u64) -> Vec<Edge> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0ddba11);
    let mut edges = Vec::with_capacity(num_edges);
    if num_vertices == 0 {
        return edges;
    }
    for _ in 0..num_edges {
        let src = rng.gen_range(0..num_vertices) as VertexId;
        let mut dst = rng.gen_range(0..num_vertices) as VertexId;
        if dst == src {
            dst = (dst + 1) % num_vertices as VertexId;
        }
        edges.push(Edge::new(src, dst));
    }
    edges
}

/// A simple directed path `0 -> 1 -> ... -> n-1`: the worst case for
/// frontier parallelism (one active vertex per BFS/SSSP iteration).
pub fn path(num_vertices: usize) -> Vec<Edge> {
    (1..num_vertices)
        .map(|v| Edge::new(v as VertexId - 1, v as VertexId))
        .collect()
}

/// A star: vertex 0 points at every other vertex. The extreme of the
/// power-law hub phenomenon; exercises the high-degree path of the
/// degree-aware scheduler.
pub fn star(num_vertices: usize) -> Vec<Edge> {
    (1..num_vertices)
        .map(|v| Edge::new(0, v as VertexId))
        .collect()
}

/// A 2D grid with edges to the right and down neighbor: a bounded-degree,
/// high-diameter graph (the opposite regime from social graphs).
pub fn grid(rows: usize, cols: usize) -> Vec<Edge> {
    let mut edges = Vec::new();
    let at = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(at(r, c), at(r + 1, c)));
            }
        }
    }
    edges
}

/// A complete binary tree with edges from parent to children; depth grows
/// logarithmically, frontier doubles each BFS level.
pub fn binary_tree(num_vertices: usize) -> Vec<Edge> {
    let mut edges = Vec::new();
    for v in 1..num_vertices {
        edges.push(Edge::new(((v - 1) / 2) as VertexId, v as VertexId));
    }
    edges
}

/// A complete directed graph on `n` vertices (no self loops). Only sensible
/// for tiny `n`; used by tests.
pub fn complete(n: usize) -> Vec<Edge> {
    let mut edges = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                edges.push(Edge::new(s as VertexId, d as VertexId));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    #[test]
    fn rmat_counts_and_determinism() {
        let a = rmat(1000, 5000, 1);
        let b = rmat(1000, 5000, 1);
        let c = rmat(1000, 5000, 2);
        assert_eq!(a.len(), 5000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .iter()
            .all(|e| (e.src as usize) < 1000 && (e.dst as usize) < 1000));
    }

    #[test]
    fn rmat_is_skewed() {
        let g = Csr::from_edges(1024, &rmat(1024, 16 * 1024, 3));
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() / g.num_vertices();
        // R-MAT hubs should far exceed the average degree.
        assert!(max_deg > 4 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn power_law_exact_edge_count_and_skew() {
        let edges = power_law(2000, 20_000, 0.8, 11);
        assert_eq!(edges.len(), 20_000);
        let g = Csr::from_edges(2000, &edges);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg > 40, "expected a hub, max degree {max_deg}");
        // And plenty of low-degree vertices.
        let low = g.vertices().filter(|&v| g.out_degree(v) <= 10).count();
        assert!(low > 1000);
    }

    #[test]
    fn power_law_no_self_loops() {
        assert!(power_law(500, 5000, 1.0, 5).iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn uniform_no_self_loops_and_in_range() {
        let edges = uniform(100, 1000, 9);
        assert_eq!(edges.len(), 1000);
        assert!(edges.iter().all(|e| e.src != e.dst));
        assert!(edges.iter().all(|e| (e.src as usize) < 100));
    }

    #[test]
    fn structured_generators_shapes() {
        assert_eq!(path(5).len(), 4);
        assert_eq!(star(5).len(), 4);
        assert_eq!(grid(3, 4).len(), 3 * 3 + 2 * 4); // rights + downs
        assert_eq!(binary_tree(7).len(), 6);
        assert_eq!(complete(4).len(), 12);
    }

    #[test]
    fn empty_inputs() {
        assert!(rmat(0, 10, 0).is_empty());
        assert!(power_law(0, 10, 1.0, 0).is_empty());
        assert!(uniform(0, 10, 0).is_empty());
        assert!(path(0).is_empty());
        assert!(path(1).is_empty());
    }
}
