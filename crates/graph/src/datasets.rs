//! Dataset presets matching the paper's evaluation graphs.
//!
//! Table III of the paper lists five evaluation graphs (plus Flickr from
//! Table I used in the motivation study). The originals are SNAP downloads
//! or Graph500 output; this module regenerates synthetic stand-ins with the
//! same vertex/edge budget and degree skew, down-scaled by a configurable
//! factor so cycle-accurate simulation stays tractable (see DESIGN.md,
//! "Substitutions").

use crate::{pargen, Csr, EdgeList, GraphError, VertexId};

/// The family of random model used to synthesize a dataset stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// Zipf-degree configuration model (social networks).
    PowerLaw {
        /// Zipf exponent controlling skew; higher is more skewed.
        alpha_milli: u32,
    },
    /// Graph500 R-MAT recursive matrix model.
    Rmat,
}

/// Static description of one paper dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Full dataset name as used in the paper.
    pub name: &'static str,
    /// Two-letter abbreviation used in the paper's figures.
    pub abbrev: &'static str,
    /// Vertex count of the original dataset.
    pub paper_vertices: u64,
    /// Edge count of the original dataset.
    pub paper_edges: u64,
    /// Random model used for the synthetic stand-in.
    pub family: GraphFamily,
}

impl DatasetSpec {
    /// Average degree of the original dataset.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_vertices as f64
    }
}

/// The evaluation datasets of Table III plus Flickr (Table I).
///
/// `alpha_milli` values are chosen so the generated degree skew tracks the
/// published maximum-degree/average-degree character of each graph: social
/// follower graphs (LiveJournal, Twitter, Flickr) are more skewed than
/// friendship graphs (Pokec, Orkut).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Dataset {
    /// Flickr photo-sharing network (Table I; motivation experiments).
    Flickr,
    /// Pokec social network (PK).
    Pokec,
    /// LiveJournal follower network (LJ).
    LiveJournal,
    /// Orkut social network (OR).
    Orkut,
    /// Graph500 R-MAT scale-24 graph (RM).
    Rmat24,
    /// Twitter follower graph (TW).
    Twitter,
}

impl Dataset {
    /// All datasets in the order used by the paper's figures.
    pub const ALL: [Dataset; 6] = [
        Dataset::Flickr,
        Dataset::Pokec,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Rmat24,
        Dataset::Twitter,
    ];

    /// The five Table III datasets (the overall-performance workloads).
    pub const EVALUATION: [Dataset; 5] = [
        Dataset::Pokec,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Rmat24,
        Dataset::Twitter,
    ];

    /// The four Table I graphs used by the motivation study (Figure 4).
    pub const MOTIVATION: [Dataset; 4] = [
        Dataset::Flickr,
        Dataset::Pokec,
        Dataset::LiveJournal,
        Dataset::Orkut,
    ];

    /// Static metadata for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Flickr => DatasetSpec {
                name: "Flickr",
                abbrev: "FL",
                paper_vertices: 820_000,
                paper_edges: 9_840_000,
                family: GraphFamily::PowerLaw { alpha_milli: 900 },
            },
            Dataset::Pokec => DatasetSpec {
                name: "Pokec",
                abbrev: "PK",
                paper_vertices: 1_600_000,
                paper_edges: 30_600_000,
                family: GraphFamily::PowerLaw { alpha_milli: 700 },
            },
            Dataset::LiveJournal => DatasetSpec {
                name: "LiveJournal",
                abbrev: "LJ",
                paper_vertices: 4_800_000,
                paper_edges: 68_900_000,
                family: GraphFamily::PowerLaw { alpha_milli: 850 },
            },
            Dataset::Orkut => DatasetSpec {
                name: "Orkut",
                abbrev: "OR",
                paper_vertices: 3_000_000,
                paper_edges: 234_300_000,
                family: GraphFamily::PowerLaw { alpha_milli: 650 },
            },
            Dataset::Rmat24 => DatasetSpec {
                name: "RMAT24",
                abbrev: "RM",
                paper_vertices: 16_700_000,
                paper_edges: 536_800_000,
                family: GraphFamily::Rmat,
            },
            Dataset::Twitter => DatasetSpec {
                name: "Twitter",
                abbrev: "TW",
                paper_vertices: 41_600_000,
                paper_edges: 1_468_400_000,
                family: GraphFamily::PowerLaw { alpha_milli: 950 },
            },
        }
    }

    /// Generates the synthetic stand-in at `1/scale` of the paper size as an
    /// edge list (weights all zero), fanning generation chunks across the
    /// available cores.
    ///
    /// The output is a pure function of `(self, scale, seed)`: generation is
    /// chunked with per-chunk seeded streams ([`crate::pargen`]), so thread
    /// count and scheduling cannot change a single bit —
    /// [`Dataset::edge_list_serial`] produces the identical list on one
    /// thread. Each vertex's adjacency is emitted in canonical ascending
    /// order, which is what the packed container's delta encoder compresses.
    pub fn try_edge_list(&self, scale: u64, seed: u64) -> Result<EdgeList, GraphError> {
        self.edge_list_mode(scale, seed, true)
    }

    /// Panicking convenience wrapper around [`Dataset::try_edge_list`].
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn edge_list(&self, scale: u64, seed: u64) -> EdgeList {
        match self.try_edge_list(scale, seed) {
            Ok(list) => list,
            Err(e) => panic!("invalid dataset request: {e}"),
        }
    }

    /// Single-threaded reference generation: bit-identical to
    /// [`Dataset::edge_list`], using a plain binary search per destination
    /// draw and running every chunk in order on the calling thread. This is
    /// the baseline `bench_datasets` measures the parallel path against.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn edge_list_serial(&self, scale: u64, seed: u64) -> EdgeList {
        match self.edge_list_mode(scale, seed, false) {
            Ok(list) => list,
            Err(e) => panic!("invalid dataset request: {e}"),
        }
    }

    fn edge_list_mode(
        &self,
        scale: u64,
        seed: u64,
        parallel: bool,
    ) -> Result<EdgeList, GraphError> {
        if scale == 0 {
            return Err(GraphError::InvalidScale);
        }
        let spec = self.spec();
        let v = (spec.paper_vertices / scale).max(64) as usize;
        let e = (spec.paper_edges / scale).max(256) as usize;
        let edges = match spec.family {
            GraphFamily::PowerLaw { alpha_milli } => {
                // Cap per-vertex edge share at 0.2% — the hub concentration
                // regime of the paper-scale originals (same model as
                // generators::power_law_capped, chunk-parallel).
                pargen::power_law_capped_chunked(
                    v,
                    e,
                    alpha_milli as f64 / 1000.0,
                    0.002,
                    seed,
                    parallel,
                )
            }
            GraphFamily::Rmat => {
                // Recurse to the paper's scale-24 depth and fold ids, so
                // the stand-in keeps RMAT24's hub concentration instead of
                // the (far higher) skew of a shallow small R-MAT. Self-loops
                // are dropped and the adjacency canonicalized to sorted
                // order like the power-law path.
                let mut edges =
                    pargen::rmat_folded_chunked(v, e, 0.57, 0.19, 0.19, 24, seed, parallel);
                edges.retain(|ed| ed.src != ed.dst);
                pargen::canonicalize_adjacency(v, edges)
            }
        };
        match EdgeList::from_vec(v, edges) {
            Ok(list) => Ok(list),
            Err(e) => panic!("generator produced out-of-range endpoint: {e}"),
        }
    }

    /// Generates the synthetic stand-in as a CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`; use [`Dataset::try_generate`] for a typed
    /// error.
    pub fn generate(&self, scale: u64, seed: u64) -> Csr {
        Csr::from_edge_list(&self.edge_list(scale, seed))
    }

    /// Fallible variant of [`Dataset::generate`].
    pub fn try_generate(&self, scale: u64, seed: u64) -> Result<Csr, GraphError> {
        Ok(Csr::from_edge_list(&self.try_edge_list(scale, seed)?))
    }

    /// Generates a weighted CSR (uniform random weights `0..=255`), the
    /// paper's SSSP configuration.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`; use [`Dataset::try_generate_weighted`] for a
    /// typed error.
    pub fn generate_weighted(&self, scale: u64, seed: u64) -> Csr {
        match self.try_generate_weighted(scale, seed) {
            Ok(g) => g,
            Err(e) => panic!("invalid dataset request: {e}"),
        }
    }

    /// Fallible variant of [`Dataset::generate_weighted`].
    pub fn try_generate_weighted(&self, scale: u64, seed: u64) -> Result<Csr, GraphError> {
        let mut list = self.try_edge_list(scale, seed)?;
        list.randomize_weights(255, seed.wrapping_add(1));
        Ok(Csr::from_edge_list(&list))
    }

    /// A vertex guaranteed to have outgoing edges, used as the BFS/SSSP
    /// root: the highest-out-degree vertex (SNAP evaluations conventionally
    /// root traversals at a hub so the traversal covers most of the graph).
    pub fn pick_root(graph: &Csr) -> VertexId {
        graph
            .vertices()
            .max_by_key(|&v| graph.out_degree(v))
            .unwrap_or(0)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().abbrev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_iii() {
        assert_eq!(Dataset::Pokec.spec().paper_vertices, 1_600_000);
        assert_eq!(Dataset::Twitter.spec().paper_edges, 1_468_400_000);
        assert!((Dataset::Orkut.spec().paper_avg_degree() - 78.1).abs() < 1.0);
    }

    #[test]
    fn generate_scales_counts() {
        let g = Dataset::Pokec.generate(1024, 42);
        let spec = Dataset::Pokec.spec();
        assert_eq!(g.num_vertices() as u64, spec.paper_vertices / 1024);
        assert_eq!(g.num_edges() as u64, spec.paper_edges / 1024);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Dataset::LiveJournal.generate(2048, 7);
        let b = Dataset::LiveJournal.generate(2048, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_variant_has_weights() {
        let g = Dataset::Pokec.generate_weighted(2048, 7);
        assert!(g.is_weighted());
    }

    #[test]
    fn rmat_dataset_generates() {
        let g = Dataset::Rmat24.generate(16384, 3);
        assert!(g.num_edges() > 0);
        assert!(g.edges().all(|e| e.src != e.dst));
    }

    #[test]
    fn pick_root_is_a_hub() {
        let g = Dataset::Pokec.generate(2048, 9);
        let root = Dataset::pick_root(&g);
        let max = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert_eq!(g.out_degree(root), max);
        assert!(max > 0);
    }

    #[test]
    fn tiny_scale_clamps() {
        // Absurd scale still yields a non-degenerate graph.
        let g = Dataset::Flickr.generate(u64::MAX, 1);
        assert!(g.num_vertices() >= 64);
        assert!(g.num_edges() >= 1);
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(Dataset::Twitter.to_string(), "TW");
    }

    #[test]
    fn zero_scale_is_a_typed_error() {
        assert_eq!(
            Dataset::Pokec.try_edge_list(0, 1).unwrap_err(),
            GraphError::InvalidScale
        );
        assert_eq!(
            Dataset::Rmat24.try_generate(0, 1).unwrap_err(),
            GraphError::InvalidScale
        );
        assert_eq!(
            Dataset::Twitter.try_generate_weighted(0, 1).unwrap_err(),
            GraphError::InvalidScale
        );
    }

    #[test]
    fn parallel_matches_serial_reference() {
        for ds in [Dataset::Pokec, Dataset::Rmat24] {
            let parallel = ds.edge_list(4096, 11);
            let serial = ds.edge_list_serial(4096, 11);
            assert_eq!(parallel, serial, "{ds} diverged from serial reference");
        }
    }

    #[test]
    fn adjacency_is_canonically_sorted() {
        for ds in [Dataset::LiveJournal, Dataset::Rmat24] {
            let g = ds.generate(8192, 13);
            for v in g.vertices() {
                let nbrs = g.neighbors(v);
                assert!(
                    nbrs.windows(2).all(|w| w[0] <= w[1]),
                    "{ds} vertex {v} adjacency unsorted"
                );
            }
        }
    }
}
