//! Delta+varint compressed, memory-mappable CSR container.
//!
//! The in-memory [`Csr`] spends 8 bytes per vertex (offset) and 4 bytes per
//! edge; at paper scale (Table III: Twitter = 1.47B edges) that is ~6 GiB
//! rebuilt from scratch on every process start. This module trades decode
//! work for footprint the way bandwidth-efficient graph systems (GraphScale,
//! Ligra+) do: adjacency lists are varint-encoded — delta-encoded first when
//! a vertex's neighbors are sorted — behind a coarse *block index*, and the
//! whole container can be memory-mapped so opening a packed graph costs
//! header + index validation, not an O(edges) rebuild.
//!
//! # Container layout (all little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SGPKCSR1"
//!      8     4  version (= 1)
//!     12     4  flags   (bit 0: weighted)
//!     16     8  num_vertices
//!     24     8  num_edges
//!     32     4  block_size (vertices per block, >= 1)
//!     36     4  reserved (= 0)
//!     40     8  payload_len
//!     48     8  checksum (FNV-1a/64 over index + payload, 8-byte words)
//!     56     —  block index: (num_blocks + 1) x { payload_off u64, first_edge u64 }
//!      —     —  payload
//! ```
//!
//! The index has one sentinel entry past the last block, so block `b`'s
//! payload bytes are `index[b].off .. index[b+1].off` and its edge count is
//! `index[b+1].first_edge - index[b].first_edge` — both O(1) lookups.
//!
//! # Payload encoding
//!
//! Per vertex, in ascending id order: a varint header `(degree << 1) |
//! sorted`, then the adjacency list — if `sorted` (non-decreasing ids), the
//! first id absolute followed by per-edge gaps, else every id raw — and
//! finally, on weighted graphs, one varint weight per edge. The unsorted
//! escape guarantees *exact* round-trips for arbitrary adjacency order
//! (generator output order is part of a graph's identity here: the
//! simulator's tile layout, and therefore its cycle counts, depend on it).
//!
//! # Validation
//!
//! [`PackedCsr::open`] validates the header, checksums the body, and walks
//! every block's varint structure (including neighbor range checks) before
//! returning, so truncation, bit rot, and hostile headers all surface as
//! typed [`GraphError`]s at open — after which the read API cannot fail.
//! Reads decode one block at a time into a pooled scratch buffer (interior
//! mutability; keep one `PackedCsr` per thread).

use crate::{Csr, Edge, GraphError, GraphRead, VertexId, Weight};
use std::cell::{Ref, RefCell};
use std::fs::File;
use std::io::Read as _;
use std::path::Path;

/// Magic bytes prefixing the packed CSR container.
pub const PACKED_MAGIC: &[u8; 8] = b"SGPKCSR1";

/// Container format version written by this build.
pub const PACKED_VERSION: u32 = 1;

/// Default vertices per block: 1024 keeps the index at 16 KiB per million
/// vertices (resident even for Twitter-scale graphs) while a decoded block
/// (~1K adjacency lists) still fits comfortably in L2 scratch.
pub const DEFAULT_BLOCK_SIZE: u32 = 1024;

const HEADER_LEN: usize = 56;
const INDEX_ENTRY_LEN: usize = 16;
const FLAG_WEIGHTED: u32 = 1;

fn format_err(detail: impl Into<String>) -> GraphError {
    GraphError::PackedFormat {
        detail: detail.into(),
    }
}

fn io_err(path: &Path, e: std::io::Error) -> GraphError {
    GraphError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// FNV-1a over 8-byte little-endian words (tail zero-padded), finalized
/// with the length. Word-at-a-time keeps open-time checksumming at memory
/// speed rather than byte-at-a-time speed.
fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut i = 0;
    while i + 8 <= bytes.len() {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[i..i + 8]);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(PRIME);
        i += 8;
    }
    if i < bytes.len() {
        let mut w = [0u8; 8];
        w[..bytes.len() - i].copy_from_slice(&bytes[i..]);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(PRIME);
    }
    (h ^ bytes.len() as u64).wrapping_mul(PRIME)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, GraphError> {
    let mut val = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| format_err("varint runs past the end of its section"))?;
        *pos += 1;
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(format_err("varint exceeds 64 bits"));
        }
        val |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(val);
        }
        shift += 7;
        if shift > 63 {
            return Err(format_err("varint exceeds 64 bits"));
        }
    }
}

/// Varint decode tuned for the open-time validation walk: one unaligned
/// 32-bit load resolves any varint that terminates within 4 bytes (every
/// delta gap and almost every id in practice), falling back to
/// [`read_varint`] near the section tail, for longer encodings, and for
/// every error case — so the two functions accept and reject *exactly*
/// the same byte sequences with the same values (overlong-but-terminated
/// encodings included).
#[inline]
fn scan_varint(data: &[u8], pos: &mut usize) -> Result<u64, GraphError> {
    if let Some(chunk) = data.get(*pos..*pos + 4) {
        let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        // A varint ends at the first byte whose continuation bit is clear.
        // A compare chain beats a branchless trailing_zeros extraction
        // here: within one graph the delta gaps cluster around one length
        // (`n / avg_degree`), so these branches predict near-perfectly.
        if w & 0x80 == 0 {
            *pos += 1;
            return Ok(u64::from(w & 0x7f));
        }
        if w & 0x8000 == 0 {
            *pos += 2;
            return Ok(u64::from(w & 0x7f) | u64::from((w >> 8) & 0x7f) << 7);
        }
        if w & 0x0080_0000 == 0 {
            *pos += 3;
            return Ok(u64::from(w & 0x7f)
                | u64::from((w >> 8) & 0x7f) << 7
                | u64::from((w >> 16) & 0x7f) << 14);
        }
        if w & 0x8000_0000 == 0 {
            *pos += 4;
            return Ok(u64::from(w & 0x7f)
                | u64::from((w >> 8) & 0x7f) << 7
                | u64::from((w >> 16) & 0x7f) << 14
                | u64::from((w >> 24) & 0x7f) << 21);
        }
    }
    read_varint(data, pos)
}

/// Serializes `graph` into a packed container in memory.
///
/// # Panics
///
/// Panics if `block_size == 0`.
pub fn pack_to_vec(graph: &Csr, block_size: u32) -> Vec<u8> {
    assert!(block_size > 0, "block size must be positive");
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let bsz = block_size as usize;
    let num_blocks = n.div_ceil(bsz);

    let mut payload = Vec::with_capacity(m * 2 + n);
    let mut index: Vec<(u64, u64)> = Vec::with_capacity(num_blocks + 1);
    let mut edges_done = 0u64;
    for block in 0..num_blocks {
        index.push((payload.len() as u64, edges_done));
        let lo = block * bsz;
        let hi = (lo + bsz).min(n);
        for v in lo..hi {
            let v = v as VertexId;
            let neighbors = graph.neighbors(v);
            let sorted = neighbors.windows(2).all(|w| w[0] <= w[1]);
            push_varint(
                &mut payload,
                (neighbors.len() as u64) << 1 | u64::from(sorted),
            );
            if sorted {
                let mut prev = 0u64;
                for (i, &d) in neighbors.iter().enumerate() {
                    let d = u64::from(d);
                    push_varint(&mut payload, if i == 0 { d } else { d - prev });
                    prev = d;
                }
            } else {
                for &d in neighbors {
                    push_varint(&mut payload, u64::from(d));
                }
            }
            if graph.is_weighted() {
                for &w in graph.edge_weights(v).unwrap_or(&[]) {
                    push_varint(&mut payload, u64::from(w));
                }
            }
            edges_done += neighbors.len() as u64;
        }
    }
    index.push((payload.len() as u64, edges_done));

    let mut out = Vec::with_capacity(HEADER_LEN + index.len() * INDEX_ENTRY_LEN + payload.len());
    out.extend_from_slice(PACKED_MAGIC);
    out.extend_from_slice(&PACKED_VERSION.to_le_bytes());
    out.extend_from_slice(&u32::from(graph.is_weighted()).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    out.extend_from_slice(&block_size.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // checksum patched below
    for (off, first_edge) in &index {
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&first_edge.to_le_bytes());
    }
    out.extend_from_slice(&payload);
    let sum = checksum64(&out[HEADER_LEN..]);
    out[48..56].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Packs `graph` and writes the container to `path`, returning the number
/// of bytes written.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on filesystem failures.
pub fn write_packed<P: AsRef<Path>>(
    graph: &Csr,
    path: P,
    block_size: u32,
) -> Result<u64, GraphError> {
    let path = path.as_ref();
    let bytes = pack_to_vec(graph, block_size);
    std::fs::write(path, &bytes).map_err(|e| io_err(path, e))?;
    Ok(bytes.len() as u64)
}

#[cfg(unix)]
mod map {
    //! Minimal read-only `mmap` binding against the platform libc (the
    //! toolchain links libc through std already; no new dependency).

    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub struct Map {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The region is private, read-only, and owned until Drop.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn of_file(file: &File, len: usize) -> std::io::Result<Map> {
            if len == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: anonymous address, read-only private mapping of a
            // file descriptor we hold open; failure is reported as
            // MAP_FAILED (-1) and checked below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live private read-only mapping.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region mapped in `of_file`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

enum Storage {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mapped(map::Map),
}

impl Storage {
    fn bytes(&self) -> &[u8] {
        match self {
            Storage::Heap(v) => v,
            #[cfg(unix)]
            Storage::Mapped(m) => m.bytes(),
        }
    }
}

/// One decoded block, reused as pooled scratch across reads.
struct DecodedBlock {
    /// Which block is currently decoded; `usize::MAX` means none.
    block: usize,
    /// Local edge offsets within the block (`verts_in_block + 1` entries).
    prefix: Vec<u32>,
    neighbors: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl DecodedBlock {
    fn empty() -> Self {
        DecodedBlock {
            block: usize::MAX,
            prefix: Vec::new(),
            neighbors: Vec::new(),
            weights: Vec::new(),
        }
    }
}

/// A validated, read-only, block-compressed CSR backed by a memory-mapped
/// (or heap-resident) container.
///
/// # Example
///
/// ```
/// use scalagraph_graph::{generators, packed, Csr};
///
/// let g = Csr::from_edges(64, &generators::uniform(64, 256, 7));
/// let bytes = packed::pack_to_vec(&g, 16);
/// let p = packed::PackedCsr::from_bytes(bytes).unwrap();
/// assert_eq!(p.num_vertices(), 64);
/// assert_eq!(&*p.neighbors(3), g.neighbors(3));
/// assert_eq!(p.to_csr().unwrap(), g);
/// ```
pub struct PackedCsr {
    data: Storage,
    num_vertices: usize,
    num_edges: usize,
    weighted: bool,
    block_size: usize,
    num_blocks: usize,
    scratch: RefCell<DecodedBlock>,
}

impl PackedCsr {
    /// Opens and fully validates a packed container, memory-mapping it when
    /// the platform allows (falling back to a heap read otherwise).
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on filesystem failures, [`GraphError::PackedFormat`]
    /// for structural corruption (bad magic/version, truncation, index or
    /// varint inconsistencies, out-of-range neighbor ids), and
    /// [`GraphError::PackedChecksum`] when the body fails verification.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<PackedCsr, GraphError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| io_err(path, e))?;
        let len = file.metadata().map_err(|e| io_err(path, e))?.len();
        if len > usize::MAX as u64 {
            return Err(format_err("container larger than the address space"));
        }
        let storage = Self::map_or_read(&file, len as usize, path)?;
        Self::from_storage(storage)
    }

    #[cfg(unix)]
    fn map_or_read(file: &File, len: usize, path: &Path) -> Result<Storage, GraphError> {
        match map::Map::of_file(file, len) {
            Ok(m) => Ok(Storage::Mapped(m)),
            // A filesystem without mmap support degrades to a heap read;
            // validation and the read API are identical either way.
            Err(_) => Self::read_heap(file, len, path),
        }
    }

    #[cfg(not(unix))]
    fn map_or_read(file: &File, len: usize, path: &Path) -> Result<Storage, GraphError> {
        Self::read_heap(file, len, path)
    }

    fn read_heap(mut file: &File, len: usize, path: &Path) -> Result<Storage, GraphError> {
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf).map_err(|e| io_err(path, e))?;
        Ok(Storage::Heap(buf))
    }

    /// Opens a container already resident in memory (tests, in-process
    /// pack-then-load pipelines). Identical validation to [`PackedCsr::open`].
    ///
    /// # Errors
    ///
    /// Same as [`PackedCsr::open`], minus the I/O class.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<PackedCsr, GraphError> {
        Self::from_storage(Storage::Heap(bytes))
    }

    fn from_storage(data: Storage) -> Result<PackedCsr, GraphError> {
        let bytes = data.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(format_err(format!(
                "container is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        let u32_at = |off: usize| {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[off..off + 4]);
            u32::from_le_bytes(b)
        };
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(b)
        };
        if &bytes[..8] != PACKED_MAGIC {
            return Err(format_err("bad magic: not a packed CSR container"));
        }
        let version = u32_at(8);
        if version != PACKED_VERSION {
            return Err(format_err(format!(
                "unsupported container version {version} (this build reads {PACKED_VERSION})"
            )));
        }
        let flags = u32_at(12);
        if flags & !FLAG_WEIGHTED != 0 {
            return Err(format_err(format!("unknown flag bits {flags:#x}")));
        }
        let num_vertices = u64_at(16);
        let num_edges = u64_at(24);
        let block_size = u32_at(32);
        if block_size == 0 {
            return Err(format_err("block size must be positive"));
        }
        if u32_at(36) != 0 {
            return Err(format_err("reserved header field must be zero"));
        }
        let payload_len = u64_at(40);
        let declared_sum = u64_at(48);
        if num_vertices > u64::from(u32::MAX) {
            return Err(format_err(format!(
                "{num_vertices} vertices exceed the 32-bit id space"
            )));
        }
        let num_blocks = num_vertices.div_ceil(u64::from(block_size));
        // u128 keeps a hostile header from overflowing the size check.
        let expected_len = HEADER_LEN as u128
            + (u128::from(num_blocks) + 1) * INDEX_ENTRY_LEN as u128
            + u128::from(payload_len);
        if bytes.len() as u128 != expected_len {
            return Err(format_err(format!(
                "header declares {expected_len} bytes but the container is {} bytes",
                bytes.len()
            )));
        }
        let found_sum = checksum64(&bytes[HEADER_LEN..]);
        if found_sum != declared_sum {
            return Err(GraphError::PackedChecksum {
                expected: declared_sum,
                found: found_sum,
            });
        }

        let packed = PackedCsr {
            num_vertices: num_vertices as usize,
            num_edges: num_edges as usize,
            weighted: flags & FLAG_WEIGHTED != 0,
            block_size: block_size as usize,
            num_blocks: num_blocks as usize,
            data,
            scratch: RefCell::new(DecodedBlock::empty()),
        };
        packed.validate_index(payload_len)?;
        // Walk every block once so the read API cannot fail afterwards:
        // varint structure, per-block edge counts, and neighbor ranges are
        // all certified here. The walk is structure-only (`verify_block`):
        // it decodes the exact same stream `decode_block_into` does but
        // materializes nothing, which keeps cold-open latency at
        // varint-scan speed rather than Vec-build speed.
        for b in 0..packed.num_blocks {
            packed.verify_block(b)?;
        }
        Ok(packed)
    }

    fn index_entry(&self, i: usize) -> (u64, u64) {
        let off = HEADER_LEN + i * INDEX_ENTRY_LEN;
        let bytes = self.data.bytes();
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        a.copy_from_slice(&bytes[off..off + 8]);
        b.copy_from_slice(&bytes[off + 8..off + 16]);
        (u64::from_le_bytes(a), u64::from_le_bytes(b))
    }

    fn payload(&self) -> &[u8] {
        &self.data.bytes()[HEADER_LEN + (self.num_blocks + 1) * INDEX_ENTRY_LEN..]
    }

    fn validate_index(&self, payload_len: u64) -> Result<(), GraphError> {
        let (first_off, first_edge) = self.index_entry(0);
        if first_off != 0 || first_edge != 0 {
            return Err(format_err("block index must start at offset 0 / edge 0"));
        }
        let mut prev = (first_off, first_edge);
        for i in 1..=self.num_blocks {
            let cur = self.index_entry(i);
            if cur.0 < prev.0 || cur.1 < prev.1 {
                return Err(format_err(format!("block index entry {i} is not monotone")));
            }
            if cur.1 - prev.1 > u64::from(u32::MAX) {
                return Err(format_err(format!("block {} spans too many edges", i - 1)));
            }
            prev = cur;
        }
        let (last_off, last_edge) = self.index_entry(self.num_blocks);
        if last_off != payload_len {
            return Err(format_err(format!(
                "index sentinel offset {last_off} does not cover the {payload_len}-byte payload"
            )));
        }
        if last_edge != self.num_edges as u64 {
            return Err(format_err(format!(
                "index sentinel counts {last_edge} edges but the header declares {}",
                self.num_edges
            )));
        }
        Ok(())
    }

    /// Structure-only certification of one block: applies every check
    /// [`PackedCsr::decode_block_into`] applies — varint well-formedness,
    /// per-block edge accounting, neighbor range, weight width, exact
    /// section consumption — without building the decoded arrays. Ids in a
    /// `sorted` run are non-decreasing (gaps are unsigned), so the run's
    /// last id is its maximum and one range check certifies the whole run;
    /// unsorted runs and weights track a running maximum the same way. The
    /// reported error class matches the decode path; only which offending
    /// value gets named may differ (the run maximum rather than the first
    /// offender).
    fn verify_block(&self, block: usize) -> Result<(), GraphError> {
        let (start, first_edge) = self.index_entry(block);
        let (end, next_edge) = self.index_entry(block + 1);
        let expected_edges = (next_edge - first_edge) as usize;
        let lo = block * self.block_size;
        let hi = (lo + self.block_size).min(self.num_vertices);
        let section = &self.payload()[start as usize..end as usize];

        let n = self.num_vertices as u64;
        let mut pos = 0usize;
        let mut decoded = 0usize;
        for _ in lo..hi {
            let header = scan_varint(section, &mut pos)?;
            let degree = (header >> 1) as usize;
            let sorted = header & 1 == 1;
            if decoded + degree > expected_edges {
                return Err(format_err(format!(
                    "block {block} encodes more than its {expected_edges} indexed edges"
                )));
            }
            if sorted {
                if degree > 0 {
                    let mut id = scan_varint(section, &mut pos)?;
                    for _ in 1..degree {
                        let raw = scan_varint(section, &mut pos)?;
                        id = id
                            .checked_add(raw)
                            .ok_or_else(|| format_err("delta-encoded neighbor id overflows"))?;
                    }
                    if id >= n {
                        return Err(GraphError::VertexOutOfRange {
                            vertex: id,
                            num_vertices: n,
                        });
                    }
                }
            } else {
                let mut max = 0u64;
                for _ in 0..degree {
                    max = max.max(scan_varint(section, &mut pos)?);
                }
                if degree > 0 && max >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: max,
                        num_vertices: n,
                    });
                }
            }
            if self.weighted {
                let mut wmax = 0u64;
                for _ in 0..degree {
                    wmax = wmax.max(scan_varint(section, &mut pos)?);
                }
                if wmax > u64::from(u32::MAX) {
                    return Err(format_err("edge weight exceeds 32 bits"));
                }
            }
            decoded += degree;
        }
        if pos != section.len() {
            return Err(format_err(format!(
                "block {block} leaves {} undecoded payload bytes",
                section.len() - pos
            )));
        }
        if decoded != expected_edges {
            return Err(format_err(format!(
                "block {block} decodes {decoded} edges but the index promises {expected_edges}"
            )));
        }
        Ok(())
    }

    fn decode_block_into(&self, block: usize, out: &mut DecodedBlock) -> Result<(), GraphError> {
        let (start, first_edge) = self.index_entry(block);
        let (end, next_edge) = self.index_entry(block + 1);
        let expected_edges = (next_edge - first_edge) as usize;
        let lo = block * self.block_size;
        let hi = (lo + self.block_size).min(self.num_vertices);
        let section = &self.payload()[start as usize..end as usize];

        out.block = usize::MAX;
        out.prefix.clear();
        out.neighbors.clear();
        out.weights.clear();
        out.prefix.reserve(hi - lo + 1);
        out.neighbors.reserve(expected_edges);
        out.prefix.push(0);

        let n = self.num_vertices as u64;
        let mut pos = 0usize;
        for _ in lo..hi {
            let header = read_varint(section, &mut pos)?;
            let degree = (header >> 1) as usize;
            let sorted = header & 1 == 1;
            if out.neighbors.len() + degree > expected_edges {
                return Err(format_err(format!(
                    "block {block} encodes more than its {expected_edges} indexed edges"
                )));
            }
            if sorted {
                let mut prev = 0u64;
                for i in 0..degree {
                    let raw = read_varint(section, &mut pos)?;
                    let id = if i == 0 {
                        raw
                    } else {
                        prev.checked_add(raw)
                            .ok_or_else(|| format_err("delta-encoded neighbor id overflows"))?
                    };
                    if id >= n {
                        return Err(GraphError::VertexOutOfRange {
                            vertex: id,
                            num_vertices: n,
                        });
                    }
                    out.neighbors.push(id as VertexId);
                    prev = id;
                }
            } else {
                for _ in 0..degree {
                    let id = read_varint(section, &mut pos)?;
                    if id >= n {
                        return Err(GraphError::VertexOutOfRange {
                            vertex: id,
                            num_vertices: n,
                        });
                    }
                    out.neighbors.push(id as VertexId);
                }
            }
            if self.weighted {
                for _ in 0..degree {
                    let w = read_varint(section, &mut pos)?;
                    if w > u64::from(u32::MAX) {
                        return Err(format_err("edge weight exceeds 32 bits"));
                    }
                    out.weights.push(w as Weight);
                }
            }
            out.prefix.push(out.neighbors.len() as u32);
        }
        if pos != section.len() {
            return Err(format_err(format!(
                "block {block} leaves {} undecoded payload bytes",
                section.len() - pos
            )));
        }
        if out.neighbors.len() != expected_edges {
            return Err(format_err(format!(
                "block {block} decodes {} edges but the index promises {expected_edges}",
                out.neighbors.len()
            )));
        }
        out.block = block;
        Ok(())
    }

    /// Decodes `block` into the pooled scratch unless it is already there.
    fn ensure_block(&self, block: usize) {
        if self.scratch.borrow().block == block {
            return;
        }
        let mut scratch = self.scratch.borrow_mut();
        match self.decode_block_into(block, &mut scratch) {
            Ok(()) => {}
            // Every block was certified at open; failing here means the
            // backing file mutated under the mapping.
            Err(e) => panic!("packed block {block} failed to decode after open-time validation (backing file changed?): {e}"),
        }
    }

    fn locate(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        assert!(v < self.num_vertices, "vertex {v} out of range");
        (v / self.block_size, v % self.block_size)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether per-edge weights are stored.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Vertices per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of payload blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total container size in bytes (header + index + payload).
    pub fn container_bytes(&self) -> u64 {
        self.data.bytes().len() as u64
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let (block, local) = self.locate(v);
        self.ensure_block(block);
        let s = self.scratch.borrow();
        (s.prefix[local + 1] - s.prefix[local]) as usize
    }

    /// Index range of `v`'s edges in the global edge order — identical to
    /// [`Csr::edge_range`] on the graph this container was packed from.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let (block, local) = self.locate(v);
        let (_, first_edge) = self.index_entry(block);
        self.ensure_block(block);
        let s = self.scratch.borrow();
        let base = first_edge as usize;
        base + s.prefix[local] as usize..base + s.prefix[local + 1] as usize
    }

    /// Destination vertices of `v`'s out-edges, decoded into the pooled
    /// block scratch. The borrow must be dropped before touching a vertex
    /// of a *different* block.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range, or if a previous scratch borrow is
    /// still alive when a different block must be decoded.
    pub fn neighbors(&self, v: VertexId) -> Ref<'_, [VertexId]> {
        let (block, local) = self.locate(v);
        self.ensure_block(block);
        Ref::map(self.scratch.borrow(), |s| {
            &s.neighbors[s.prefix[local] as usize..s.prefix[local + 1] as usize]
        })
    }

    /// Weights of `v`'s out-edges (same discipline as
    /// [`PackedCsr::neighbors`]).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingWeights`] on an unweighted container.
    pub fn edge_weights(&self, v: VertexId) -> Result<Ref<'_, [Weight]>, GraphError> {
        if !self.weighted {
            return Err(GraphError::MissingWeights);
        }
        let (block, local) = self.locate(v);
        self.ensure_block(block);
        Ok(Ref::map(self.scratch.borrow(), |s| {
            &s.weights[s.prefix[local] as usize..s.prefix[local + 1] as usize]
        }))
    }

    /// Fully decodes the container into an in-memory [`Csr`], bit-identical
    /// (offsets, adjacency order, weights) to the graph it was packed from.
    ///
    /// # Errors
    ///
    /// Returns the [`Csr::from_raw_parts`] error class if the decoded
    /// arrays are structurally inconsistent — unreachable for containers
    /// produced by [`pack_to_vec`], kept fallible for defense in depth.
    pub fn to_csr(&self) -> Result<Csr, GraphError> {
        let mut offsets = Vec::with_capacity(self.num_vertices + 1);
        let mut neighbors = Vec::with_capacity(self.num_edges);
        let mut weights = if self.weighted {
            Vec::with_capacity(self.num_edges)
        } else {
            Vec::new()
        };
        offsets.push(0u64);
        let mut scratch = DecodedBlock::empty();
        for b in 0..self.num_blocks {
            match self.decode_block_into(b, &mut scratch) {
                Ok(()) => {}
                Err(e) => return Err(e),
            }
            let verts = scratch.prefix.len() - 1;
            let base = neighbors.len() as u64;
            for local in 0..verts {
                offsets.push(base + u64::from(scratch.prefix[local + 1]));
            }
            neighbors.extend_from_slice(&scratch.neighbors);
            if self.weighted {
                weights.extend_from_slice(&scratch.weights);
            }
        }
        Csr::from_raw_parts(offsets, neighbors, self.weighted.then_some(weights))
    }
}

impl std::fmt::Debug for PackedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedCsr")
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.num_edges)
            .field("weighted", &self.weighted)
            .field("block_size", &self.block_size)
            .field("container_bytes", &self.container_bytes())
            .finish()
    }
}

impl GraphRead for PackedCsr {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_weighted(&self) -> bool {
        self.weighted
    }

    fn out_degree(&self, v: VertexId) -> usize {
        PackedCsr::out_degree(self, v)
    }

    fn for_each_edge(&self, visit: &mut dyn FnMut(Edge)) {
        for block in 0..self.num_blocks {
            self.ensure_block(block);
            let s = self.scratch.borrow();
            let lo = block * self.block_size;
            let verts = s.prefix.len() - 1;
            for local in 0..verts {
                let src = (lo + local) as VertexId;
                for i in s.prefix[local] as usize..s.prefix[local + 1] as usize {
                    let w = if self.weighted { s.weights[i] } else { 0 };
                    visit(Edge::weighted(src, s.neighbors[i], w));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, EdgeList};

    fn patch_checksum(bytes: &mut [u8]) {
        let sum = checksum64(&bytes[HEADER_LEN..]);
        bytes[48..56].copy_from_slice(&sum.to_le_bytes());
    }

    fn sample(weighted: bool) -> Csr {
        let mut list = EdgeList::new(100);
        for e in generators::power_law(100, 900, 0.8, 17) {
            list.push(e);
        }
        if weighted {
            list.randomize_weights(255, 3);
        }
        Csr::from_edge_list(&list)
    }

    #[test]
    fn roundtrip_unweighted_and_weighted() {
        for weighted in [false, true] {
            let g = sample(weighted);
            for block_size in [1u32, 7, 64, 4096] {
                let p = PackedCsr::from_bytes(pack_to_vec(&g, block_size)).unwrap();
                assert_eq!(p.num_vertices(), g.num_vertices());
                assert_eq!(p.num_edges(), g.num_edges());
                assert_eq!(p.is_weighted(), g.is_weighted());
                assert_eq!(p.to_csr().unwrap(), g, "block size {block_size}");
            }
        }
    }

    #[test]
    fn per_vertex_reads_match_source() {
        let g = sample(true);
        let p = PackedCsr::from_bytes(pack_to_vec(&g, 16)).unwrap();
        for v in g.vertices() {
            assert_eq!(p.out_degree(v), g.out_degree(v));
            assert_eq!(p.edge_range(v), g.edge_range(v));
            assert_eq!(&*p.neighbors(v), g.neighbors(v));
            assert_eq!(&*p.edge_weights(v).unwrap(), g.edge_weights(v).unwrap());
        }
    }

    #[test]
    fn sorted_adjacency_delta_encodes_smaller() {
        // Same multiset of edges, sorted vs reverse-sorted adjacency.
        let n = 2000usize;
        let mut fwd = Vec::new();
        for v in 0..n as VertexId {
            for k in 1..=8u32 {
                fwd.push(Edge::new(v, (v + k * 7) % n as VertexId));
            }
        }
        let mut sorted_edges = fwd.clone();
        sorted_edges.sort();
        let mut reversed = sorted_edges.clone();
        reversed.reverse();
        let g_sorted = Csr::from_edges(n, &sorted_edges);
        let g_unsorted = Csr::from_edges(n, &reversed);
        let p_sorted = pack_to_vec(&g_sorted, DEFAULT_BLOCK_SIZE);
        let p_unsorted = pack_to_vec(&g_unsorted, DEFAULT_BLOCK_SIZE);
        assert!(
            p_sorted.len() < p_unsorted.len(),
            "delta path must beat raw varints: {} vs {}",
            p_sorted.len(),
            p_unsorted.len()
        );
        // Both still round-trip exactly.
        assert_eq!(
            PackedCsr::from_bytes(p_unsorted).unwrap().to_csr().unwrap(),
            g_unsorted
        );
    }

    #[test]
    fn graph_read_for_each_edge_matches_csr() {
        let g = sample(true);
        let p = PackedCsr::from_bytes(pack_to_vec(&g, 32)).unwrap();
        let mut from_packed = Vec::new();
        GraphRead::for_each_edge(&p, &mut |e| from_packed.push(e));
        let from_csr: Vec<Edge> = g.edges().collect();
        assert_eq!(from_packed, from_csr);
    }

    #[test]
    fn empty_and_edgeless_graphs_roundtrip() {
        for g in [Csr::from_edges(0, &[]), Csr::from_edges(5, &[])] {
            let p = PackedCsr::from_bytes(pack_to_vec(&g, 4)).unwrap();
            assert_eq!(p.to_csr().unwrap(), g);
            assert_eq!(p.num_edges(), 0);
        }
    }

    #[test]
    fn file_roundtrip_via_mmap_open() {
        let g = sample(true);
        let dir = std::env::temp_dir().join("scalagraph_packed_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_roundtrip.sgpk", std::process::id()));
        let written = write_packed(&g, &path, DEFAULT_BLOCK_SIZE).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let p = PackedCsr::open(&path).unwrap();
        assert_eq!(p.container_bytes(), written);
        assert_eq!(p.to_csr().unwrap(), g);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = PackedCsr::open("/nonexistent/scalagraph.sgpk").unwrap_err();
        assert!(matches!(err, GraphError::Io { .. }), "{err}");
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics() {
        let g = sample(false);
        let bytes = pack_to_vec(&g, 8);
        for cut in 0..bytes.len() {
            let err = PackedCsr::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    GraphError::PackedFormat { .. } | GraphError::PackedChecksum { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let g = sample(true);
        let bytes = pack_to_vec(&g, 8);
        for pos in [HEADER_LEN, HEADER_LEN + 16, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            let err = PackedCsr::from_bytes(corrupt).unwrap_err();
            assert!(
                matches!(err, GraphError::PackedChecksum { .. }),
                "flip at {pos}: {err}"
            );
        }
    }

    #[test]
    fn out_of_range_neighbor_is_typed_even_with_valid_checksum() {
        // Pack a single-vertex self-loop graph, then re-point the neighbor
        // id out of range and fix the checksum: the block walk must catch it.
        let g = Csr::from_edges(2, &[Edge::new(0, 1)]);
        let mut bytes = pack_to_vec(&g, 4);
        // Payload is [header(v0), id(=1), header(v1)]; the id byte is the
        // second-to-last byte of the container.
        let id_byte = bytes.len() - 2;
        assert_eq!(bytes[id_byte], 1, "neighbor id byte");
        bytes[id_byte] = 9; // 9 >= num_vertices(2)
        patch_checksum(&mut bytes);
        let err = PackedCsr::from_bytes(bytes).unwrap_err();
        assert!(
            matches!(err, GraphError::VertexOutOfRange { vertex: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn bad_magic_version_and_flags_are_typed() {
        let g = sample(false);
        let good = pack_to_vec(&g, 8);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            PackedCsr::from_bytes(bad_magic).unwrap_err(),
            GraphError::PackedFormat { .. }
        ));

        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = PackedCsr::from_bytes(bad_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        let mut bad_flags = good.clone();
        bad_flags[12..16].copy_from_slice(&0xffu32.to_le_bytes());
        assert!(matches!(
            PackedCsr::from_bytes(bad_flags).unwrap_err(),
            GraphError::PackedFormat { .. }
        ));

        let mut huge_counts = good;
        huge_counts[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = PackedCsr::from_bytes(huge_counts).unwrap_err();
        assert!(matches!(err, GraphError::PackedFormat { .. }), "{err}");
    }

    #[test]
    fn checksum_is_length_sensitive() {
        assert_ne!(checksum64(&[0u8; 8]), checksum64(&[0u8; 16]));
        assert_ne!(checksum64(b"abc"), checksum64(b"abd"));
        assert_ne!(checksum64(&[]), 0);
    }

    #[test]
    fn scan_varint_agrees_with_read_varint_on_arbitrary_bytes() {
        // verify_block uses the word-at-a-time scanner while decode uses
        // the byte loop; any divergence would let open certify a payload
        // the read path later rejects (a post-open panic). Fuzz both over
        // random byte soup, encoded values with trailing garbage, and
        // continuation-heavy prefixes.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let check = |buf: &[u8]| {
            let mut pa = 0usize;
            let mut pb = 0usize;
            let a = read_varint(buf, &mut pa);
            let b = scan_varint(buf, &mut pb);
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x, y, "value mismatch on {buf:?}");
                    assert_eq!(pa, pb, "position mismatch on {buf:?}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("outcome mismatch on {buf:?}: {a:?} vs {b:?}"),
            }
        };
        for _ in 0..20_000 {
            let len = (next() % 16) as usize;
            let buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            check(&buf);
        }
        for _ in 0..5_000 {
            let mut buf = Vec::new();
            push_varint(&mut buf, next() >> (next() % 64));
            buf.extend((0..(next() % 8) as usize).map(|_| next() as u8));
            check(&buf);
        }
        for k in 0..12 {
            let mut buf = vec![0xffu8; k];
            check(&buf);
            buf.push(0x01);
            check(&buf);
        }
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        let mut pos = 0;
        let overlong = [0xffu8; 11];
        assert!(read_varint(&overlong, &mut pos).is_err());
        let mut pos = 0;
        let max = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        assert_eq!(read_varint(&max, &mut pos).unwrap(), u64::MAX);
    }
}
