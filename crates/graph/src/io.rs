//! Graph file I/O: the SNAP/Graph500 interchange formats the paper's
//! datasets ship in.
//!
//! * [`read_edge_list`] parses whitespace-separated text edge lists
//!   (`src dst [weight]` per line, `#`/`%` comments) — the format of the
//!   SNAP downloads (Pokec, LiveJournal, Orkut, Twitter).
//! * [`write_edge_list`] writes the same format.
//! * [`read_csr_binary`] / [`write_csr_binary`] store a [`Csr`] in a
//!   compact little-endian binary layout for fast reloads.
//!
//! # Example
//!
//! ```
//! use scalagraph_graph::{generators, io, Csr};
//!
//! # fn main() -> std::io::Result<()> {
//! let g = Csr::from_edges(100, &generators::uniform(100, 500, 1));
//! let dir = std::env::temp_dir().join("scalagraph_io_doc");
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("g.bin");
//! io::write_csr_binary(&g, &path)?;
//! let back = io::read_csr_binary(&path)?;
//! assert_eq!(g, back);
//! # std::fs::remove_file(path)?;
//! # Ok(())
//! # }
//! ```

use crate::{Csr, Edge, EdgeList, VertexId};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes prefixing the binary CSR format.
const CSR_MAGIC: &[u8; 8] = b"SCLGCSR1";

/// Reads a whitespace-separated text edge list. Lines starting with `#` or
/// `%` are comments; each data line is `src dst` or `src dst weight`.
/// The vertex count is `max endpoint + 1` unless `num_vertices` widens it.
///
/// # Errors
///
/// Returns an [`io::Error`] on filesystem failures, malformed lines
/// (non-numeric fields, fewer than two fields, endpoints above 32 bits),
/// or an endpoint outside an explicitly supplied `num_vertices`.
pub fn read_edge_list<P: AsRef<Path>>(
    path: P,
    num_vertices: Option<usize>,
) -> io::Result<EdgeList> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_vertex: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}", lineno + 1),
            )
        };
        let src: u64 = it
            .next()
            .ok_or_else(|| bad("missing source"))?
            .parse()
            .map_err(|_| bad("source is not an integer"))?;
        let dst: u64 = it
            .next()
            .ok_or_else(|| bad("missing destination"))?
            .parse()
            .map_err(|_| bad("destination is not an integer"))?;
        let weight: u32 = match it.next() {
            Some(w) => w.parse().map_err(|_| bad("weight is not an integer"))?,
            None => 0,
        };
        if src > u64::from(u32::MAX) || dst > u64::from(u32::MAX) {
            return Err(bad("vertex id exceeds 32 bits"));
        }
        if let Some(n) = num_vertices {
            if src >= n as u64 || dst >= n as u64 {
                return Err(bad(&format!(
                    "endpoint out of range for the declared {n} vertices"
                )));
            }
        }
        max_vertex = max_vertex.max(src).max(dst);
        edges.push(Edge::weighted(src as VertexId, dst as VertexId, weight));
    }
    let implied = if edges.is_empty() {
        0
    } else {
        max_vertex as usize + 1
    };
    let n = num_vertices.unwrap_or(implied).max(implied);
    EdgeList::from_vec(n, edges).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes an edge list as `src dst weight` text (weight omitted when the
/// list is unweighted throughout).
///
/// # Errors
///
/// Returns an [`io::Error`] on filesystem failures.
pub fn write_edge_list<P: AsRef<Path>>(list: &EdgeList, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(
        w,
        "# scalagraph edge list: {} vertices",
        list.num_vertices()
    )?;
    let weighted = list.iter().any(|e| e.weight != 0);
    for e in list {
        if weighted {
            writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
        } else {
            writeln!(w, "{} {}", e.src, e.dst)?;
        }
    }
    w.flush()
}

fn put_u64(w: &mut impl Write, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a [`Csr`] in the compact binary format.
///
/// # Errors
///
/// Returns an [`io::Error`] on filesystem failures.
pub fn write_csr_binary<P: AsRef<Path>>(graph: &Csr, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(CSR_MAGIC)?;
    put_u64(&mut w, graph.num_vertices() as u64)?;
    put_u64(&mut w, graph.num_edges() as u64)?;
    put_u64(&mut w, u64::from(graph.is_weighted()))?;
    for &o in graph.offsets() {
        put_u64(&mut w, o)?;
    }
    for &n in graph.neighbor_array() {
        w.write_all(&n.to_le_bytes())?;
    }
    if graph.is_weighted() {
        for v in graph.vertices() {
            // `is_weighted` guarantees every vertex has weights.
            for &wt in graph.edge_weights(v).unwrap_or(&[]) {
                w.write_all(&wt.to_le_bytes())?;
            }
        }
    }
    w.flush()
}

/// Reads a [`Csr`] written by [`write_csr_binary`].
///
/// # Errors
///
/// Returns an [`io::Error`] on filesystem failures, a bad magic number, a
/// header whose declared sizes disagree with the file length (truncated
/// or corrupt files are rejected before anything is allocated), or
/// structurally invalid content (e.g. non-monotonic offsets).
pub fn read_csr_binary<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != CSR_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a scalagraph binary CSR file",
        ));
    }
    let file_len = r.get_ref().metadata()?.len();
    let n_raw = get_u64(&mut r)?;
    let m_raw = get_u64(&mut r)?;
    let weighted_flag = get_u64(&mut r)?;
    if weighted_flag > 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("weighted flag must be 0 or 1, got {weighted_flag}"),
        ));
    }
    let weighted = weighted_flag == 1;
    // Check the header against the on-disk size before trusting it with an
    // allocation: a corrupt header must not trigger a multi-GB Vec.
    // Header = magic + 3 counters; payload = (n+1) offsets, m neighbors,
    // and m weights when the weighted flag is set. u128 keeps adversarial
    // u64::MAX counts from overflowing the check itself.
    let expected = 8u128
        + 3 * 8
        + (u128::from(n_raw) + 1) * 8
        + u128::from(m_raw) * 4
        + if weighted { u128::from(m_raw) * 4 } else { 0 };
    if u128::from(file_len) != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "header declares {n_raw} vertices / {m_raw} edges \
                 ({expected} bytes) but the file is {file_len} bytes"
            ),
        ));
    }
    let n = n_raw as usize;
    let m = m_raw as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(get_u64(&mut r)?);
    }
    let mut neighbors = Vec::with_capacity(m);
    let mut b4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut b4)?;
        neighbors.push(u32::from_le_bytes(b4));
    }
    let weights = if weighted {
        let mut ws = Vec::with_capacity(m);
        for _ in 0..m {
            r.read_exact(&mut b4)?;
            ws.push(u32::from_le_bytes(b4));
        }
        Some(ws)
    } else {
        None
    };
    Csr::from_raw_parts(offsets, neighbors, weights)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("scalagraph_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{}", std::process::id(), name))
    }

    #[test]
    fn text_roundtrip_unweighted() {
        let path = tmp("unweighted.txt");
        let mut list = EdgeList::new(50);
        for e in generators::uniform(50, 300, 7) {
            list.push(e);
        }
        write_edge_list(&list, &path).unwrap();
        let back = read_edge_list(&path, Some(50)).unwrap();
        assert_eq!(list.as_slice(), back.as_slice());
        assert_eq!(back.num_vertices(), 50);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn text_roundtrip_weighted() {
        let path = tmp("weighted.txt");
        let mut list = EdgeList::new(20);
        for e in generators::uniform(20, 80, 9) {
            list.push(e);
        }
        list.randomize_weights(255, 3);
        write_edge_list(&list, &path).unwrap();
        let back = read_edge_list(&path, None).unwrap();
        assert_eq!(list.as_slice(), back.as_slice());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn text_parses_comments_and_infers_vertices() {
        let path = tmp("comments.txt");
        std::fs::write(
            &path,
            "# SNAP style header\n% matrix-market style\n0 3\n2 1\n",
        )
        .unwrap();
        let list = read_edge_list(&path, None).unwrap();
        assert_eq!(list.num_vertices(), 4);
        assert_eq!(list.len(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn text_rejects_garbage() {
        let path = tmp("garbage.txt");
        std::fs::write(&path, "0 not_a_number\n").unwrap();
        let err = read_edge_list(&path, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_roundtrip_weighted_and_unweighted() {
        for weighted in [false, true] {
            let path = tmp(if weighted { "w.bin" } else { "u.bin" });
            let mut list = EdgeList::new(64);
            for e in generators::power_law(64, 500, 0.8, 11) {
                list.push(e);
            }
            if weighted {
                list.randomize_weights(255, 5);
            }
            let g = Csr::from_edge_list(&list);
            write_csr_binary(&g, &path).unwrap();
            let back = read_csr_binary(&path).unwrap();
            assert_eq!(g, back);
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOTACSR!xxxxxxxx").unwrap();
        assert!(read_csr_binary(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }

    fn write_good_csr(name: &str) -> (PathBuf, Vec<u8>) {
        let path = tmp(name);
        let mut list = EdgeList::new(16);
        for e in generators::uniform(16, 60, 13) {
            list.push(e);
        }
        write_csr_binary(&Csr::from_edge_list(&list), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    #[test]
    fn binary_rejects_truncated_file() {
        let (path, bytes) = write_good_csr("trunc.bin");
        for cut in [bytes.len() - 1, bytes.len() / 2, 40, 12] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = read_csr_binary(&path).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "cut at {cut}: {err}"
            );
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_rejects_huge_declared_counts_without_allocating() {
        let (path, mut bytes) = write_good_csr("huge.bin");
        // Claim u64::MAX vertices: must fail the length check, not OOM.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_csr_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_rejects_bad_weighted_flag() {
        let (path, mut bytes) = write_good_csr("flag.bin");
        bytes[24..32].copy_from_slice(&7u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_csr_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("weighted flag"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_rejects_non_monotonic_offsets() {
        let (path, mut bytes) = write_good_csr("offsets.bin");
        // Corrupt the second offset to exceed the edge count.
        bytes[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_csr_binary(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn text_rejects_out_of_range_endpoint() {
        let path = tmp("oor.txt");
        std::fs::write(&path, "0 1\n5 2\n").unwrap();
        let err = read_edge_list(&path, Some(4)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of range"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn text_rejects_single_field_line() {
        let path = tmp("single.txt");
        std::fs::write(&path, "0 1\n7\n").unwrap();
        let err = read_edge_list(&path, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }
}
