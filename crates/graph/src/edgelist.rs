//! Edge-list interchange format.
//!
//! Generators produce [`EdgeList`]s; [`crate::Csr::from_edge_list`] converts
//! them to the on-device CSR format. The list is deliberately simple — a flat
//! vector of `(src, dst, weight)` triples — so generators and file loaders
//! stay decoupled from the storage format.

use crate::{GraphError, VertexId, Weight};

/// One directed edge with an optional weight (weight `0` when unweighted
/// semantics are intended; SSSP workloads assign weights explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight; ignored by unweighted algorithms.
    pub weight: Weight,
}

impl Edge {
    /// Creates an unweighted edge.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge {
            src,
            dst,
            weight: 0,
        }
    }

    /// Creates a weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }
}

/// A growable list of directed edges plus the vertex-count bound they must
/// respect.
///
/// # Example
///
/// ```
/// use scalagraph_graph::{Edge, EdgeList};
///
/// let mut list = EdgeList::new(4);
/// list.push(Edge::new(0, 1));
/// list.push(Edge::new(1, 2));
/// assert_eq!(list.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty list for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a list with pre-allocated capacity for `cap` edges.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing vector of edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is `>=
    /// num_vertices`.
    pub fn from_vec(num_vertices: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for e in &edges {
            for v in [e.src, e.dst] {
                if v as usize >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v as u64,
                        num_vertices: num_vertices as u64,
                    });
                }
            }
        }
        Ok(EdgeList {
            num_vertices,
            edges,
        })
    }

    /// Number of vertices this list is bounded by.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges currently in the list.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends an edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range; generators are trusted code, so
    /// the check is a `debug_assert`.
    pub fn push(&mut self, edge: Edge) {
        debug_assert!((edge.src as usize) < self.num_vertices);
        debug_assert!((edge.dst as usize) < self.num_vertices);
        self.edges.push(edge);
    }

    /// The edges as a slice.
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over the edges.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }

    /// Sorts edges by `(src, dst)` and removes exact duplicates (parallel
    /// edges with identical weight collapse; differing weights keep the
    /// first occurrence after a stable sort by endpoints).
    pub fn sort_and_dedup(&mut self) {
        self.edges.sort_by_key(|e| (e.src, e.dst));
        self.edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Removes self-loops (`src == dst`).
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| e.src != e.dst);
    }

    /// Assigns each edge an independent uniform random weight in
    /// `0..=max_weight`, matching the paper's SSSP setup ("each edge of a
    /// graph is associated with a random integer between 0 and 255").
    pub fn randomize_weights(&mut self, max_weight: Weight, seed: u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for e in &mut self.edges {
            e.weight = rng.gen_range(0..=max_weight);
        }
    }

    /// Adds the reverse of every edge (carrying its weight) and removes
    /// duplicates, turning a directed list into an undirected one. Connected
    /// Components is defined on undirected graphs; the evaluation harness
    /// symmetrizes CC inputs this way.
    pub fn symmetrize(&mut self) {
        let rev: Vec<Edge> = self
            .edges
            .iter()
            .map(|e| Edge::weighted(e.dst, e.src, e.weight))
            .collect();
        self.edges.extend(rev);
        self.sort_and_dedup();
    }

    /// Consumes the list and returns the underlying vector.
    pub fn into_vec(self) -> Vec<Edge> {
        self.edges
    }
}

impl Extend<Edge> for EdgeList {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl IntoIterator for EdgeList {
    type Item = Edge;
    type IntoIter = std::vec::IntoIter<Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_rejects_out_of_range() {
        let err = EdgeList::from_vec(2, vec![Edge::new(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn sort_and_dedup_removes_parallel_edges() {
        let mut l = EdgeList::new(3);
        l.push(Edge::new(1, 2));
        l.push(Edge::new(0, 1));
        l.push(Edge::new(1, 2));
        l.sort_and_dedup();
        assert_eq!(l.as_slice(), &[Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn remove_self_loops_keeps_others() {
        let mut l = EdgeList::new(3);
        l.push(Edge::new(1, 1));
        l.push(Edge::new(0, 2));
        l.remove_self_loops();
        assert_eq!(l.as_slice(), &[Edge::new(0, 2)]);
    }

    #[test]
    fn randomize_weights_is_bounded_and_deterministic() {
        let mut a = EdgeList::new(10);
        for i in 0..9 {
            a.push(Edge::new(i, i + 1));
        }
        let mut b = a.clone();
        a.randomize_weights(255, 7);
        b.randomize_weights(255, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e.weight <= 255));
        // With 9 edges it is overwhelmingly unlikely all weights are zero.
        assert!(a.iter().any(|e| e.weight > 0));
    }

    #[test]
    fn extend_and_iterate() {
        let mut l = EdgeList::new(4);
        l.extend([Edge::new(0, 1), Edge::new(2, 3)]);
        let collected: Vec<_> = l.iter().map(|e| e.dst).collect();
        assert_eq!(collected, vec![1, 3]);
        assert_eq!(l.clone().into_iter().count(), 2);
    }
}
