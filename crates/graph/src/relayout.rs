//! Degree-aware edge re-layout (Section IV-C, "Hardware Implementation").
//!
//! Dispatching the 16 edges of one 64-byte line to the 16 PEs of a row in a
//! single cycle would require a 16x16 full interconnect inside the edge
//! dispatching unit. The paper avoids this by pre-processing the CSR edge
//! array offline: for each vertex, edges are pushed into `K` FIFOs selected
//! by the hash of their destination vertex, then drained round-robin into a
//! new edge list. The result is that an edge's position within a line (its
//! *lane*) equals the PE column its destination hashes to — almost always,
//! with residual conflicts handled at runtime by a one-slot skew buffer.
//!
//! The algorithm is O(|E|), "the same as that for the format transformation
//! from the edge list to the CSR format".

use crate::{Csr, VertexId};
use std::collections::VecDeque;

/// Statistics about one re-layout run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayoutStats {
    /// Total edges processed.
    pub edges: usize,
    /// Edges whose final lane equals their destination's hash lane.
    pub lane_aligned: usize,
}

impl RelayoutStats {
    /// Fraction of edges that ended up lane-aligned.
    pub fn alignment(&self) -> f64 {
        if self.edges == 0 {
            1.0
        } else {
            self.lane_aligned as f64 / self.edges as f64
        }
    }
}

/// Re-orders every vertex's adjacency list with the K-FIFO round-robin
/// shuffle so that, as far as possible, the edge at in-line lane `i` has
/// `hash(dst) == i`.
///
/// `lanes` is the PE row width `K` (16 in the paper's configuration);
/// `lane_of` maps a destination vertex to its home lane (PE column) and must
/// return values `< lanes`.
///
/// Returns re-layout statistics. The permutation is applied in place and is
/// guaranteed to keep every edge within its source vertex's CSR range, so
/// graph semantics are untouched (adjacency *sets* are order-insensitive).
///
/// # Panics
///
/// Panics if `lanes == 0` or if `lane_of` returns an out-of-range lane.
pub fn degree_aware_relayout<F>(graph: &mut Csr, lanes: usize, lane_of: F) -> RelayoutStats
where
    F: Fn(VertexId) -> usize,
{
    assert!(lanes > 0, "lane count must be positive");
    let mut perm: Vec<usize> = Vec::with_capacity(graph.num_edges());
    let mut fifos: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
    let mut stats = RelayoutStats::default();

    for v in graph.vertices() {
        let range = graph.edge_range(v);
        for idx in range.clone() {
            let lane = lane_of(graph.neighbor_at(idx));
            assert!(lane < lanes, "lane_of returned {lane} >= {lanes}");
            fifos[lane].push_back(idx);
        }
        // Drain round-robin, lane by lane, starting each output line at lane
        // 0. When a FIFO is empty its slot is filled by stealing from the
        // next non-empty FIFO (the hardware's skew buffer equivalent), so
        // lines stay dense.
        let deg = range.len();
        let mut emitted = 0usize;
        while emitted < deg {
            for lane in 0..lanes {
                if emitted >= deg {
                    break;
                }
                let idx = match fifos[lane].pop_front() {
                    Some(idx) => {
                        stats.lane_aligned += 1;
                        idx
                    }
                    None => {
                        // Steal from the nearest non-empty FIFO.
                        let stolen = (0..lanes)
                            .map(|d| (lane + d) % lanes)
                            .find_map(|l| fifos[l].pop_front());
                        let Some(idx) = stolen else {
                            unreachable!("edges remain but all FIFOs empty")
                        };
                        idx
                    }
                };
                perm.push(idx);
                emitted += 1;
            }
        }
        debug_assert!(fifos.iter().all(VecDeque::is_empty));
    }
    stats.edges = perm.len();
    graph.apply_edge_permutation(&perm);
    stats
}

/// Checks that `lane_of(dst)` matches the in-line lane for each edge of a
/// laid-out graph, returning the aligned fraction. Lines are `lanes` wide
/// and restart at each vertex boundary (the EDU fetches per-vertex).
pub fn measure_alignment<F>(graph: &Csr, lanes: usize, lane_of: F) -> f64
where
    F: Fn(VertexId) -> usize,
{
    let mut aligned = 0usize;
    let mut total = 0usize;
    for v in graph.vertices() {
        for (pos, &dst) in graph.neighbors(v).iter().enumerate() {
            total += 1;
            if lane_of(dst) == pos % lanes {
                aligned += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        aligned as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Csr, Edge};
    use std::collections::HashSet;

    fn lane16(v: VertexId) -> usize {
        (v as usize) % 16
    }

    #[test]
    fn relayout_preserves_adjacency_sets() {
        let edges = generators::power_law(200, 3000, 0.8, 1);
        let before = Csr::from_edges(200, &edges);
        let mut after = before.clone();
        degree_aware_relayout(&mut after, 16, lane16);
        assert_eq!(before.num_edges(), after.num_edges());
        for v in before.vertices() {
            let a: Vec<_> = {
                let mut x = before.neighbors(v).to_vec();
                x.sort_unstable();
                x
            };
            let b: Vec<_> = {
                let mut x = after.neighbors(v).to_vec();
                x.sort_unstable();
                x
            };
            assert_eq!(a, b, "adjacency multiset changed for vertex {v}");
        }
    }

    #[test]
    fn relayout_improves_alignment() {
        let edges = generators::uniform(1000, 20_000, 2);
        let mut g = Csr::from_edges(1000, &edges);
        let before = measure_alignment(&g, 16, lane16);
        let stats = degree_aware_relayout(&mut g, 16, lane16);
        let after = measure_alignment(&g, 16, lane16);
        assert!(after > before, "alignment {before} -> {after}");
        // Random 16-lane traffic aligns ~1/16 of the time before. After the
        // shuffle, alignment is bounded by how evenly a vertex's ~20 edges
        // hash across 16 lanes, so ~0.4 is the expected regime here.
        assert!(after > 0.3, "alignment after re-layout: {after}");
        assert!((stats.alignment() - after).abs() < 0.25);
    }

    #[test]
    fn relayout_weighted_keeps_pairing() {
        // Weight == dst so we can detect a desynchronized permutation.
        let edges: Vec<Edge> = generators::uniform(64, 1000, 3)
            .into_iter()
            .map(|e| Edge::weighted(e.src, e.dst, e.dst + 1))
            .collect();
        let mut g = Csr::from_edges(64, &edges);
        degree_aware_relayout(&mut g, 8, |v| (v as usize) % 8);
        for v in g.vertices() {
            let ws = g.edge_weights(v).unwrap().to_vec();
            for (i, &n) in g.neighbors(v).iter().enumerate() {
                assert_eq!(ws[i], n + 1, "weight desynchronized from neighbor");
            }
        }
    }

    #[test]
    fn relayout_perfect_when_degrees_cover_lanes() {
        // Vertex 0 has exactly one edge per lane: perfect alignment.
        let edges: Vec<Edge> = (0..16u32).map(|d| Edge::new(0, d + 1)).collect();
        let mut g = Csr::from_edges(17, &edges);
        degree_aware_relayout(&mut g, 16, |v| ((v - 1) as usize) % 16);
        assert_eq!(measure_alignment(&g, 16, |v| ((v - 1) as usize) % 16), 1.0);
    }

    #[test]
    fn relayout_single_lane_is_identity_permutation_up_to_order() {
        let edges = generators::uniform(32, 200, 4);
        let mut g = Csr::from_edges(32, &edges);
        let before = g.clone();
        degree_aware_relayout(&mut g, 1, |_| 0);
        assert_eq!(before, g, "one lane must not reorder anything");
    }

    #[test]
    fn relayout_is_a_permutation() {
        let edges = generators::power_law(100, 2000, 1.0, 9);
        let before = Csr::from_edges(100, &edges);
        let mut after = before.clone();
        degree_aware_relayout(&mut after, 16, lane16);
        let a: HashSet<(u32, u32)> = before.edges().map(|e| (e.src, e.dst)).collect();
        let b: HashSet<(u32, u32)> = after.edges().map(|e| (e.src, e.dst)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_is_fully_aligned() {
        let mut g = Csr::from_edges(4, &[]);
        let stats = degree_aware_relayout(&mut g, 16, lane16);
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.alignment(), 1.0);
        assert_eq!(measure_alignment(&g, 16, lane16), 1.0);
    }
}
