//! Backing-agnostic read access to a directed graph.
//!
//! The simulator's hot loop streams edges out of the per-tile CSRs that
//! [`DeviceGraph`-style] preparation builds, so the *input* graph is only
//! consulted for global shape (vertex/edge counts), per-vertex out-degrees,
//! and one full edge sweep at prepare time. [`GraphRead`] captures exactly
//! that surface, which lets the engine run bit-identically over either the
//! in-memory [`Csr`] or the compressed on-disk [`crate::packed::PackedCsr`]
//! without the packed reader having to materialize flat arrays.
//!
//! The trait is object-safe (edge iteration takes a `&mut dyn FnMut`
//! visitor instead of returning an iterator), so algorithm hooks can accept
//! `&dyn GraphRead` and stay dyn-dispatched while the engine itself remains
//! generic — the `Csr` path monomorphizes to the same code as before.

use crate::{Csr, Edge, VertexId};

/// Read-only access to a directed, optionally weighted graph.
///
/// Implementations must present a *stable* view: repeated calls observe the
/// same graph, and `for_each_edge` visits edges in ascending source order
/// with each source's adjacency in its storage order — the order
/// [`Csr::edges`] uses, which device preparation depends on for
/// bit-identical tile construction across backings.
pub trait GraphRead {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Whether edge weights are stored.
    fn is_weighted(&self) -> bool;

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// May panic if `v >= num_vertices()`.
    fn out_degree(&self, v: VertexId) -> usize;

    /// Visits every `(src, dst, weight)` triple in CSR order (ascending
    /// source, storage order within a source).
    fn for_each_edge(&self, visit: &mut dyn FnMut(Edge));

    /// All vertex identifiers, in ascending order.
    fn vertex_ids(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }
}

impl GraphRead for Csr {
    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        Csr::is_weighted(self)
    }

    fn out_degree(&self, v: VertexId) -> usize {
        Csr::out_degree(self, v)
    }

    fn for_each_edge(&self, visit: &mut dyn FnMut(Edge)) {
        for e in self.edges() {
            visit(e);
        }
    }
}

impl<G: GraphRead + ?Sized> GraphRead for &G {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn is_weighted(&self) -> bool {
        (**self).is_weighted()
    }

    fn out_degree(&self, v: VertexId) -> usize {
        (**self).out_degree(v)
    }

    fn for_each_edge(&self, visit: &mut dyn FnMut(Edge)) {
        (**self).for_each_edge(visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_edges(
            4,
            &[
                Edge::weighted(0, 1, 3),
                Edge::weighted(0, 2, 1),
                Edge::weighted(2, 3, 9),
            ],
        )
    }

    #[test]
    fn csr_impl_mirrors_inherent_api() {
        let g = sample();
        let r: &dyn GraphRead = &g;
        assert_eq!(r.num_vertices(), 4);
        assert_eq!(r.num_edges(), 3);
        assert!(r.is_weighted());
        assert_eq!(r.out_degree(0), 2);
        assert_eq!(r.out_degree(3), 0);
        assert_eq!(r.vertex_ids(), 0..4);
    }

    #[test]
    fn for_each_edge_matches_edges_iterator() {
        let g = sample();
        let mut seen = Vec::new();
        GraphRead::for_each_edge(&g, &mut |e| seen.push(e));
        let expect: Vec<Edge> = g.edges().collect();
        assert_eq!(seen, expect);
    }
}
