//! Degree-distribution and throughput statistics.

use crate::Csr;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean out-degree.
    pub avg: f64,
    /// Maximum out-degree.
    pub max: usize,
    /// Median out-degree.
    pub median: usize,
    /// Fraction of vertices with out-degree zero.
    pub isolated_fraction: f64,
    /// Gini coefficient of the out-degree distribution — 0 for perfectly
    /// uniform degrees, approaching 1 for extreme hub concentration. Used to
    /// verify the synthetic stand-ins preserve power-law skew.
    pub gini: f64,
}

impl DegreeStats {
    /// Computes statistics over `graph`'s out-degrees.
    pub fn of(graph: &Csr) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return DegreeStats {
                vertices: 0,
                edges: 0,
                avg: 0.0,
                max: 0,
                median: 0,
                isolated_fraction: 0.0,
                gini: 0.0,
            };
        }
        let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.out_degree(v)).collect();
        degrees.sort_unstable();
        let edges = graph.num_edges();
        let max = degrees.last().copied().unwrap_or(0);
        let median = degrees[n / 2];
        let isolated = degrees.iter().take_while(|&&d| d == 0).count();

        // Gini over sorted degrees: G = (2 * sum(i * d_i) / (n * sum d)) -
        // (n + 1) / n, with i starting at 1.
        let total: f64 = edges as f64;
        let gini = if total == 0.0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
        };

        DegreeStats {
            vertices: n,
            edges,
            avg: edges as f64 / n as f64,
            max,
            median,
            isolated_fraction: isolated as f64 / n as f64,
            gini,
        }
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg={:.1} max={} median={} gini={:.3}",
            self.vertices, self.edges, self.avg, self.max, self.median, self.gini
        )
    }
}

/// Converts a traversed-edge count and a time in seconds to GTEPS
/// (giga-traversed-edges per second), the throughput unit of Figure 14.
pub fn gteps(traversed_edges: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        traversed_edges as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, Csr};

    #[test]
    fn stats_on_uniform_graph() {
        let g = Csr::from_edges(100, &generators::uniform(100, 1000, 1));
        let s = DegreeStats::of(&g);
        assert_eq!(s.vertices, 100);
        assert_eq!(s.edges, 1000);
        assert!((s.avg - 10.0).abs() < 1e-9);
        assert!(
            s.gini < 0.4,
            "uniform graph should have low gini: {}",
            s.gini
        );
    }

    #[test]
    fn stats_on_star_graph() {
        let g = Csr::from_edges(101, &generators::star(101));
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 100);
        assert_eq!(s.median, 0);
        assert!(s.gini > 0.9, "star should have extreme gini: {}", s.gini);
    }

    #[test]
    fn power_law_more_skewed_than_uniform() {
        let u = DegreeStats::of(&Csr::from_edges(500, &generators::uniform(500, 5000, 2)));
        let p = DegreeStats::of(&Csr::from_edges(
            500,
            &generators::power_law(500, 5000, 0.9, 2),
        ));
        assert!(
            p.gini > u.gini + 0.1,
            "power-law gini {} vs uniform {}",
            p.gini,
            u.gini
        );
    }

    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&Csr::from_edges(0, &[]));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn gteps_math() {
        assert!((gteps(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(gteps(100, 0.0), 0.0);
    }

    #[test]
    fn display_mentions_counts() {
        let g = Csr::from_edges(10, &generators::path(10));
        let s = DegreeStats::of(&g).to_string();
        assert!(s.contains("|V|=10"));
        assert!(s.contains("|E|=9"));
    }
}
