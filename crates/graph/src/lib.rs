//! Graph storage, generators, and layout transformations for the ScalaGraph
//! reproduction.
//!
//! This crate provides every graph-side substrate the ScalaGraph accelerator
//! (HPCA 2022) depends on:
//!
//! * [`Csr`] — compressed-sparse-row storage, the on-device format used by
//!   the paper (Section III-B: "The compressed sparse row (CSR) format is
//!   used for space-saving").
//! * [`EdgeList`] — the interchange format produced by the generators and
//!   consumed by the CSR builder.
//! * [`generators`] — seedable synthetic graph generators (R-MAT, power-law
//!   configuration model, uniform, and a set of structured test graphs).
//! * [`io`] — SNAP-style text edge lists and a compact binary CSR format,
//!   for running the real datasets where available.
//! * [`mutate`] — batched graph mutations ([`mutate::MutationBatch`]) applied
//!   against CSR storage incrementally, keeping the Section IV-C degree-aware
//!   laid-out view valid by re-shuffling only touched vertices.
//! * [`datasets`] — presets matching the paper's evaluation datasets
//!   (Table I / Table III) at a configurable down-scaling factor, generated
//!   chunk-parallel with bit-identical serial/parallel output.
//! * [`packed`] — the delta+varint compressed on-disk CSR container with an
//!   mmap-backed zero-copy reader, for paper-scale graphs that should load
//!   in milliseconds instead of regenerating.
//! * [`read`] — the [`GraphRead`] trait that lets the simulator consume
//!   either backing bit-identically.
//! * [`partition`] — Graphicionado-style vertex-interval slicing used when a
//!   graph's vertex properties do not fit on-chip (Section III-A).
//! * [`relayout`] — the degree-aware edge re-layout of Section IV-C: edges of
//!   each vertex are re-ordered so that an edge's position inside a 64-byte
//!   line equals the PE column its destination vertex hashes to.
//! * [`stats`] — degree-distribution and traversal statistics.
//! * [`transform`] — vertex relabelings (random, degree, BFS order) for
//!   order-sensitivity studies.
//!
//! # Example
//!
//! ```
//! use scalagraph_graph::{generators, Csr};
//!
//! let edges = generators::rmat(1 << 10, 8 * (1 << 10), 42);
//! let graph = Csr::from_edges(1 << 10, &edges);
//! assert_eq!(graph.num_vertices(), 1 << 10);
//! let avg = graph.num_edges() as f64 / graph.num_vertices() as f64;
//! assert!(avg > 1.0);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod error;
pub mod generators;
pub mod io;
pub mod mutate;
pub mod packed;
mod pargen;
pub mod partition;
pub mod read;
pub mod relayout;
pub mod stats;
pub mod transform;

pub use csr::{Csr, CsrBuilder};
pub use datasets::{Dataset, DatasetSpec};
pub use edgelist::{Edge, EdgeList};
pub use error::GraphError;
pub use packed::PackedCsr;
pub use partition::{Partitioner, VertexInterval};
pub use read::GraphRead;
pub use stats::DegreeStats;

/// Identifier of a vertex. The paper represents each edge in 4 bytes, which
/// bounds vertex identifiers to 32 bits; we adopt the same width.
pub type VertexId = u32;

/// Edge weight used by weighted algorithms (SSSP). The paper associates each
/// edge with "a random integer between 0 and 255" (Section V-A).
pub type Weight = u32;

/// Number of bytes in one off-chip memory access line (one HBM beat). Both
/// the paper's motivation (Section II-A) and the degree-aware scheduler
/// (Section IV-C) are phrased in terms of 64-byte lines.
pub const LINE_BYTES: usize = 64;

/// Number of bytes used to encode one edge in the CSR neighbor array
/// (Section I: "each edge represented in 4 bytes").
pub const EDGE_BYTES: usize = 4;

/// Number of edges per 64-byte line: 16. This equals the PE-row width of the
/// accelerator, which is what makes one line dispatchable to one row of PEs
/// in a single cycle.
pub const EDGES_PER_LINE: usize = LINE_BYTES / EDGE_BYTES;
