//! Graphicionado-style graph slicing.
//!
//! When a graph's vertex properties do not fit in the on-chip scratchpads,
//! ScalaGraph "slices a graph as in Graphicionado, and processes all
//! partitions in a round-robin manner" (Section III-A). A slice covers a
//! contiguous destination-vertex interval: within one slice, every update
//! targets a vertex whose temporary property is resident on-chip.

use crate::{Csr, Edge, GraphError, VertexId};

/// A half-open interval `[start, end)` of vertex ids forming one slice's
/// resident destination set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VertexInterval {
    /// First vertex id in the interval.
    pub start: VertexId,
    /// One past the last vertex id in the interval.
    pub end: VertexId,
}

impl VertexInterval {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the interval covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: VertexId) -> bool {
        (self.start..self.end).contains(&v)
    }
}

/// Computes destination-interval slices for round-robin execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    /// Maximum number of destination vertices whose temporary properties may
    /// be resident on-chip simultaneously (total scratchpad capacity in
    /// vertex-property slots).
    pub max_resident_vertices: usize,
}

impl Partitioner {
    /// Creates a partitioner with the given on-chip capacity in vertex
    /// property slots.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPartition`] if the capacity is zero.
    pub fn new(max_resident_vertices: usize) -> Result<Self, GraphError> {
        if max_resident_vertices == 0 {
            return Err(GraphError::InvalidPartition {
                detail: "on-chip capacity must be at least one vertex".to_owned(),
            });
        }
        Ok(Partitioner {
            max_resident_vertices,
        })
    }

    /// Splits `num_vertices` into equal contiguous intervals, each at most
    /// the resident capacity. Returns a single full-range interval when the
    /// whole property array fits on-chip.
    pub fn intervals(&self, num_vertices: usize) -> Vec<VertexInterval> {
        if num_vertices == 0 {
            return vec![];
        }
        let parts = num_vertices.div_ceil(self.max_resident_vertices);
        let base = num_vertices / parts;
        let extra = num_vertices % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            out.push(VertexInterval {
                start: start as VertexId,
                end: (start + len) as VertexId,
            });
            start += len;
        }
        debug_assert_eq!(start, num_vertices);
        out
    }

    /// Number of slices required for `num_vertices`.
    pub fn num_partitions(&self, num_vertices: usize) -> usize {
        num_vertices.div_ceil(self.max_resident_vertices).max(1)
    }
}

/// A destination-sliced view of a graph: the sub-CSR containing exactly the
/// edges whose destination lies in `interval`, plus bookkeeping for off-chip
/// traffic accounting (each slice keeps "an independent CSR storage",
/// Section IV-A's discussion of DOM generalizes to slicing).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSlice {
    /// Destination interval resident on-chip for this slice.
    pub interval: VertexInterval,
    /// Sub-CSR with only the slice's edges; vertex id space is unchanged.
    pub graph: Csr,
}

/// Slices `graph` by destination interval, producing one [`GraphSlice`] per
/// interval. The union of all slices' edges is exactly the original edge
/// set.
pub fn slice_by_destination(graph: &Csr, intervals: &[VertexInterval]) -> Vec<GraphSlice> {
    intervals
        .iter()
        .map(|&interval| {
            let edges: Vec<Edge> = graph.edges().filter(|e| interval.contains(e.dst)).collect();
            GraphSlice {
                interval,
                graph: Csr::from_edges(graph.num_vertices(), &edges),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn partitioner_rejects_zero_capacity() {
        assert!(Partitioner::new(0).is_err());
    }

    #[test]
    fn single_partition_when_fits() {
        let p = Partitioner::new(100).unwrap();
        let iv = p.intervals(64);
        assert_eq!(iv, vec![VertexInterval { start: 0, end: 64 }]);
        assert_eq!(p.num_partitions(64), 1);
    }

    #[test]
    fn intervals_cover_exactly_without_overlap() {
        let p = Partitioner::new(7).unwrap();
        let iv = p.intervals(30);
        assert_eq!(p.num_partitions(30), iv.len());
        let mut covered = 0usize;
        let mut prev_end = 0;
        for i in &iv {
            assert_eq!(i.start, prev_end);
            assert!(i.len() <= 7);
            covered += i.len();
            prev_end = i.end;
        }
        assert_eq!(covered, 30);
    }

    #[test]
    fn intervals_are_balanced() {
        let p = Partitioner::new(10).unwrap();
        let iv = p.intervals(25); // 3 parts: 9, 8, 8
        let lens: Vec<usize> = iv.iter().map(|i| i.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 25);
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn empty_graph_yields_no_intervals() {
        let p = Partitioner::new(4).unwrap();
        assert!(p.intervals(0).is_empty());
    }

    #[test]
    fn slices_partition_the_edge_set() {
        let edges = generators::uniform(50, 400, 5);
        let g = Csr::from_edges(50, &edges);
        let p = Partitioner::new(13).unwrap();
        let slices = slice_by_destination(&g, &p.intervals(50));
        let total: usize = slices.iter().map(|s| s.graph.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        for s in &slices {
            for e in s.graph.edges() {
                assert!(s.interval.contains(e.dst));
            }
        }
    }

    #[test]
    fn interval_contains() {
        let iv = VertexInterval { start: 3, end: 7 };
        assert!(!iv.contains(2));
        assert!(iv.contains(3));
        assert!(iv.contains(6));
        assert!(!iv.contains(7));
        assert!(!iv.is_empty());
        assert!(VertexInterval { start: 4, end: 4 }.is_empty());
    }
}
