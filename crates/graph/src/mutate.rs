//! Batched graph mutations with incremental CSR maintenance.
//!
//! ScalaGraph's evaluation graphs are social networks — the workload the
//! paper sizes the accelerator for is *churning* (GraphDynS, the dynamic
//! baseline we diff against, is named for it). This module provides the
//! host-side substrate for that churn: a [`MutationBatch`] of edge/vertex
//! inserts and deletes applied against CSR storage *incrementally*, keeping
//! both views consistent:
//!
//! * the **canonical** CSR — per-vertex adjacency in insertion order
//!   (surviving original edges first, in their original order, then the
//!   batch's inserts in op order), which is what the engines consume; and
//! * the **laid-out** CSR — the canonical graph after the Section IV-C
//!   degree-aware K-FIFO re-layout, maintained by re-shuffling *only the
//!   vertices a batch touched*. The re-layout is a pure per-vertex function
//!   of the canonical adjacency order, so untouched vertices' laid-out
//!   slices are copied verbatim and the result is bit-identical to a
//!   from-scratch [`degree_aware_relayout`](crate::relayout) rebuild.
//!
//! Degree classes (`⌈log2(degree + 1)⌉`, the bucket the degree-aware
//! scheduler sorts by) are maintained alongside; [`MutationStats`] reports
//! how many touched vertices actually changed class, which is the
//! re-bucketing work a hardware implementation would enqueue.

use crate::{Csr, Edge, GraphError, VertexId, Weight, EDGES_PER_LINE};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One mutation operation. Operations inside a batch apply sequentially, so
/// a `RemoveEdge` sees the effect of every earlier op in the same batch
/// (delete-then-reinsert leaves one copy; insert-then-delete leaves none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Insert one directed (optionally weighted) edge. Parallel copies are
    /// allowed, matching [`Csr::from_edges`].
    InsertEdge(Edge),
    /// Remove **all** copies of the directed edge `src -> dst` present at
    /// this point of the batch. Removing a non-existent edge is a no-op.
    RemoveEdge {
        /// Source endpoint.
        src: VertexId,
        /// Destination endpoint.
        dst: VertexId,
    },
    /// Append one new isolated vertex (its id is the current vertex count).
    AddVertex,
    /// Remove every in- and out-edge of a vertex, keeping its id live (CSR
    /// ids are dense, so "vertex deletion" is isolation).
    IsolateVertex(
        /// The vertex to isolate.
        VertexId,
    ),
}

/// An ordered batch of [`Mutation`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    ops: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        MutationBatch { ops: Vec::new() }
    }

    /// Appends an edge insertion.
    pub fn insert_edge(&mut self, edge: Edge) -> &mut Self {
        self.ops.push(Mutation::InsertEdge(edge));
        self
    }

    /// Appends a remove-all-copies edge deletion.
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.ops.push(Mutation::RemoveEdge { src, dst });
        self
    }

    /// Appends a vertex addition.
    pub fn add_vertex(&mut self) -> &mut Self {
        self.ops.push(Mutation::AddVertex);
        self
    }

    /// Appends a vertex isolation.
    pub fn isolate_vertex(&mut self, v: VertexId) -> &mut Self {
        self.ops.push(Mutation::IsolateVertex(v));
        self
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[Mutation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Work accounting for one applied batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Pre-existing vertices whose adjacency list changed.
    pub touched_vertices: usize,
    /// Touched vertices whose degree class changed (the vertices the
    /// degree-aware scheduler must re-bucket).
    pub rebucketed_vertices: usize,
    /// Edge copies inserted.
    pub edges_inserted: usize,
    /// Edge copies removed.
    pub edges_removed: usize,
    /// Vertices appended.
    pub vertices_added: usize,
    /// Vertices isolated.
    pub vertices_isolated: usize,
    /// Edges pushed through the incremental K-FIFO re-shuffle (the
    /// re-layout cost of the batch; untouched vertices cost nothing).
    pub relayout_edges: usize,
}

/// What a batch did, in terms the incremental algorithms consume.
///
/// `inserted`/`removed` list concrete edge *copies* with the weight each
/// carried, in no particular order. An edge inserted and removed by the same
/// batch appears in both lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationDelta {
    /// Edge copies added by the batch.
    pub inserted: Vec<Edge>,
    /// Edge copies removed by the batch.
    pub removed: Vec<Edge>,
    /// Vertex count before the batch.
    pub old_num_vertices: usize,
    /// Work accounting.
    pub stats: MutationStats,
}

/// Degree class of an out-degree: 0 for isolated vertices, otherwise the
/// bit length of the degree (`class(1) = 1`, `class(2..=3) = 2`, ...). The
/// degree-aware scheduler's buckets are powers of two, so a mutation only
/// forces re-bucketing when this value changes.
pub fn degree_class(degree: usize) -> u8 {
    if degree == 0 {
        0
    } else {
        (usize::BITS - degree.leading_zeros()) as u8
    }
}

/// A CSR graph that accepts [`MutationBatch`]es, maintaining the canonical
/// adjacency and its degree-aware laid-out view incrementally.
///
/// # Example
///
/// ```
/// use scalagraph_graph::mutate::{DynamicCsr, MutationBatch};
/// use scalagraph_graph::{Csr, Edge};
///
/// let base = Csr::from_edges(4, &[Edge::new(0, 1), Edge::new(1, 2)]);
/// let mut g = DynamicCsr::new(base);
/// let mut batch = MutationBatch::new();
/// batch.insert_edge(Edge::new(2, 3)).remove_edge(0, 1);
/// let delta = g.apply(&batch).unwrap();
/// assert_eq!(delta.stats.edges_inserted, 1);
/// assert_eq!(g.canonical().neighbors(2), &[3]);
/// assert_eq!(g.canonical().out_degree(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicCsr {
    canonical: Csr,
    laidout: Csr,
    lanes: usize,
    classes: Vec<u8>,
    nonzero_weights: usize,
}

impl DynamicCsr {
    /// Wraps a canonical CSR, building the laid-out view at the paper's
    /// 16-lane (64-byte line) width.
    pub fn new(canonical: Csr) -> Self {
        Self::with_lanes(canonical, EDGES_PER_LINE)
    }

    /// Wraps a canonical CSR with an explicit lane count. The lane map is
    /// `dst % lanes` throughout (the modulo hash the re-layout tests use).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_lanes(canonical: Csr, lanes: usize) -> Self {
        assert!(lanes > 0, "lane count must be positive");
        let mut laidout = canonical.clone();
        crate::relayout::degree_aware_relayout(&mut laidout, lanes, |d| (d as usize) % lanes);
        let classes = canonical
            .vertices()
            .map(|v| degree_class(canonical.out_degree(v)))
            .collect();
        let nonzero_weights = (0..canonical.num_edges())
            .filter(|&i| canonical.weight_at(i) != 0)
            .count();
        DynamicCsr {
            canonical,
            laidout,
            lanes,
            classes,
            nonzero_weights,
        }
    }

    /// The canonical (insertion-ordered) CSR the engines consume.
    pub fn canonical(&self) -> &Csr {
        &self.canonical
    }

    /// The degree-aware laid-out view (Section IV-C ordering).
    pub fn laidout(&self) -> &Csr {
        &self.laidout
    }

    /// Lane count of the laid-out view.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Current vertex count.
    pub fn num_vertices(&self) -> usize {
        self.canonical.num_vertices()
    }

    /// Current edge count.
    pub fn num_edges(&self) -> usize {
        self.canonical.num_edges()
    }

    /// Degree class of vertex `v` (maintained incrementally).
    pub fn degree_class_of(&self, v: VertexId) -> u8 {
        self.classes[v as usize]
    }

    /// Applies one batch incrementally. Returns the delta (concrete edge
    /// copies inserted/removed plus work accounting).
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] when an op references a vertex id
    /// that does not exist at that point of the batch. The graph is left
    /// unchanged on error.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<MutationDelta, GraphError> {
        let old_n = self.canonical.num_vertices();
        let mut n = old_n;
        // Per-source overlay of touched adjacency lists, materialized lazily
        // from the canonical CSR. BTreeMap keeps diagnostics deterministic.
        let mut overlay: BTreeMap<u32, Vec<(VertexId, Weight)>> = BTreeMap::new();
        let mut delta = MutationDelta {
            old_num_vertices: old_n,
            ..MutationDelta::default()
        };
        let mut nz_delta = 0isize;

        let check = |v: VertexId, n: usize| {
            if (v as usize) < n {
                Ok(())
            } else {
                Err(GraphError::VertexOutOfRange {
                    vertex: u64::from(v),
                    num_vertices: n as u64,
                })
            }
        };
        // Validate up front so the builder below cannot observe a
        // half-applied batch.
        {
            let mut probe = old_n;
            for op in batch.ops() {
                match *op {
                    Mutation::AddVertex => probe += 1,
                    Mutation::InsertEdge(e) => {
                        check(e.src, probe)?;
                        check(e.dst, probe)?;
                    }
                    Mutation::RemoveEdge { src, dst } => {
                        check(src, probe)?;
                        check(dst, probe)?;
                    }
                    Mutation::IsolateVertex(v) => check(v, probe)?,
                }
            }
        }

        let canonical = &self.canonical;
        let list_of = |overlay: &mut BTreeMap<u32, Vec<(VertexId, Weight)>>, v: VertexId| {
            overlay.entry(v).or_insert_with(|| {
                if (v as usize) < old_n {
                    canonical
                        .edge_range(v)
                        .map(|i| (canonical.neighbor_at(i), canonical.weight_at(i)))
                        .collect()
                } else {
                    Vec::new()
                }
            });
        };

        for op in batch.ops() {
            match *op {
                Mutation::AddVertex => {
                    n += 1;
                    delta.stats.vertices_added += 1;
                }
                Mutation::InsertEdge(e) => {
                    list_of(&mut overlay, e.src);
                    if let Some(list) = overlay.get_mut(&e.src) {
                        list.push((e.dst, e.weight));
                    }
                    if e.weight != 0 {
                        nz_delta += 1;
                    }
                    delta.inserted.push(e);
                    delta.stats.edges_inserted += 1;
                }
                Mutation::RemoveEdge { src, dst } => {
                    list_of(&mut overlay, src);
                    if let Some(list) = overlay.get_mut(&src) {
                        list.retain(|&(d, w)| {
                            if d == dst {
                                if w != 0 {
                                    nz_delta -= 1;
                                }
                                delta.removed.push(Edge::weighted(src, dst, w));
                                delta.stats.edges_removed += 1;
                                false
                            } else {
                                true
                            }
                        });
                    }
                }
                Mutation::IsolateVertex(v) => {
                    // Out-edges of v.
                    list_of(&mut overlay, v);
                    if let Some(list) = overlay.get_mut(&v) {
                        for &(d, w) in list.iter() {
                            if w != 0 {
                                nz_delta -= 1;
                            }
                            delta.removed.push(Edge::weighted(v, d, w));
                            delta.stats.edges_removed += 1;
                        }
                        list.clear();
                    }
                    // In-edges u -> v; scans the whole (overlaid) graph,
                    // which is why isolation costs O(V + E) while pure edge
                    // batches cost only their touched vertices.
                    let in_sources: Vec<u32> = (0..n as u32)
                        .filter(|&u| match overlay.get(&u) {
                            Some(list) => list.iter().any(|&(d, _)| d == v),
                            None => (u as usize) < old_n && canonical.neighbors(u).contains(&v),
                        })
                        .collect();
                    for u in in_sources {
                        list_of(&mut overlay, u);
                        if let Some(list) = overlay.get_mut(&u) {
                            list.retain(|&(d, w)| {
                                if d == v {
                                    if w != 0 {
                                        nz_delta -= 1;
                                    }
                                    delta.removed.push(Edge::weighted(u, v, w));
                                    delta.stats.edges_removed += 1;
                                    false
                                } else {
                                    true
                                }
                            });
                        }
                    }
                    delta.stats.vertices_isolated += 1;
                }
            }
        }

        delta.stats.touched_vertices = overlay.keys().filter(|&&v| (v as usize) < old_n).count();
        self.nonzero_weights = self
            .nonzero_weights
            .checked_add_signed(nz_delta)
            .unwrap_or(0);
        let weighted = self.nonzero_weights > 0;

        // Splice both views: runs of untouched vertices copy their old flat
        // slices wholesale (one memcpy per run per view — the splice cost
        // is driven by the touched set, not by per-edge pushes); touched
        // vertices take the overlay list (canonical) and its per-vertex
        // K-FIFO shuffle (laid-out).
        let old_edges = self.canonical.num_edges();
        let grown = old_edges + delta.stats.edges_inserted;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut c_nbr: Vec<VertexId> = Vec::with_capacity(grown);
        let mut c_w: Vec<Weight> = Vec::with_capacity(if weighted { grown } else { 0 });
        let mut l_nbr: Vec<VertexId> = Vec::with_capacity(grown);
        let mut l_w: Vec<Weight> = Vec::with_capacity(if weighted { grown } else { 0 });
        {
            // Both views share the offset array: the re-layout permutes
            // within each vertex's slice only.
            let old_off = self.canonical.offsets();
            let c_old = self.canonical.neighbor_array();
            let l_old = self.laidout.neighbor_array();
            let c_old_w = self.canonical.weight_array();
            let l_old_w = self.laidout.weight_array();
            let mut touched = overlay.iter().peekable();
            let mut v: u32 = 0;
            while (v as usize) < n {
                match touched.peek() {
                    Some(&(&tv, list)) if tv == v => {
                        delta.stats.relayout_edges += list.len();
                        for &(d, w) in list {
                            c_nbr.push(d);
                            if weighted {
                                c_w.push(w);
                            }
                        }
                        for (d, w) in shuffle_vertex(list, self.lanes) {
                            l_nbr.push(d);
                            if weighted {
                                l_w.push(w);
                            }
                        }
                        offsets.push(c_nbr.len() as u64);
                        touched.next();
                        v += 1;
                    }
                    peeked => {
                        // Untouched run [v, run_end): old vertices copy
                        // wholesale, appended ones are empty.
                        let run_end = peeked.map_or(n as u32, |&(&tv, _)| tv);
                        let old_end = run_end.min(old_n as u32);
                        if v < old_end {
                            let (lo, hi) = (
                                old_off[v as usize] as usize,
                                old_off[old_end as usize] as usize,
                            );
                            // Deletes can shift later slices backwards.
                            let shift = c_nbr.len() as i64 - lo as i64;
                            c_nbr.extend_from_slice(&c_old[lo..hi]);
                            l_nbr.extend_from_slice(&l_old[lo..hi]);
                            if weighted {
                                // A previously unweighted view stores
                                // implicit zeros.
                                match c_old_w {
                                    Some(w) => c_w.extend_from_slice(&w[lo..hi]),
                                    None => c_w.resize(c_w.len() + (hi - lo), 0),
                                }
                                match l_old_w {
                                    Some(w) => l_w.extend_from_slice(&w[lo..hi]),
                                    None => l_w.resize(l_w.len() + (hi - lo), 0),
                                }
                            }
                            for u in v..old_end {
                                offsets.push((old_off[u as usize + 1] as i64 + shift) as u64);
                            }
                        }
                        for _ in old_end.max(v)..run_end {
                            offsets.push(c_nbr.len() as u64);
                        }
                        v = run_end;
                    }
                }
            }
        }

        let build = |nbr: Vec<VertexId>, w: Vec<Weight>| {
            Csr::from_raw_parts(offsets.clone(), nbr, weighted.then_some(w))
        };
        self.canonical = build(c_nbr, c_w)?;
        self.laidout = build(l_nbr, l_w)?;

        // Degree classes: recompute touched + appended, count class flips.
        self.classes.resize(n, 0);
        for (&v, list) in &overlay {
            let class = degree_class(list.len());
            if (v as usize) < old_n && self.classes[v as usize] != class {
                delta.stats.rebucketed_vertices += 1;
            }
            self.classes[v as usize] = class;
        }
        Ok(delta)
    }

    /// From-scratch rebuild of both views from the current canonical edge
    /// set: the golden reference the incremental path is tested against.
    /// Returns `(canonical, laidout)`.
    pub fn rebuild_reference(&self) -> (Csr, Csr) {
        let edges: Vec<Edge> = self.canonical.edges().collect();
        let canonical = Csr::from_edges(self.canonical.num_vertices(), &edges);
        let mut laidout = canonical.clone();
        let lanes = self.lanes;
        crate::relayout::degree_aware_relayout(&mut laidout, lanes, |d| (d as usize) % lanes);
        (canonical, laidout)
    }
}

/// The Section IV-C K-FIFO round-robin shuffle for one vertex's adjacency
/// list, with the `dst % lanes` lane map. Mirrors
/// [`degree_aware_relayout`](crate::relayout::degree_aware_relayout), which
/// processes vertices independently — this is what makes the incremental
/// re-layout exact: a vertex's laid-out slice depends only on its own
/// canonical list.
fn shuffle_vertex(list: &[(VertexId, Weight)], lanes: usize) -> Vec<(VertexId, Weight)> {
    let mut fifos: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
    for (i, &(d, _)) in list.iter().enumerate() {
        fifos[(d as usize) % lanes].push_back(i);
    }
    let mut out = Vec::with_capacity(list.len());
    while out.len() < list.len() {
        for lane in 0..lanes {
            if out.len() >= list.len() {
                break;
            }
            let idx = fifos[lane].pop_front().or_else(|| {
                (0..lanes)
                    .map(|d| (lane + d) % lanes)
                    .find_map(|l| fifos[l].pop_front())
            });
            if let Some(idx) = idx {
                out.push(list[idx]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relayout::degree_aware_relayout;
    use crate::{generators, Csr};

    fn assert_views_match_rebuild(g: &DynamicCsr) {
        let (canonical, laidout) = g.rebuild_reference();
        assert_eq!(&canonical, g.canonical(), "canonical diverged");
        assert_eq!(&laidout, g.laidout(), "laid-out view diverged");
        for v in canonical.vertices() {
            assert_eq!(
                g.degree_class_of(v),
                degree_class(canonical.out_degree(v)),
                "degree class diverged for vertex {v}"
            );
        }
    }

    #[test]
    fn degree_classes_bucket_by_bit_length() {
        assert_eq!(degree_class(0), 0);
        assert_eq!(degree_class(1), 1);
        assert_eq!(degree_class(2), 2);
        assert_eq!(degree_class(3), 2);
        assert_eq!(degree_class(4), 3);
        assert_eq!(degree_class(15), 4);
        assert_eq!(degree_class(16), 5);
    }

    #[test]
    fn empty_batch_is_identity() {
        let base = Csr::from_edges(64, &generators::uniform(64, 400, 3));
        let mut g = DynamicCsr::new(base.clone());
        let before = g.canonical().clone();
        let delta = g.apply(&MutationBatch::new()).unwrap();
        assert_eq!(g.canonical(), &before);
        assert_eq!(delta.stats, MutationStats::default());
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn insert_appends_in_op_order_and_keeps_untouched_slices() {
        let base = Csr::from_edges(5, &[Edge::new(0, 1), Edge::new(0, 2), Edge::new(3, 4)]);
        let mut g = DynamicCsr::new(base);
        let mut b = MutationBatch::new();
        b.insert_edge(Edge::new(0, 4)).insert_edge(Edge::new(0, 3));
        let delta = g.apply(&b).unwrap();
        assert_eq!(g.canonical().neighbors(0), &[1, 2, 4, 3]);
        assert_eq!(g.canonical().neighbors(3), &[4]);
        assert_eq!(delta.stats.touched_vertices, 1);
        assert_eq!(delta.stats.relayout_edges, 4);
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn remove_drops_all_copies_and_records_weights() {
        let base = Csr::from_edges(
            3,
            &[
                Edge::weighted(0, 1, 7),
                Edge::weighted(0, 2, 3),
                Edge::weighted(0, 1, 9),
            ],
        );
        let mut g = DynamicCsr::new(base);
        let mut b = MutationBatch::new();
        b.remove_edge(0, 1);
        let delta = g.apply(&b).unwrap();
        assert_eq!(g.canonical().neighbors(0), &[2]);
        assert_eq!(
            delta.removed,
            vec![Edge::weighted(0, 1, 7), Edge::weighted(0, 1, 9)]
        );
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn delete_then_reinsert_leaves_one_copy_at_the_tail() {
        let base = Csr::from_edges(3, &[Edge::weighted(0, 1, 5), Edge::weighted(0, 2, 6)]);
        let mut g = DynamicCsr::new(base);
        let mut b = MutationBatch::new();
        b.remove_edge(0, 1).insert_edge(Edge::weighted(0, 1, 8));
        let delta = g.apply(&b).unwrap();
        assert_eq!(g.canonical().neighbors(0), &[2, 1]);
        assert_eq!(g.canonical().edge_weights(0).unwrap(), &[6, 8]);
        assert_eq!(delta.removed, vec![Edge::weighted(0, 1, 5)]);
        assert_eq!(delta.inserted, vec![Edge::weighted(0, 1, 8)]);
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn insert_then_delete_within_one_batch_cancels() {
        let base = Csr::from_edges(3, &[Edge::new(0, 1)]);
        let mut g = DynamicCsr::new(base.clone());
        let mut b = MutationBatch::new();
        b.insert_edge(Edge::new(1, 2)).remove_edge(1, 2);
        let delta = g.apply(&b).unwrap();
        assert_eq!(g.canonical(), &base);
        assert_eq!(delta.inserted.len(), 1);
        assert_eq!(delta.removed.len(), 1);
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn add_vertex_then_wire_it() {
        let base = Csr::from_edges(2, &[Edge::new(0, 1)]);
        let mut g = DynamicCsr::new(base);
        let mut b = MutationBatch::new();
        b.add_vertex()
            .insert_edge(Edge::new(2, 0))
            .insert_edge(Edge::new(1, 2));
        let delta = g.apply(&b).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.canonical().neighbors(2), &[0]);
        assert_eq!(g.canonical().neighbors(1), &[2]);
        assert_eq!(delta.stats.vertices_added, 1);
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn isolate_removes_in_and_out_edges() {
        let base = Csr::from_edges(
            4,
            &[
                Edge::new(0, 1),
                Edge::new(2, 1),
                Edge::new(1, 3),
                Edge::new(0, 3),
            ],
        );
        let mut g = DynamicCsr::new(base);
        let mut b = MutationBatch::new();
        b.isolate_vertex(1);
        let delta = g.apply(&b).unwrap();
        assert_eq!(g.canonical().out_degree(1), 0);
        assert_eq!(g.canonical().neighbors(0), &[3]);
        assert_eq!(g.canonical().out_degree(2), 0);
        assert_eq!(delta.stats.vertices_isolated, 1);
        assert_eq!(delta.stats.edges_removed, 3);
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn out_of_range_op_leaves_graph_unchanged() {
        let base = Csr::from_edges(3, &[Edge::new(0, 1)]);
        let mut g = DynamicCsr::new(base.clone());
        let mut b = MutationBatch::new();
        b.insert_edge(Edge::new(0, 2)).insert_edge(Edge::new(0, 9));
        let err = g.apply(&b).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 9, .. }
        ));
        assert_eq!(g.canonical(), &base);
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn weighted_flag_flips_when_last_nonzero_weight_leaves() {
        let base = Csr::from_edges(3, &[Edge::weighted(0, 1, 4), Edge::new(1, 2)]);
        assert!(base.is_weighted());
        let mut g = DynamicCsr::new(base);
        let mut b = MutationBatch::new();
        b.remove_edge(0, 1);
        g.apply(&b).unwrap();
        assert!(
            !g.canonical().is_weighted(),
            "all weights zero -> unweighted"
        );
        assert_views_match_rebuild(&g);
        // And back: inserting a weighted edge restores the array.
        let mut b = MutationBatch::new();
        b.insert_edge(Edge::weighted(2, 0, 9));
        g.apply(&b).unwrap();
        assert!(g.canonical().is_weighted());
        assert_views_match_rebuild(&g);
    }

    #[test]
    fn incremental_relayout_matches_full_over_random_batches() {
        let mut rng = 0x12345u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let base = Csr::from_edges(40, &generators::power_law(40, 300, 0.7, 11));
        let mut g = DynamicCsr::new(base);
        for _round in 0..12 {
            let n = g.num_vertices() as u64;
            let mut b = MutationBatch::new();
            for _ in 0..(next() % 6) {
                b.insert_edge(Edge::weighted(
                    (next() % n) as u32,
                    (next() % n) as u32,
                    (next() % 3) as u32,
                ));
            }
            for _ in 0..(next() % 6) {
                b.remove_edge((next() % n) as u32, (next() % n) as u32);
            }
            if next() % 5 == 0 {
                b.add_vertex();
            }
            if next() % 7 == 0 {
                b.isolate_vertex((next() % n) as u32);
            }
            g.apply(&b).unwrap();
            assert_views_match_rebuild(&g);
        }
    }

    #[test]
    fn shuffle_vertex_matches_whole_graph_relayout() {
        for lanes in [1usize, 3, 8, 16] {
            let edges = generators::uniform(30, 240, 5);
            let g = Csr::from_edges(30, &edges);
            let mut full = g.clone();
            degree_aware_relayout(&mut full, lanes, |d| (d as usize) % lanes);
            for v in g.vertices() {
                let list: Vec<(VertexId, Weight)> = g
                    .edge_range(v)
                    .map(|i| (g.neighbor_at(i), g.weight_at(i)))
                    .collect();
                let shuffled: Vec<VertexId> = shuffle_vertex(&list, lanes)
                    .into_iter()
                    .map(|(d, _)| d)
                    .collect();
                assert_eq!(shuffled, full.neighbors(v), "vertex {v}, lanes {lanes}");
            }
        }
    }
}
