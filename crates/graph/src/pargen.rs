//! Deterministic chunked parallel generation for the dataset presets.
//!
//! The serial generators in [`crate::generators`] thread one RNG through
//! every edge, so their output order *is* their execution order — nothing
//! can run concurrently without changing the graph. This module re-derives
//! the dataset stand-ins from **per-chunk seeded SplitMix64 streams**: the
//! work is cut into fixed-size chunks (by vertex range for the power-law
//! model, by edge range for R-MAT), each chunk draws from its own stream
//! seeded by `(seed, chunk index)`, and the merge is a plain concatenation
//! in chunk order. The output is therefore a pure function of `(spec,
//! seed)` — independent of thread count, scheduling, and even of whether
//! the chunks ran in parallel at all — which is what lets
//! [`crate::datasets::Dataset::edge_list`] fan out over a scoped thread
//! pool while staying bit-identical to the sequential reference
//! ([`Dataset::edge_list_serial`](crate::datasets::Dataset::edge_list_serial)).
//!
//! The parallel path also replaces the per-edge binary search over the
//! Zipf CDF (~log2(V) cache-missing probes per edge) with a quantized
//! inverse-CDF bucket table that narrows each search to a handful of
//! entries. The bucket bounds are conservative, so the final
//! `partition_point` answers exactly as the full search would — the
//! speedup changes no bits, and compounds with the thread fan-out.
//!
//! Dataset adjacency is emitted in **canonical sorted order** (each
//! vertex's neighbors ascending): the packed container's delta+varint
//! encoder feeds on sorted runs, and a canonical order makes "the graph
//! for `(dataset, scale, seed)`" a well-defined artifact to pack, cache,
//! and compare across processes.

use crate::{Edge, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Vertices per power-law chunk. Small enough that even the 64-vertex
/// clamped presets split across cores, large enough that per-chunk stream
/// setup is noise.
const CHUNK_VERTICES: usize = 4096;

/// Edges per R-MAT chunk.
const CHUNK_EDGES: usize = 1 << 16;

/// Quantization of the inverse-CDF bucket table for a CDF of `n` entries.
/// Always a power of two so the `r * Q` bucket mapping is exact in f64.
/// Scaling with `n` (~4 entries per bucket) keeps the window scan at one
/// or two cache lines even for the full multi-million-vertex presets —
/// a fixed table that is comfortable at Pokec scale leaves ~40-entry
/// windows at LiveJournal scale and gives back most of the win. Clamped
/// to 2^22 buckets (16 MiB of table) above ~16M vertices.
fn rank_buckets(n: usize) -> usize {
    (n / 4).next_power_of_two().clamp(1 << 17, 1 << 22)
}

const TAG_PERM: u64 = 1;
const TAG_LEFTOVER: u64 = 2;
const TAG_DST: u64 = 3;
const TAG_RMAT: u64 = 4;

/// SplitMix64: the stream primitive. One instance per chunk, seeded from
/// `(seed, tag, chunk index)` — no state crosses a chunk boundary.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn stream(seed: u64, tag: u64, idx: u64) -> SplitMix64 {
        let mut s = SplitMix64 {
            state: seed
                ^ tag.wrapping_mul(0xa076_1d64_78bd_642f)
                ^ idx.wrapping_mul(0xe703_7ed1_a0b4_28db),
        };
        // Burn one output so near-identical seeds decorrelate immediately.
        s.next_u64();
        s
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits).
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via 128-bit multiply.
    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Worker count: `SCALAGRAPH_THREADS` when set to a positive integer,
/// otherwise every available core (the same contract as the bench sweeps).
pub(crate) fn default_threads() -> usize {
    let from_env = std::env::var("SCALAGRAPH_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `gen(chunk)` for every chunk and returns the results in chunk
/// order. The parallel path farms chunks out over scoped threads; because
/// each chunk is self-seeded, the output is identical either way.
fn run_chunks<T, F>(num_chunks: usize, threads: usize, gen: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_chunks.max(1));
    if threads <= 1 || num_chunks <= 1 {
        return (0..num_chunks).map(gen).collect();
    }
    let mut slots: Vec<Option<T>> = (0..num_chunks).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let gen = &gen;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= num_chunks {
                        break;
                    }
                    out.push((c, gen(c)));
                }
                out
            }));
        }
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (c, r) in results {
                        slots[c] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // Every chunk index is claimed exactly once; a hole means a
            // worker vanished without panicking, which cannot happen.
            None => unreachable!("generation chunk left unfilled"),
        })
        .collect()
}

/// Conservative bucket table over a non-decreasing CDF: `buckets[q]` is
/// `partition_point(cdf, |c| c < q / Q)`, so a draw `r` with bucket
/// `q = floor(r * Q)` can only land in `buckets[q] ..= buckets[q + 1]`.
struct RankTable {
    buckets: Vec<u32>,
}

impl RankTable {
    fn build(cdf: &[f64]) -> RankTable {
        let q = rank_buckets(cdf.len());
        let mut buckets = Vec::with_capacity(q + 1);
        let mut rank = 0usize;
        for b in 0..=q {
            let threshold = b as f64 / q as f64;
            while rank < cdf.len() && cdf[rank] < threshold {
                rank += 1;
            }
            buckets.push(rank as u32);
        }
        RankTable { buckets }
    }

    /// Exactly `cdf.partition_point(|&c| c < r)`, via the bucket bounds.
    /// This is the one-sample spec of what the staged pipeline in
    /// [`sample_destinations_batched`] computes; the equivalence test
    /// below pins them to the plain binary search.
    #[cfg(test)]
    fn rank_of(&self, cdf: &[f64], r: f64) -> usize {
        let q = self.buckets.len() - 1;
        let b = ((r * q as f64) as usize).min(q - 1);
        let lo = self.buckets[b] as usize;
        let hi = self.buckets[b + 1] as usize;
        lo + cdf[lo..hi].partition_point(|&c| c < r)
    }
}

/// Hint `addr` into cache on x86-64; a no-op elsewhere. The sampling
/// pipeline below issues these one pass ahead of the loads they feed.
#[inline(always)]
fn prefetch<T>(addr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions perform no memory access and are
    // architecturally valid for any address, mapped or not.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(addr.cast());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = addr;
}

/// One vertex's destination sampling via the bucket table, staged in
/// fixed-size batches. Each sample needs three data-dependent lookups —
/// bucket table, CDF window, rank permutation — and at full LiveJournal
/// scale each structure is tens of megabytes, so the naive per-sample
/// chain serializes three cache misses per edge. Splitting a batch into
/// one pass per stage (each pass prefetching the next pass's lines) lets
/// the misses of ~[`SAMPLE_BATCH`] samples resolve in parallel. Draw
/// order from `rng` and every computed value are identical to the naive
/// loop, so output stays bit-identical to the serial reference.
const SAMPLE_BATCH: usize = 64;

fn sample_destinations_batched(
    table: &RankTable,
    cdf: &[f64],
    perm: &[VertexId],
    src: usize,
    degree: u32,
    rng: &mut SplitMix64,
    buf: &mut Vec<VertexId>,
) {
    let n = cdf.len();
    let q = table.buckets.len() - 1;
    let mut rs = [0f64; SAMPLE_BATCH];
    // `ranks` holds the bucket index until pass three overwrites it with
    // the resolved rank.
    let mut ranks = [0usize; SAMPLE_BATCH];
    let mut windows = [(0u32, 0u32); SAMPLE_BATCH];
    let mut left = degree as usize;
    while left > 0 {
        let batch = left.min(SAMPLE_BATCH);
        for k in 0..batch {
            let r = rng.next_f64();
            rs[k] = r;
            let b = ((r * q as f64) as usize).min(q - 1);
            ranks[k] = b;
            prefetch(&table.buckets[b]);
        }
        for k in 0..batch {
            let b = ranks[k];
            windows[k] = (table.buckets[b], table.buckets[b + 1]);
            prefetch(&cdf[windows[k].0 as usize]);
        }
        for k in 0..batch {
            let (lo, hi) = (windows[k].0 as usize, windows[k].1 as usize);
            let rank = (lo + cdf[lo..hi].partition_point(|&c| c < rs[k])).min(n - 1);
            ranks[k] = rank;
            prefetch(&perm[rank]);
        }
        for k in 0..batch {
            let mut dst = perm[ranks[k]];
            if dst as usize == src {
                dst = ((src + 1) % n) as VertexId;
            }
            buf.push(dst);
        }
        left -= batch;
    }
}

/// Chunk-parallel capped power-law configuration model. Same model as
/// [`crate::generators::power_law_capped`] — Zipf out-degrees over a
/// shuffled rank permutation, preferential destinations through the Zipf
/// inverse CDF, per-vertex share capped at `max_share` — but driven by
/// per-chunk streams, with each vertex's adjacency emitted sorted.
///
/// `parallel == false` is the sequential reference (plain binary search,
/// chunks run in order on the caller's thread); `parallel == true` fans
/// chunks over scoped threads and uses the bucket table. Both produce
/// bit-identical output for the same arguments.
pub(crate) fn power_law_capped_chunked(
    num_vertices: usize,
    num_edges: usize,
    alpha: f64,
    max_share: f64,
    seed: u64,
    parallel: bool,
) -> Vec<Edge> {
    assert!(
        max_share > 0.0 && max_share <= 1.0,
        "share must be in (0, 1]"
    );
    if num_vertices == 0 || num_edges == 0 {
        return Vec::new();
    }
    let n = num_vertices;

    // Rank -> vertex permutation (hub ids must not cluster at 0).
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = SplitMix64::stream(seed, TAG_PERM, 0);
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }

    // Capped Zipf weights by rank; the CDF drives destination sampling.
    let uncapped: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(alpha)).sum();
    let cap = max_share * uncapped;
    let mut total = 0f64;
    let weight_of_rank = |rank: usize| (1.0 / ((rank + 1) as f64).powf(alpha)).min(cap);
    for rank in 0..n {
        total += weight_of_rank(rank);
    }
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0f64;
    for rank in 0..n {
        acc += weight_of_rank(rank);
        cdf.push(acc / total);
    }

    // Integer out-degrees: floor of the proportional share, remainder
    // sprinkled from its own stream so the total is exact.
    let mut degrees = vec![0u32; n];
    let mut assigned = 0usize;
    for rank in 0..n {
        let d = ((weight_of_rank(rank) / total) * num_edges as f64).floor() as usize;
        degrees[perm[rank] as usize] = d as u32;
        assigned += d;
    }
    let mut leftover_rng = SplitMix64::stream(seed, TAG_LEFTOVER, 0);
    while assigned < num_edges {
        degrees[leftover_rng.next_below(n as u64) as usize] += 1;
        assigned += 1;
    }

    // Edge starts per chunk (for exact preallocation).
    let num_chunks = n.div_ceil(CHUNK_VERTICES);
    let table = if parallel {
        Some(RankTable::build(&cdf))
    } else {
        None
    };
    let threads = if parallel { default_threads() } else { 1 };
    let chunks = run_chunks(num_chunks, threads, |c| {
        let lo = c * CHUNK_VERTICES;
        let hi = (lo + CHUNK_VERTICES).min(n);
        let chunk_edges: usize = degrees[lo..hi].iter().map(|&d| d as usize).sum();
        let mut rng = SplitMix64::stream(seed, TAG_DST, c as u64);
        let mut out = Vec::with_capacity(chunk_edges);
        let mut buf: Vec<VertexId> = Vec::new();
        for (src, &degree) in degrees.iter().enumerate().take(hi).skip(lo) {
            buf.clear();
            match &table {
                Some(t) => {
                    sample_destinations_batched(t, &cdf, &perm, src, degree, &mut rng, &mut buf)
                }
                // The sequential reference: the plain per-sample binary
                // search this path has always used.
                None => {
                    for _ in 0..degree {
                        let r = rng.next_f64();
                        let rank = cdf.partition_point(|&c| c < r).min(n - 1);
                        let mut dst = perm[rank];
                        if dst as usize == src {
                            dst = ((src + 1) % n) as VertexId;
                        }
                        buf.push(dst);
                    }
                }
            }
            buf.sort_unstable();
            out.extend(buf.iter().map(|&d| Edge::new(src as VertexId, d)));
        }
        out
    });
    let mut edges = Vec::with_capacity(num_edges);
    for chunk in chunks {
        edges.extend_from_slice(&chunk);
    }
    edges
}

/// Chunk-parallel R-MAT in the folded deep-id space of
/// [`crate::generators::rmat_with_depth`]: each edge descends `depth`
/// quadrant levels and folds its endpoints below `num_vertices`. Chunks
/// cover fixed edge-index ranges, so the merge is concatenation. May emit
/// self-loops (Graph500 output has them too); callers filter as needed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rmat_folded_chunked(
    num_vertices: usize,
    num_edges: usize,
    a: f64,
    b: f64,
    c: f64,
    depth: u32,
    seed: u64,
    parallel: bool,
) -> Vec<Edge> {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12);
    if num_vertices == 0 || num_edges == 0 {
        return Vec::new();
    }
    let scale = depth
        .max((num_vertices.max(2) as f64).log2().ceil() as u32)
        .min(63);
    let side = 1u64 << scale;
    let n = num_vertices as u64;
    let num_chunks = num_edges.div_ceil(CHUNK_EDGES);
    let threads = if parallel { default_threads() } else { 1 };
    let chunks = run_chunks(num_chunks, threads, |ci| {
        let lo = ci * CHUNK_EDGES;
        let hi = (lo + CHUNK_EDGES).min(num_edges);
        let mut rng = SplitMix64::stream(seed, TAG_RMAT, ci as u64);
        let mut out = Vec::with_capacity(hi - lo);
        for _ in lo..hi {
            let (mut x, mut y) = (0u64, 0u64);
            let mut step = side >> 1;
            while step > 0 {
                let r = rng.next_f64();
                if r < a {
                    // top-left
                } else if r < a + b {
                    y += step;
                } else if r < a + b + c {
                    x += step;
                } else {
                    x += step;
                    y += step;
                }
                step >>= 1;
            }
            out.push(Edge::new((x % n) as VertexId, (y % n) as VertexId));
        }
        out
    });
    let mut edges = Vec::with_capacity(num_edges);
    for chunk in chunks {
        edges.extend_from_slice(&chunk);
    }
    edges
}

/// Canonicalizes a flat edge list into sorted-adjacency CSR order: stable
/// counting sort by source, then each source's destinations ascending.
/// O(E + V) plus the per-vertex run sorts; deterministic.
pub(crate) fn canonicalize_adjacency(num_vertices: usize, edges: Vec<Edge>) -> Vec<Edge> {
    let mut degree = vec![0usize; num_vertices + 1];
    for e in &edges {
        degree[e.src as usize + 1] += 1;
    }
    for i in 1..=num_vertices {
        degree[i] += degree[i - 1];
    }
    let mut cursor = degree.clone();
    let mut out = vec![Edge::new(0, 0); edges.len()];
    for e in edges {
        out[cursor[e.src as usize]] = e;
        cursor[e.src as usize] += 1;
    }
    for v in 0..num_vertices {
        out[degree[v]..degree[v + 1]].sort_unstable_by_key(|e| (e.dst, e.weight));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_parallel_is_bit_identical_to_serial() {
        // More vertices than one chunk so the merge actually matters.
        let v = CHUNK_VERTICES * 3 + 123;
        let serial = power_law_capped_chunked(v, 80_000, 0.8, 0.01, 42, false);
        let parallel = power_law_capped_chunked(v, 80_000, 0.8, 0.01, 42, true);
        assert_eq!(serial.len(), 80_000);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn rmat_parallel_is_bit_identical_to_serial() {
        let e = CHUNK_EDGES * 2 + 777;
        let serial = rmat_folded_chunked(5000, e, 0.57, 0.19, 0.19, 24, 7, false);
        let parallel = rmat_folded_chunked(5000, e, 0.57, 0.19, 0.19, 24, 7, true);
        assert_eq!(serial.len(), e);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn power_law_counts_are_exact_and_seeded() {
        let a = power_law_capped_chunked(1000, 12_345, 0.9, 0.02, 5, true);
        let b = power_law_capped_chunked(1000, 12_345, 0.9, 0.02, 5, true);
        let c = power_law_capped_chunked(1000, 12_345, 0.9, 0.02, 6, true);
        assert_eq!(a.len(), 12_345);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|e| (e.dst as usize) < 1000 && e.src != e.dst));
    }

    #[test]
    fn power_law_adjacency_is_sorted_and_skewed() {
        let edges = power_law_capped_chunked(2000, 20_000, 0.8, 1.0, 11, true);
        let g = crate::Csr::from_edges(2000, &edges);
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] <= w[1]), "vertex {v} unsorted");
        }
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg > 40, "expected a hub, max degree {max_deg}");
        let low = g.vertices().filter(|&v| g.out_degree(v) <= 10).count();
        assert!(low > 1000);
    }

    #[test]
    fn bucket_table_matches_full_binary_search() {
        // An adversarially lumpy CDF: long flats and sharp jumps.
        let mut cdf = Vec::new();
        let mut acc = 0.0;
        for i in 0..5000 {
            acc += if i % 97 == 0 { 0.9 } else { 0.001 };
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        let table = RankTable::build(&cdf);
        let mut rng = SplitMix64::stream(99, 1, 0);
        for _ in 0..20_000 {
            let r = rng.next_f64();
            assert_eq!(table.rank_of(&cdf, r), cdf.partition_point(|&c| c < r));
        }
        // Boundary draws.
        for r in [0.0, 0.5, 1.0 - f64::EPSILON] {
            assert_eq!(table.rank_of(&cdf, r), cdf.partition_point(|&c| c < r));
        }
    }

    #[test]
    fn canonicalize_groups_and_sorts() {
        let edges = vec![
            Edge::weighted(2, 9, 1),
            Edge::weighted(0, 5, 2),
            Edge::weighted(2, 3, 3),
            Edge::weighted(0, 1, 4),
            Edge::weighted(2, 3, 0),
        ];
        let canon = canonicalize_adjacency(10, edges);
        assert_eq!(
            canon,
            vec![
                Edge::weighted(0, 1, 4),
                Edge::weighted(0, 5, 2),
                Edge::weighted(2, 3, 0),
                Edge::weighted(2, 3, 3),
                Edge::weighted(2, 9, 1),
            ]
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(power_law_capped_chunked(0, 10, 1.0, 1.0, 0, true).is_empty());
        assert!(power_law_capped_chunked(10, 0, 1.0, 1.0, 0, true).is_empty());
        assert!(rmat_folded_chunked(0, 10, 0.5, 0.2, 0.2, 8, 0, true).is_empty());
        assert!(canonicalize_adjacency(0, Vec::new()).is_empty());
    }
}
