//! Cycle-level on-chip interconnect simulators (mesh, crossbar, Benes).
//!
//! Implemented in the modules below; see crate docs in each. The mesh
//! additionally supports injected link faults ([`LinkFault`]) for
//! robustness testing.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod butterfly;
pub mod crossbar;
pub mod mesh;
pub mod stats;

pub use butterfly::{BflyPacket, Butterfly};
pub use crossbar::{Crossbar, CrossbarKind};
pub use mesh::{LinkFault, LinkLoad, Mesh, MeshConfig, Packet};
pub use stats::NocStats;
