//! Cycle-level on-chip interconnect simulators (mesh, crossbar, Benes).
//!
//! Implemented in the modules below; see crate docs in each.

pub mod butterfly;
pub mod crossbar;
pub mod mesh;
pub mod stats;

pub use butterfly::{BflyPacket, Butterfly};
pub use crossbar::{Crossbar, CrossbarKind};
pub use mesh::{Mesh, MeshConfig, Packet};
pub use stats::NocStats;
