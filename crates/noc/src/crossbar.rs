//! Cycle-level crossbar switch with virtual output queues (VOQ).
//!
//! This is the centralized interconnect of Figure 3(b): every input holds
//! one virtual queue per output, and per cycle each output port grants one
//! input via round-robin arbitration. The O(N²) hardware cost of this
//! structure is modelled in `scalagraph-hwmodel`; this module models its
//! *behaviour* (it is behaviourally ideal — single-cycle any-to-any — which
//! is exactly why existing accelerators use it, Section II-B).
//!
//! The multi-stage variant models GraphPulse/Chronos-style port
//! multiplexing: `mux` inputs share one physical crossbar port, so a group
//! of inputs can collectively advance only one packet per cycle.

use crate::stats::NocStats;
use std::collections::VecDeque;

/// Crossbar flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossbarKind {
    /// Every input has a dedicated port (radix = number of inputs).
    Full,
    /// `mux` inputs share one physical port (radix = inputs / mux), the
    /// hardware-reduction technique of GraphPulse (MICRO'20) and Chronos
    /// (ASPLOS'20).
    MultiStage {
        /// Inputs multiplexed onto one physical port.
        mux: usize,
    },
}

/// A packet traversing the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XbarPacket {
    /// Output port (memory partition) index.
    pub dst: usize,
    /// Opaque payload.
    pub payload: u64,
    /// Injection cycle for latency accounting.
    pub inject_cycle: u64,
}

/// A clocked crossbar with per-input VOQs.
///
/// # Example
///
/// ```
/// use scalagraph_noc::{Crossbar, CrossbarKind};
///
/// let mut xbar = Crossbar::new(4, 4, CrossbarKind::Full);
/// xbar.try_inject(0, 3, 7);
/// xbar.step();
/// assert_eq!(xbar.pop_delivered(3).unwrap().payload, 7);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    inputs: usize,
    outputs: usize,
    kind: CrossbarKind,
    // voq[input][output]
    voq: Vec<Vec<VecDeque<XbarPacket>>>,
    delivered: Vec<VecDeque<XbarPacket>>,
    // Round-robin pointer per output.
    rr: Vec<usize>,
    // Round-robin pointer per mux group (multi-stage only).
    group_rr: Vec<usize>,
    voq_capacity: usize,
    stats: NocStats,
    now: u64,
}

impl Crossbar {
    /// Creates an `inputs × outputs` crossbar.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, or if `MultiStage { mux: 0 }`.
    pub fn new(inputs: usize, outputs: usize, kind: CrossbarKind) -> Self {
        assert!(inputs > 0 && outputs > 0, "crossbar must be non-empty");
        if let CrossbarKind::MultiStage { mux } = kind {
            assert!(mux > 0, "mux factor must be positive");
        }
        let groups = match kind {
            CrossbarKind::Full => inputs,
            CrossbarKind::MultiStage { mux } => inputs.div_ceil(mux),
        };
        Crossbar {
            inputs,
            outputs,
            kind,
            voq: vec![vec![VecDeque::new(); outputs]; inputs],
            delivered: vec![VecDeque::new(); outputs],
            rr: vec![0; outputs],
            group_rr: vec![0; groups],
            voq_capacity: 4,
            stats: NocStats::default(),
            now: 0,
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.outputs
    }

    /// The crossbar flavor.
    pub fn kind(&self) -> CrossbarKind {
        self.kind
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Enqueues a packet from `input` to `output`. Returns `false` if the
    /// VOQ is full.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` is out of range.
    pub fn try_inject(&mut self, input: usize, output: usize, payload: u64) -> bool {
        assert!(input < self.inputs, "input out of range");
        assert!(output < self.outputs, "output out of range");
        let q = &mut self.voq[input][output];
        if q.len() >= self.voq_capacity {
            return false;
        }
        q.push_back(XbarPacket {
            dst: output,
            payload,
            inject_cycle: self.now,
        });
        self.stats.packets_injected += 1;
        true
    }

    /// Whether `input` has room for another packet to `output`.
    pub fn can_inject(&self, input: usize, output: usize) -> bool {
        self.voq[input][output].len() < self.voq_capacity
    }

    fn group_of(&self, input: usize) -> usize {
        match self.kind {
            CrossbarKind::Full => input,
            CrossbarKind::MultiStage { mux } => input / mux,
        }
    }

    fn group_members(&self, group: usize) -> std::ops::Range<usize> {
        match self.kind {
            CrossbarKind::Full => group..group + 1,
            CrossbarKind::MultiStage { mux } => {
                let start = group * mux;
                start..(start + mux).min(self.inputs)
            }
        }
    }

    /// Advances by one cycle: each output grants one *physical port*
    /// (input, or mux group) round-robin; in the multi-stage flavor a group
    /// additionally advances only one packet per cycle across all outputs.
    pub fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        let groups = self.group_rr.len();
        // In multi-stage mode a group may win at most one output this cycle.
        let mut group_used = vec![false; groups];

        for out in 0..self.outputs {
            let start = self.rr[out];
            let mut winner: Option<usize> = None; // input index
            let mut contenders = 0usize;
            for k in 0..groups {
                let g = (start + k) % groups;
                // Within the group, pick round-robin among members with a
                // non-empty VOQ for this output.
                let members: Vec<usize> = self.group_members(g).collect();
                let gstart = self.group_rr[g];
                let mut member_hit = None;
                for j in 0..members.len() {
                    let input = members[(gstart + j) % members.len()];
                    if !self.voq[input][out].is_empty() {
                        member_hit = Some(input);
                        break;
                    }
                }
                if let Some(input) = member_hit {
                    contenders += 1;
                    if winner.is_none()
                        && !(matches!(self.kind, CrossbarKind::MultiStage { .. }) && group_used[g])
                    {
                        winner = Some(input);
                        group_used[g] = true;
                        self.group_rr[g] = (input - members[0] + 1) % members.len();
                    }
                }
            }
            if let Some(input) = winner {
                let Some(pkt) = self.voq[input][out].pop_front() else {
                    debug_assert!(false, "winner must hold a queued packet");
                    continue;
                };
                self.stats.flit_hops += 1;
                self.stats.packets_delivered += 1;
                self.stats.total_latency_cycles += self.now - pkt.inject_cycle;
                self.delivered[out].push_back(pkt);
                self.rr[out] = (self.group_of(input) + 1) % groups;
                if contenders > 1 {
                    self.stats.conflict_cycles += (contenders - 1) as u64;
                }
            }
        }
    }

    /// Pops the next packet delivered at `output`.
    pub fn pop_delivered(&mut self, output: usize) -> Option<XbarPacket> {
        self.delivered[output].pop_front()
    }

    /// Whether all VOQs are drained (unconsumed deliveries ignored).
    pub fn in_flight_empty(&self) -> bool {
        self.voq
            .iter()
            .all(|per_in| per_in.iter().all(VecDeque::is_empty))
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_one_cycle() {
        let mut x = Crossbar::new(2, 2, CrossbarKind::Full);
        assert!(x.try_inject(0, 1, 42));
        x.step();
        let p = x.pop_delivered(1).unwrap();
        assert_eq!(p.payload, 42);
        assert_eq!(x.stats().avg_latency(), 1.0);
    }

    #[test]
    fn parallel_transfers_in_one_cycle() {
        // Distinct outputs transfer simultaneously: the crossbar's defining
        // property.
        let mut x = Crossbar::new(4, 4, CrossbarKind::Full);
        for i in 0..4 {
            x.try_inject(i, i, i as u64);
        }
        x.step();
        for i in 0..4 {
            assert_eq!(x.pop_delivered(i).unwrap().payload, i as u64);
        }
    }

    #[test]
    fn output_conflict_serializes_fairly() {
        let mut x = Crossbar::new(3, 1, CrossbarKind::Full);
        for i in 0..3 {
            x.try_inject(i, 0, i as u64);
        }
        let mut order = Vec::new();
        for _ in 0..3 {
            x.step();
            order.push(x.pop_delivered(0).unwrap().payload);
        }
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert!(x.stats().conflict_cycles > 0);
    }

    #[test]
    fn round_robin_rotates_across_cycles() {
        let mut x = Crossbar::new(2, 1, CrossbarKind::Full);
        // Keep both inputs saturated; deliveries must alternate.
        let mut got = Vec::new();
        for _ in 0..6 {
            let _ = x.try_inject(0, 0, 100);
            let _ = x.try_inject(1, 0, 200);
            x.step();
            got.push(x.pop_delivered(0).unwrap().payload);
        }
        let alternations = got.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(alternations >= 4, "round robin must alternate: {got:?}");
    }

    #[test]
    fn voq_backpressure() {
        let mut x = Crossbar::new(1, 2, CrossbarKind::Full);
        for _ in 0..4 {
            assert!(x.try_inject(0, 0, 0));
        }
        assert!(!x.try_inject(0, 0, 0));
        assert!(x.can_inject(0, 1), "other VOQ unaffected");
    }

    #[test]
    fn multistage_group_advances_one_per_cycle() {
        // 4 inputs muxed 2:1 -> 2 physical ports. All four inputs target
        // distinct outputs; only 2 packets may move per cycle.
        let mut x = Crossbar::new(4, 4, CrossbarKind::MultiStage { mux: 2 });
        for i in 0..4 {
            x.try_inject(i, i, i as u64);
        }
        x.step();
        let first: usize = (0..4).filter_map(|o| x.pop_delivered(o)).count();
        assert_eq!(first, 2, "one packet per mux group per cycle");
        x.step();
        let second: usize = (0..4).filter_map(|o| x.pop_delivered(o)).count();
        assert_eq!(second, 2);
    }

    #[test]
    fn multistage_drains_everything() {
        let mut x = Crossbar::new(8, 8, CrossbarKind::MultiStage { mux: 4 });
        let mut injected = 0u64;
        for i in 0..8 {
            for o in 0..3 {
                if x.try_inject(i, o, injected) {
                    injected += 1;
                }
            }
        }
        for _ in 0..100 {
            x.step();
        }
        assert!(x.in_flight_empty());
        assert_eq!(x.stats().packets_delivered, injected);
    }

    #[test]
    #[should_panic(expected = "output out of range")]
    fn inject_validates_ports() {
        let mut x = Crossbar::new(2, 2, CrossbarKind::Full);
        let _ = x.try_inject(0, 5, 0);
    }
}
