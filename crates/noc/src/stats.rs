//! Traffic statistics shared by the interconnect simulators.

/// Cumulative counters for an interconnect simulation.
///
/// "On-chip communications" in the paper (Figures 6, 17, 18) is "the total
/// amount of traffic injected into the on-chip network" — link traversals —
/// which is [`NocStats::flit_hops`] here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Packets accepted into the network.
    pub packets_injected: u64,
    /// Packets handed to their destination's ejection queue.
    pub packets_delivered: u64,
    /// Total link traversals (one per packet per hop, ejection included).
    pub flit_hops: u64,
    /// Sum over delivered packets of (delivery cycle − injection cycle).
    pub total_latency_cycles: u64,
    /// Cycles in which a head-of-queue packet lost arbitration or was
    /// blocked by back-pressure (a routing conflict in the paper's terms).
    pub conflict_cycles: u64,
    /// Packets discarded by an injected lossy-link fault.
    pub packets_dropped: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl NocStats {
    /// Mean packet latency in cycles over delivered packets.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.packets_delivered as f64
        }
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.flit_hops as f64 / self.packets_delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_division_by_zero() {
        let s = NocStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = NocStats {
            packets_delivered: 4,
            total_latency_cycles: 20,
            flit_hops: 12,
            ..Default::default()
        };
        assert_eq!(s.avg_latency(), 5.0);
        assert_eq!(s.avg_hops(), 3.0);
    }
}
