//! Cycle-level 2D-mesh network-on-chip with dimension-ordered (XY) routing.
//!
//! This is the base NoC of ScalaGraph (Section III-A): every PE carries a
//! routing unit connected to its four mesh neighbors. Routers are
//! input-buffered with one-packet-per-output-port switching and round-robin
//! arbitration; packets are single-flit (a vertex update is an 8-byte
//! id+value pair, well within one link width).

use crate::stats::NocStats;
use std::collections::{HashMap, VecDeque};

/// A single-flit packet carrying an opaque payload to a destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Destination node index (`row * cols + col`).
    pub dst: usize,
    /// Opaque payload (the simulator packs a vertex update here).
    pub payload: u64,
    /// Cycle the packet was injected, for latency accounting.
    pub inject_cycle: u64,
}

/// Mesh dimensions and buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Number of router rows.
    pub rows: usize,
    /// Number of router columns.
    pub cols: usize,
    /// Capacity of each router input queue, in packets.
    pub input_queue_capacity: usize,
    /// Torus mode: wraparound links in both dimensions, shortest-way ring
    /// routing, and bubble flow control — a packet entering a ring (from
    /// the local port, or turning between dimensions) must leave one free
    /// slot in the downstream queue, which breaks the cyclic buffer
    /// dependency that would otherwise deadlock a wrapped ring.
    pub wraparound: bool,
}

impl MeshConfig {
    /// A square or rectangular mesh with the default queue depth (4, a
    /// typical FPGA NoC input FIFO).
    pub fn new(rows: usize, cols: usize) -> Self {
        MeshConfig {
            rows,
            cols,
            input_queue_capacity: 4,
            wraparound: false,
        }
    }

    /// A torus: the same grid with wraparound links.
    pub fn torus(rows: usize, cols: usize) -> Self {
        MeshConfig {
            wraparound: true,
            ..Self::new(rows, cols)
        }
    }

    /// Number of router nodes.
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }
}

/// Input ports of a router. `Local` is the injection port.
const PORT_LOCAL: usize = 0;
const PORT_NORTH: usize = 1; // from the router above (row - 1)
const PORT_SOUTH: usize = 2; // from the router below (row + 1)
const PORT_WEST: usize = 3; // from the router left (col - 1)
const PORT_EAST: usize = 4; // from the router right (col + 1)
const NUM_PORTS: usize = 5;

/// Output directions a packet may take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Eject,
    North, // towards row - 1
    South, // towards row + 1
    West,  // towards col - 1
    East,  // towards col + 1
}

const NUM_DIRS: usize = 5;

fn dir_index(d: Dir) -> usize {
    match d {
        Dir::Eject => 0,
        Dir::North => 1,
        Dir::South => 2,
        Dir::West => 3,
        Dir::East => 4,
    }
}

#[derive(Debug, Clone)]
struct Router {
    inputs: [VecDeque<Packet>; NUM_PORTS],
    ejected: VecDeque<Packet>,
    // Round-robin pointer per output direction.
    rr: [usize; NUM_DIRS],
}

impl Router {
    fn new() -> Self {
        Router {
            inputs: Default::default(),
            ejected: VecDeque::new(),
            rr: [0; NUM_DIRS],
        }
    }

    fn occupancy(&self, port: usize) -> usize {
        self.inputs[port].len()
    }
}

/// A cycle-stepped 2D-mesh NoC.
///
/// # Example
///
/// ```
/// use scalagraph_noc::{Mesh, MeshConfig, Packet};
///
/// let mut mesh = Mesh::new(MeshConfig::new(4, 4));
/// mesh.try_inject(0, Packet { dst: 15, payload: 1, inject_cycle: 0 });
/// for _ in 0..20 {
///     mesh.step();
/// }
/// assert_eq!(mesh.pop_delivered(15).unwrap().payload, 1);
/// ```
/// An injected fault on one directed mesh link (fault-injection testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The link carries nothing: packets heading across it stay queued
    /// upstream (zero credit).
    Down,
    /// The link silently discards one packet in `one_in` (`one_in <= 1`
    /// drops every packet); survivors cross normally.
    Lossy {
        /// Drop one packet in this many.
        one_in: u32,
    },
}

/// Cumulative traffic of one directed mesh link, for utilization heatmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkLoad {
    /// Source router of the directed link.
    pub from: usize,
    /// Destination router.
    pub to: usize,
    /// Packets that crossed the link (including ones a lossy fault then
    /// discarded — they still occupied the link).
    pub traversals: u64,
    /// Cycles the link wanted to carry a packet but could not (downstream
    /// queue full, bubble reserved, or link downed).
    pub blocked_cycles: u64,
}

#[derive(Debug, Clone)]
pub struct Mesh {
    config: MeshConfig,
    routers: Vec<Router>,
    stats: NocStats,
    now: u64,
    /// Injected faults keyed by directed link `(from_node, to_node)`.
    link_faults: HashMap<(usize, usize), LinkFault>,
    /// Xorshift state for lossy-link decisions (deterministic).
    fault_rng: u64,
    /// Cumulative traversals per directed link, `node * 4 + (dir - 1)`.
    link_hops: Vec<u64>,
    /// Cycles each directed link had a contender but granted nothing.
    link_blocked: Vec<u64>,
}

impl Mesh {
    /// Creates a mesh NoC.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(config: MeshConfig) -> Self {
        assert!(config.rows > 0 && config.cols > 0, "mesh must be non-empty");
        assert!(config.input_queue_capacity > 0);
        Mesh {
            routers: (0..config.nodes()).map(|_| Router::new()).collect(),
            stats: NocStats::default(),
            now: 0,
            link_faults: HashMap::new(),
            fault_rng: 0x9e3779b97f4a7c15,
            link_hops: vec![0; config.nodes() * 4],
            link_blocked: vec![0; config.nodes() * 4],
            config,
        }
    }

    /// Installs (or with `None` clears) a fault on the directed link from
    /// `from` to its neighbor `to`. Faulting a non-adjacent pair is allowed
    /// but has no effect — no packet ever crosses such a link.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn set_link_fault(&mut self, from: usize, to: usize, fault: Option<LinkFault>) {
        assert!(from < self.config.nodes(), "fault source out of range");
        assert!(to < self.config.nodes(), "fault target out of range");
        match fault {
            Some(f) => {
                self.link_faults.insert((from, to), f);
            }
            None => {
                self.link_faults.remove(&(from, to));
            }
        }
    }

    /// Re-seeds the deterministic lossy-link stream.
    pub fn seed_faults(&mut self, seed: u64) {
        // Zero would freeze the xorshift stream.
        self.fault_rng = seed | 1;
    }

    fn fault_hits(&mut self, one_in: u32) -> bool {
        if one_in <= 1 {
            return true;
        }
        let mut x = self.fault_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.fault_rng = x;
        x.is_multiple_of(one_in as u64)
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Injects `packet` at `node`'s local port. Returns `false` when the
    /// local input queue is full (caller retries next cycle).
    ///
    /// # Panics
    ///
    /// Panics if `node` or `packet.dst` is out of range.
    pub fn try_inject(&mut self, node: usize, packet: Packet) -> bool {
        assert!(node < self.config.nodes(), "inject node out of range");
        assert!(packet.dst < self.config.nodes(), "dst out of range");
        let r = &mut self.routers[node];
        if r.inputs[PORT_LOCAL].len() >= self.config.input_queue_capacity {
            return false;
        }
        r.inputs[PORT_LOCAL].push_back(packet);
        self.stats.packets_injected += 1;
        true
    }

    /// Whether `node` can accept an injection this cycle.
    pub fn can_inject(&self, node: usize) -> bool {
        self.routers[node].inputs[PORT_LOCAL].len() < self.config.input_queue_capacity
    }

    fn route(&self, node: usize, dst: usize) -> Dir {
        let cols = self.config.cols;
        let rows = self.config.rows;
        let (r, c) = (node / cols, node % cols);
        let (dr, dc) = (dst / cols, dst % cols);
        if self.config.wraparound {
            // Shortest-way ring routing, column dimension first.
            if dc != c {
                let fwd = (dc + cols - c) % cols; // hops going east
                return if fwd <= cols - fwd {
                    Dir::East
                } else {
                    Dir::West
                };
            }
            if dr != r {
                let fwd = (dr + rows - r) % rows; // hops going south
                return if fwd <= rows - fwd {
                    Dir::South
                } else {
                    Dir::North
                };
            }
            return Dir::Eject;
        }
        // XY routing: fix the column (X) first, then the row (Y).
        if dc > c {
            Dir::East
        } else if dc < c {
            Dir::West
        } else if dr > r {
            Dir::South
        } else if dr < r {
            Dir::North
        } else {
            Dir::Eject
        }
    }

    fn neighbor(&self, node: usize, d: Dir) -> (usize, usize) {
        // Returns (neighbor node, the input port on the neighbor we feed).
        let cols = self.config.cols;
        let rows = self.config.rows;
        let (r, c) = (node / cols, node % cols);
        let wrap = self.config.wraparound;
        let at = |r: usize, c: usize| r * cols + c;
        match d {
            Dir::North => {
                let nr = if r == 0 {
                    debug_assert!(wrap, "north off the edge without wraparound");
                    rows - 1
                } else {
                    r - 1
                };
                (at(nr, c), PORT_SOUTH)
            }
            Dir::South => {
                let nr = if r + 1 == rows {
                    debug_assert!(wrap, "south off the edge without wraparound");
                    0
                } else {
                    r + 1
                };
                (at(nr, c), PORT_NORTH)
            }
            Dir::West => {
                let nc = if c == 0 {
                    debug_assert!(wrap, "west off the edge without wraparound");
                    cols - 1
                } else {
                    c - 1
                };
                (at(r, nc), PORT_EAST)
            }
            Dir::East => {
                let nc = if c + 1 == cols {
                    debug_assert!(wrap, "east off the edge without wraparound");
                    0
                } else {
                    c + 1
                };
                (at(r, nc), PORT_WEST)
            }
            Dir::Eject => unreachable!("eject has no neighbor"),
        }
    }

    /// Advances the network by one cycle: every router forwards at most one
    /// packet per output direction, chosen round-robin over its input ports.
    pub fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        let nodes = self.config.nodes();

        // Phase 1: arbitration. Decide, per router and output direction,
        // which input port wins; record moves without mutating queues so a
        // packet cannot traverse two links in one cycle.
        // A move is (src_node, src_port, dir).
        let mut moves: Vec<(usize, usize, Dir)> = Vec::new();
        // Free slots in each (node, port) input queue at cycle start.
        let mut free: Vec<[usize; NUM_PORTS]> = self
            .routers
            .iter()
            .map(|r| {
                let mut f = [0; NUM_PORTS];
                for (p, slot) in f.iter_mut().enumerate() {
                    *slot = self.config.input_queue_capacity - r.occupancy(p);
                }
                f
            })
            .collect();

        for node in 0..nodes {
            // Which direction does each input port's head packet want?
            let wants: Vec<Option<Dir>> = (0..NUM_PORTS)
                .map(|p| {
                    self.routers[node].inputs[p]
                        .front()
                        .map(|pkt| self.route(node, pkt.dst))
                })
                .collect();
            for dir in [Dir::Eject, Dir::North, Dir::South, Dir::West, Dir::East] {
                let di = dir_index(dir);
                let start = self.routers[node].rr[di];
                // Grant the first contender (round-robin order) that can
                // actually move: a contender blocked by downstream space
                // must not starve the others — on a torus, a bubble-blocked
                // ring entry that permanently outranked the continuing
                // traffic would deadlock the ring.
                let mut contenders = 0usize;
                let mut granted = false;
                for k in 0..NUM_PORTS {
                    let p = (start + k) % NUM_PORTS;
                    if wants[p] != Some(dir) {
                        continue;
                    }
                    contenders += 1;
                    if granted {
                        continue;
                    }
                    // Downstream space (eject queues are unbounded: the
                    // consumer drains them every cycle). On a torus,
                    // bubble flow control: packets *entering* a ring (from
                    // the local port or turning dimensions) must leave one
                    // slot free; packets continuing along their ring may
                    // take the last slot.
                    let ok = if dir == Dir::Eject {
                        true
                    } else {
                        let continuing = match dir {
                            Dir::North | Dir::South => p == PORT_NORTH || p == PORT_SOUTH,
                            Dir::East | Dir::West => p == PORT_EAST || p == PORT_WEST,
                            Dir::Eject => unreachable!(),
                        };
                        let needed = if self.config.wraparound && !continuing {
                            2
                        } else {
                            1
                        };
                        let (n, port) = self.neighbor(node, dir);
                        if matches!(self.link_faults.get(&(node, n)), Some(LinkFault::Down)) {
                            // A downed link grants nothing; the contender
                            // counts as blocked below.
                            false
                        } else if free[n][port] >= needed {
                            free[n][port] -= 1;
                            true
                        } else {
                            false
                        }
                    };
                    if ok {
                        moves.push((node, p, dir));
                        self.routers[node].rr[di] = (p + 1) % NUM_PORTS;
                        granted = true;
                    }
                }
                if contenders > 1 || (contenders == 1 && !granted) {
                    self.stats.conflict_cycles += (contenders - usize::from(granted)) as u64;
                }
                if dir != Dir::Eject && contenders > 0 && !granted {
                    self.link_blocked[node * 4 + di - 1] += 1;
                }
            }
        }

        // Phase 2: apply the moves.
        for (node, port, dir) in moves {
            let Some(pkt) = self.routers[node].inputs[port].pop_front() else {
                debug_assert!(false, "granted move from an empty input queue");
                continue;
            };
            self.stats.flit_hops += 1;
            match dir {
                Dir::Eject => {
                    self.stats.packets_delivered += 1;
                    self.stats.total_latency_cycles += self.now - pkt.inject_cycle;
                    self.routers[node].ejected.push_back(pkt);
                }
                _ => {
                    let (n, in_port) = self.neighbor(node, dir);
                    self.link_hops[node * 4 + dir_index(dir) - 1] += 1;
                    if !self.link_faults.is_empty() {
                        if let Some(&LinkFault::Lossy { one_in }) = self.link_faults.get(&(node, n))
                        {
                            if self.fault_hits(one_in) {
                                self.stats.packets_dropped += 1;
                                continue;
                            }
                        }
                    }
                    self.routers[n].inputs[in_port].push_back(pkt);
                }
            }
        }
    }

    /// Pops the next packet delivered at `node`, if any.
    pub fn pop_delivered(&mut self, node: usize) -> Option<Packet> {
        self.routers[node].ejected.pop_front()
    }

    /// Whether all router queues are empty (undelivered ejections count as
    /// non-idle).
    pub fn is_idle(&self) -> bool {
        self.routers
            .iter()
            .all(|r| r.inputs.iter().all(VecDeque::is_empty) && r.ejected.is_empty())
    }

    /// Whether all router pipelines are drained, ignoring unconsumed
    /// ejection queues.
    pub fn in_flight_empty(&self) -> bool {
        self.routers
            .iter()
            .all(|r| r.inputs.iter().all(VecDeque::is_empty))
    }

    /// The earliest future cycle at which [`step`](Self::step) could move
    /// a packet, or `None` once every router pipeline is drained. Routers
    /// have no internal timers — any queued packet is a candidate on the
    /// very next cycle — so this is `now + 1` or nothing. Undelivered
    /// ejections do not count: they wait on the consumer, not the clock.
    /// Event-driven simulators use this to post the mesh's next-activity
    /// cycle into their calendar.
    pub fn next_activity_cycle(&self) -> Option<u64> {
        if self.in_flight_empty() {
            None
        } else {
            Some(self.now + 1)
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Cumulative per-link traffic, one entry per directed link that ever
    /// carried or refused a packet, in node order.
    pub fn link_loads(&self) -> Vec<LinkLoad> {
        let dirs = [Dir::North, Dir::South, Dir::West, Dir::East];
        let mut loads = Vec::new();
        for node in 0..self.config.nodes() {
            for (k, &dir) in dirs.iter().enumerate() {
                let (traversals, blocked) = (
                    self.link_hops[node * 4 + k],
                    self.link_blocked[node * 4 + k],
                );
                if traversals == 0 && blocked == 0 {
                    continue;
                }
                // Only query the neighbor for links that saw traffic: edge
                // nodes of a non-wrapped mesh have no neighbor in every
                // direction, and such links can never be used or blocked.
                loads.push(LinkLoad {
                    from: node,
                    to: self.neighbor(node, dir).0,
                    traversals,
                    blocked_cycles: blocked,
                });
            }
        }
        loads
    }

    /// Hop distance between two nodes (plus one ejection hop): Manhattan
    /// on a mesh, shortest-way ring distance on a torus.
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        let cols = self.config.cols;
        let rows = self.config.rows;
        let (ar, ac) = (a / cols, a % cols);
        let (br, bc) = (b / cols, b % cols);
        if self.config.wraparound {
            let dc = ac.abs_diff(bc).min(cols - ac.abs_diff(bc));
            let dr = ar.abs_diff(br).min(rows - ar.abs_diff(br));
            dr + dc + 1
        } else {
            ar.abs_diff(br) + ac.abs_diff(bc) + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_delivered(mesh: &mut Mesh, node: usize, max_cycles: usize) -> Option<Packet> {
        for _ in 0..max_cycles {
            mesh.step();
            if let Some(p) = mesh.pop_delivered(node) {
                return Some(p);
            }
        }
        None
    }

    #[test]
    fn delivers_to_self_in_one_hop() {
        let mut m = Mesh::new(MeshConfig::new(2, 2));
        m.try_inject(
            3,
            Packet {
                dst: 3,
                payload: 9,
                inject_cycle: 0,
            },
        );
        let p = run_until_delivered(&mut m, 3, 5).unwrap();
        assert_eq!(p.payload, 9);
        assert_eq!(m.stats().flit_hops, 1);
    }

    #[test]
    fn xy_route_takes_manhattan_hops() {
        let mut m = Mesh::new(MeshConfig::new(4, 4));
        // 0 (0,0) -> 15 (3,3): 3 east + 3 south + eject = 7 hops.
        m.try_inject(
            0,
            Packet {
                dst: 15,
                payload: 1,
                inject_cycle: m.now(),
            },
        );
        let _ = run_until_delivered(&mut m, 15, 30).unwrap();
        assert_eq!(m.stats().flit_hops as usize, m.hop_distance(0, 15));
        assert_eq!(m.stats().avg_latency(), m.hop_distance(0, 15) as f64);
    }

    #[test]
    fn all_to_one_congestion_still_delivers_all() {
        let mut m = Mesh::new(MeshConfig::new(4, 4));
        let n = m.config().nodes();
        let mut pending: Vec<Packet> = (0..n)
            .map(|src| Packet {
                dst: 5,
                payload: src as u64,
                inject_cycle: 0,
            })
            .collect();
        let mut delivered = Vec::new();
        let mut srcs: Vec<usize> = (0..n).collect();
        for _ in 0..500 {
            let mut still = Vec::new();
            let mut still_src = Vec::new();
            for (pkt, src) in pending.drain(..).zip(srcs.drain(..)) {
                if !m.try_inject(src, pkt) {
                    still.push(pkt);
                    still_src.push(src);
                }
            }
            pending = still;
            srcs = still_src;
            m.step();
            while let Some(p) = m.pop_delivered(5) {
                delivered.push(p.payload);
            }
            if pending.is_empty() && m.in_flight_empty() {
                break;
            }
        }
        while let Some(p) = m.pop_delivered(5) {
            delivered.push(p.payload);
        }
        delivered.sort_unstable();
        assert_eq!(delivered, (0..n as u64).collect::<Vec<_>>());
        assert!(m.stats().conflict_cycles > 0, "hotspot must conflict");
    }

    #[test]
    fn exactly_once_delivery_random_traffic() {
        let mut m = Mesh::new(MeshConfig::new(4, 4));
        let n = m.config().nodes();
        // Deterministic pseudo-random pattern without pulling in rand.
        let mut to_send: Vec<(usize, Packet)> = (0..200u64)
            .map(|i| {
                let src = ((i * 7 + 3) % n as u64) as usize;
                let dst = ((i * 13 + 5) % n as u64) as usize;
                (
                    src,
                    Packet {
                        dst,
                        payload: i,
                        inject_cycle: 0,
                    },
                )
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..2000 {
            let mut rest = Vec::new();
            for (src, pkt) in to_send.drain(..) {
                if !m.try_inject(src, pkt) {
                    rest.push((src, pkt));
                }
            }
            to_send = rest;
            m.step();
            for node in 0..n {
                while let Some(p) = m.pop_delivered(node) {
                    assert_eq!(p.dst, node, "misdelivered packet");
                    got.push(p.payload);
                }
            }
            if to_send.is_empty() && m.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..200u64).collect::<Vec<_>>());
        assert_eq!(m.stats().packets_delivered, 200);
        assert_eq!(m.stats().packets_injected, 200);
    }

    #[test]
    fn back_pressure_on_local_port() {
        let mut m = Mesh::new(MeshConfig {
            input_queue_capacity: 2,
            ..MeshConfig::new(1, 2)
        });
        let pkt = Packet {
            dst: 1,
            payload: 0,
            inject_cycle: 0,
        };
        assert!(m.try_inject(0, pkt));
        assert!(m.try_inject(0, pkt));
        assert!(!m.try_inject(0, pkt), "queue of 2 must be full");
        assert!(!m.can_inject(0));
    }

    #[test]
    fn column_only_traffic_uses_vertical_links() {
        // Row-oriented mapping sends traffic only within a column; check a
        // pure column workload never crosses columns.
        let mut m = Mesh::new(MeshConfig::new(4, 4));
        for r in 0..4usize {
            m.try_inject(
                r * 4 + 2,
                Packet {
                    dst: ((r + 2) % 4) * 4 + 2,
                    payload: r as u64,
                    inject_cycle: 0,
                },
            );
        }
        for _ in 0..50 {
            m.step();
        }
        let expected: usize = (0..4usize)
            .map(|r| m.hop_distance(r * 4 + 2, ((r + 2) % 4) * 4 + 2))
            .sum();
        assert_eq!(m.stats().flit_hops as usize, expected);
        assert_eq!(m.stats().packets_delivered, 4);
    }

    #[test]
    fn one_packet_per_link_per_cycle() {
        // Two packets from the same node to the same direction serialize.
        let mut m = Mesh::new(MeshConfig::new(1, 3));
        for i in 0..2 {
            m.try_inject(
                0,
                Packet {
                    dst: 2,
                    payload: i,
                    inject_cycle: 0,
                },
            );
        }
        let mut arrival = Vec::new();
        for cycle in 1..=20u64 {
            m.step();
            while let Some(p) = m.pop_delivered(2) {
                arrival.push((cycle, p.payload));
            }
        }
        assert_eq!(arrival.len(), 2);
        assert_eq!(arrival[1].0 - arrival[0].0, 1, "must serialize on link");
    }

    #[test]
    fn torus_takes_the_short_way_around() {
        let mut m = Mesh::new(MeshConfig::torus(1, 8));
        // 0 -> 7 is 1 hop westward around the ring (+ eject).
        m.try_inject(
            0,
            Packet {
                dst: 7,
                payload: 1,
                inject_cycle: 0,
            },
        );
        let p = run_until_delivered(&mut m, 7, 10).unwrap();
        assert_eq!(p.payload, 1);
        assert_eq!(m.stats().flit_hops, 2, "wrap link + eject");
        assert_eq!(m.hop_distance(0, 7), 2);
    }

    #[test]
    fn torus_random_traffic_exactly_once() {
        let mut m = Mesh::new(MeshConfig::torus(4, 4));
        let n = 16;
        let mut to_send: Vec<(usize, Packet)> = (0..100u64)
            .map(|i| {
                (
                    (i as usize * 5 + 1) % n,
                    Packet {
                        dst: (i as usize * 11 + 3) % n,
                        payload: i,
                        inject_cycle: 0,
                    },
                )
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..2000 {
            to_send.retain(|&(src, pkt)| !m.try_inject(src, pkt));
            m.step();
            for node in 0..n {
                while let Some(p) = m.pop_delivered(node) {
                    assert_eq!(p.dst, node);
                    got.push(p.payload);
                }
            }
            if to_send.is_empty() && m.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn torus_shortens_average_distance() {
        let mesh = Mesh::new(MeshConfig::new(8, 8));
        let torus = Mesh::new(MeshConfig::torus(8, 8));
        let mut mesh_sum = 0usize;
        let mut torus_sum = 0usize;
        for a in 0..64 {
            for b in 0..64 {
                mesh_sum += mesh.hop_distance(a, b);
                torus_sum += torus.hop_distance(a, b);
            }
        }
        // 8x8: mesh averages ~2.63 hops per dimension, the torus exactly
        // 2; with the ejection hop the expected ratio is ~0.80.
        assert!(
            torus_sum * 100 < mesh_sum * 85,
            "torus {torus_sum} mesh {mesh_sum}"
        );
    }

    #[test]
    fn down_link_blocks_until_cleared() {
        let mut m = Mesh::new(MeshConfig::new(1, 2));
        m.set_link_fault(0, 1, Some(LinkFault::Down));
        m.try_inject(
            0,
            Packet {
                dst: 1,
                payload: 7,
                inject_cycle: 0,
            },
        );
        for _ in 0..50 {
            m.step();
        }
        assert!(
            m.pop_delivered(1).is_none(),
            "downed link must carry nothing"
        );
        assert!(!m.in_flight_empty(), "packet stays queued upstream");
        assert!(m.stats().conflict_cycles > 0);
        m.set_link_fault(0, 1, None);
        let p = run_until_delivered(&mut m, 1, 10).unwrap();
        assert_eq!(p.payload, 7);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let mut m = Mesh::new(MeshConfig::new(1, 2));
        m.set_link_fault(0, 1, Some(LinkFault::Lossy { one_in: 1 }));
        m.try_inject(
            0,
            Packet {
                dst: 1,
                payload: 1,
                inject_cycle: 0,
            },
        );
        for _ in 0..20 {
            m.step();
        }
        assert!(m.pop_delivered(1).is_none());
        assert_eq!(m.stats().packets_dropped, 1);
        assert!(m.in_flight_empty(), "the drop consumed the packet");
        // Faults only touch their own link: the reverse direction works.
        m.try_inject(
            1,
            Packet {
                dst: 0,
                payload: 2,
                inject_cycle: 0,
            },
        );
        let p = run_until_delivered(&mut m, 0, 10).unwrap();
        assert_eq!(p.payload, 2);
        assert_eq!(m.stats().packets_dropped, 1);
    }

    #[test]
    fn link_loads_track_traffic_and_blockage() {
        let mut m = Mesh::new(MeshConfig::new(1, 3));
        // 0 -> 2 crosses links 0->1 and 1->2 exactly once each.
        m.try_inject(
            0,
            Packet {
                dst: 2,
                payload: 1,
                inject_cycle: 0,
            },
        );
        for _ in 0..10 {
            m.step();
        }
        let loads = m.link_loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.contains(&LinkLoad {
            from: 0,
            to: 1,
            traversals: 1,
            blocked_cycles: 0
        }));
        assert!(loads.contains(&LinkLoad {
            from: 1,
            to: 2,
            traversals: 1,
            blocked_cycles: 0
        }));
        let total: u64 = loads.iter().map(|l| l.traversals).sum();
        // Every hop except the final ejection crossed a link.
        assert_eq!(total, m.stats().flit_hops - 1);

        // A downed link accrues blocked cycles instead of traversals.
        let mut m = Mesh::new(MeshConfig::new(1, 2));
        m.set_link_fault(0, 1, Some(LinkFault::Down));
        m.try_inject(
            0,
            Packet {
                dst: 1,
                payload: 2,
                inject_cycle: 0,
            },
        );
        for _ in 0..8 {
            m.step();
        }
        let loads = m.link_loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].from, 0);
        assert_eq!(loads[0].to, 1);
        assert_eq!(loads[0].traversals, 0);
        assert_eq!(loads[0].blocked_cycles, 8);
    }

    #[test]
    fn next_activity_tracks_in_flight_packets() {
        let mut m = Mesh::new(MeshConfig::new(2, 2));
        assert_eq!(m.next_activity_cycle(), None, "empty mesh never acts");
        m.try_inject(
            0,
            Packet {
                dst: 3,
                payload: 1,
                inject_cycle: 0,
            },
        );
        while m.next_activity_cycle().is_some() {
            assert_eq!(m.next_activity_cycle(), Some(m.now() + 1));
            m.step();
            assert!(m.now() < 20, "packet must drain");
        }
        // Delivered but unconsumed: the mesh itself has nothing left to do.
        assert!(!m.is_idle());
        assert_eq!(m.next_activity_cycle(), None);
        assert_eq!(m.pop_delivered(3).unwrap().payload, 1);
    }

    #[test]
    #[should_panic(expected = "dst out of range")]
    fn inject_rejects_bad_destination() {
        let mut m = Mesh::new(MeshConfig::new(2, 2));
        let _ = m.try_inject(
            0,
            Packet {
                dst: 99,
                payload: 0,
                inject_cycle: 0,
            },
        );
    }
}
