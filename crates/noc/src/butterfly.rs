//! Cycle-level multistage interconnection network (butterfly/omega).
//!
//! Benes and its relatives route N inputs to N outputs through
//! O(N log N) 2×2 switches — the middle ground between the crossbar's
//! O(N²) and the mesh's O(N) that Figure 8 evaluates for frequency. This
//! module provides the *behavioural* counterpart: an online
//! destination-tag-routed butterfly with `log2(N)` stages of N/2 switches,
//! each output port forwarding one packet per cycle with round-robin
//! arbitration and bounded per-switch input queues.
//!
//! Online destination-tag routing makes this an *omega-equivalent*
//! blocking network: unlike an offline-configured Benes it cannot realize
//! every permutation without conflicts, which is precisely the practical
//! behaviour of such NoCs in accelerators (packets contend at shared
//! internal links). The paper leaves "determining or even designing the
//! most appropriate NoC" as future work; the `ext_noc` experiment uses
//! this model alongside the mesh and crossbar to explore that question.

use crate::stats::NocStats;
use std::collections::VecDeque;

/// A packet traversing the butterfly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BflyPacket {
    /// Destination output port.
    pub dst: usize,
    /// Opaque payload.
    pub payload: u64,
    /// Injection cycle, for latency accounting.
    pub inject_cycle: u64,
}

/// One 2×2 switch: two input queues, round-robin priority.
#[derive(Debug, Clone, Default)]
struct Switch {
    inputs: [VecDeque<BflyPacket>; 2],
    rr: usize,
}

/// A cycle-stepped butterfly network with `ports` inputs/outputs (a power
/// of two) and `log2(ports)` stages.
///
/// # Example
///
/// ```
/// use scalagraph_noc::butterfly::{Butterfly, BflyPacket};
///
/// let mut net = Butterfly::new(8);
/// net.try_inject(0, BflyPacket { dst: 5, payload: 9, inject_cycle: 0 });
/// for _ in 0..10 {
///     net.step();
/// }
/// assert_eq!(net.pop_delivered(5).unwrap().payload, 9);
/// ```
#[derive(Debug, Clone)]
pub struct Butterfly {
    ports: usize,
    stages: usize,
    /// `switches[stage][i]` for `i < ports / 2`.
    switches: Vec<Vec<Switch>>,
    delivered: Vec<VecDeque<BflyPacket>>,
    queue_capacity: usize,
    stats: NocStats,
    now: u64,
}

impl Butterfly {
    /// Creates a butterfly with `ports` inputs/outputs.
    ///
    /// # Panics
    ///
    /// Panics unless `ports` is a power of two and at least 2.
    pub fn new(ports: usize) -> Self {
        assert!(
            ports >= 2 && ports.is_power_of_two(),
            "ports must be a power of two >= 2"
        );
        let stages = ports.trailing_zeros() as usize;
        Butterfly {
            ports,
            stages,
            switches: vec![vec![Switch::default(); ports / 2]; stages],
            delivered: vec![VecDeque::new(); ports],
            queue_capacity: 4,
            stats: NocStats::default(),
            now: 0,
        }
    }

    /// Number of input/output ports.
    pub fn num_ports(&self) -> usize {
        self.ports
    }

    /// Number of switch stages (`log2(ports)`).
    pub fn num_stages(&self) -> usize {
        self.stages
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// In a butterfly, the switch in `stage` that a packet occupying wire
    /// `wire` enters, and which of its two inputs it lands on.
    fn wire_to_switch(&self, stage: usize, wire: usize) -> (usize, usize) {
        // Stage s pairs wires differing in bit (stages - 1 - s).
        let bit = self.stages - 1 - stage;
        let mask = 1usize << bit;
        let low = wire & !mask;
        // Index switches by the wire with the pairing bit dropped.
        let idx = ((low >> (bit + 1)) << bit) | (low & (mask - 1));
        (idx, (wire >> bit) & 1)
    }

    /// Output wire a packet leaves switch `stage` on, given its destination.
    fn out_wire(&self, stage: usize, in_wire: usize, dst: usize) -> usize {
        let bit = self.stages - 1 - stage;
        let mask = 1usize << bit;
        // Destination-tag routing: set this wire bit to the destination's.
        (in_wire & !mask) | (dst & mask)
    }

    /// Injects `packet` on input `port`. Returns `false` when the first
    /// stage's queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `port` or `packet.dst` is out of range.
    pub fn try_inject(&mut self, port: usize, packet: BflyPacket) -> bool {
        assert!(port < self.ports, "input port out of range");
        assert!(packet.dst < self.ports, "destination out of range");
        let (idx, side) = self.wire_to_switch(0, port);
        let q = &mut self.switches[0][idx].inputs[side];
        if q.len() >= self.queue_capacity {
            return false;
        }
        q.push_back(packet);
        self.stats.packets_injected += 1;
        true
    }

    /// Whether input `port` can accept a packet this cycle.
    pub fn can_inject(&self, port: usize) -> bool {
        let (idx, side) = self.wire_to_switch(0, port);
        self.switches[0][idx].inputs[side].len() < self.queue_capacity
    }

    /// Advances one cycle: each switch forwards at most one packet per
    /// output wire, chosen round-robin between its two inputs.
    pub fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        // Process stages from last to first so a packet advances one stage
        // per cycle (moving into just-freed space is allowed; moving twice
        // is not, because later stages were already processed).
        for stage in (0..self.stages).rev() {
            for idx in 0..self.ports / 2 {
                // Determine, per output wire of this switch, the winning
                // input.
                let bit = self.stages - 1 - stage;
                let mask = 1usize << bit;
                let low_wire = {
                    // Reconstruct the two wires this switch connects.
                    let high = idx >> bit;
                    let low = idx & (mask - 1);
                    (high << (bit + 1)) | low
                };
                let wires = [low_wire, low_wire | mask];
                for &out_wire in &wires {
                    let start = self.switches[stage][idx].rr;
                    let mut winner: Option<usize> = None;
                    let mut contenders = 0;
                    for k in 0..2 {
                        let side = (start + k) % 2;
                        let in_wire = wires[side];
                        if let Some(pkt) = self.switches[stage][idx].inputs[side].front() {
                            if self.out_wire(stage, in_wire, pkt.dst) == out_wire {
                                contenders += 1;
                                if winner.is_none() {
                                    winner = Some(side);
                                }
                            }
                        }
                    }
                    let Some(side) = winner else { continue };
                    if contenders > 1 {
                        self.stats.conflict_cycles += 1;
                    }
                    // Check downstream space.
                    if stage + 1 < self.stages {
                        let (nidx, nside) = self.wire_to_switch(stage + 1, out_wire);
                        if self.switches[stage + 1][nidx].inputs[nside].len() >= self.queue_capacity
                        {
                            self.stats.conflict_cycles += 1;
                            continue;
                        }
                        let Some(pkt) = self.switches[stage][idx].inputs[side].pop_front() else {
                            debug_assert!(false, "winner must hold a queued packet");
                            continue;
                        };
                        self.switches[stage][idx].rr = (side + 1) % 2;
                        self.stats.flit_hops += 1;
                        self.switches[stage + 1][nidx].inputs[nside].push_back(pkt);
                    } else {
                        let Some(pkt) = self.switches[stage][idx].inputs[side].pop_front() else {
                            debug_assert!(false, "winner must hold a queued packet");
                            continue;
                        };
                        self.switches[stage][idx].rr = (side + 1) % 2;
                        self.stats.flit_hops += 1;
                        self.stats.packets_delivered += 1;
                        self.stats.total_latency_cycles += self.now - pkt.inject_cycle;
                        debug_assert_eq!(out_wire, pkt.dst);
                        self.delivered[out_wire].push_back(pkt);
                    }
                }
            }
        }
    }

    /// Pops the next packet delivered at output `port`.
    pub fn pop_delivered(&mut self, port: usize) -> Option<BflyPacket> {
        self.delivered[port].pop_front()
    }

    /// Whether all internal queues are empty.
    pub fn in_flight_empty(&self) -> bool {
        self.switches
            .iter()
            .all(|st| st.iter().all(|s| s.inputs.iter().all(VecDeque::is_empty)))
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(net: &mut Butterfly, expect: u64, max_cycles: usize) -> Vec<u64> {
        let mut got = Vec::new();
        for _ in 0..max_cycles {
            net.step();
            for p in 0..net.num_ports() {
                while let Some(pkt) = net.pop_delivered(p) {
                    assert_eq!(pkt.dst, p, "misrouted packet");
                    got.push(pkt.payload);
                }
            }
            if got.len() as u64 == expect && net.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        got
    }

    #[test]
    fn single_packet_takes_log_n_cycles() {
        let mut net = Butterfly::new(16);
        net.try_inject(
            3,
            BflyPacket {
                dst: 12,
                payload: 7,
                inject_cycle: 0,
            },
        );
        let got = drain_all(&mut net, 1, 20);
        assert_eq!(got, vec![7]);
        assert_eq!(net.stats().avg_latency(), 4.0, "16 ports = 4 stages");
        assert_eq!(net.stats().avg_hops(), 4.0);
    }

    #[test]
    fn identity_permutation_is_conflict_free() {
        let mut net = Butterfly::new(8);
        for p in 0..8 {
            net.try_inject(
                p,
                BflyPacket {
                    dst: p,
                    payload: p as u64,
                    inject_cycle: 0,
                },
            );
        }
        let got = drain_all(&mut net, 8, 20);
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
        assert_eq!(net.stats().conflict_cycles, 0, "identity must not conflict");
    }

    #[test]
    fn all_to_one_serializes_but_delivers() {
        let mut net = Butterfly::new(8);
        let mut pending: Vec<(usize, BflyPacket)> = (0..8)
            .map(|p| {
                (
                    p,
                    BflyPacket {
                        dst: 0,
                        payload: p as u64,
                        inject_cycle: 0,
                    },
                )
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..200 {
            pending.retain(|&(p, pkt)| !net.try_inject(p, pkt));
            net.step();
            while let Some(pkt) = net.pop_delivered(0) {
                got.push(pkt.payload);
            }
            if pending.is_empty() && net.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
        assert!(net.stats().conflict_cycles > 0);
    }

    #[test]
    fn random_traffic_exactly_once() {
        let mut net = Butterfly::new(32);
        let mut to_send: Vec<(usize, BflyPacket)> = (0..300u64)
            .map(|i| {
                (
                    (i as usize * 7 + 3) % 32,
                    BflyPacket {
                        dst: (i as usize * 13 + 5) % 32,
                        payload: i,
                        inject_cycle: 0,
                    },
                )
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..2000 {
            to_send.retain(|&(p, pkt)| !net.try_inject(p, pkt));
            net.step();
            for p in 0..32 {
                while let Some(pkt) = net.pop_delivered(p) {
                    assert_eq!(pkt.dst, p);
                    got.push(pkt.payload);
                }
            }
            if to_send.is_empty() && net.in_flight_empty() {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..300).collect::<Vec<u64>>());
    }

    #[test]
    fn back_pressure_on_injection() {
        let mut net = Butterfly::new(4);
        let pkt = BflyPacket {
            dst: 3,
            payload: 0,
            inject_cycle: 0,
        };
        for _ in 0..4 {
            assert!(net.try_inject(0, pkt));
        }
        assert!(!net.try_inject(0, pkt), "queue of 4 must be full");
        assert!(!net.can_inject(0));
        assert!(net.can_inject(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Butterfly::new(12);
    }
}
