//! Criterion benches for the hot-loop optimisations: simulator stepping
//! throughput with fast-forward on/off, and sweep fan-out at 1 vs N
//! threads. `cargo bench -p scalagraph-bench --bench hotloop`; CI runs the
//! same targets in `--quick` mode as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use scalagraph::{MemoryPreset, ScalaGraphConfig};
use scalagraph_bench::runners::{run_scalagraph, sweep_scalagraph_with};
use scalagraph_bench::workloads::{PreparedGraph, Workload};
use scalagraph_graph::{generators, Csr, Dataset};
use scalagraph_mem::HbmConfig;

fn rmat_prep() -> PreparedGraph {
    let graph = Csr::from_edges(2048, &generators::rmat(2048, 8192, 42));
    let root = Dataset::pick_root(&graph);
    PreparedGraph { graph, root }
}

fn latency_bound_config(fast_forward: bool) -> ScalaGraphConfig {
    let mut cfg = ScalaGraphConfig::with_pes(256);
    cfg.inter_phase_pipelining = false;
    let mut hbm = HbmConfig::u280(cfg.effective_clock_mhz() * 1e6);
    hbm.latency_cycles = 384;
    cfg.memory = MemoryPreset::Custom(hbm);
    cfg.fast_forward = fast_forward;
    cfg
}

fn bench_fast_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotloop_fast_forward");
    g.sample_size(10);
    let prep = rmat_prep();
    for (name, ff) in [("ff_off", false), ("ff_on", true)] {
        g.bench_function(name, |b| {
            let cfg = latency_bound_config(ff);
            b.iter(|| run_scalagraph(&prep, Workload::Bfs, cfg.clone()))
        });
    }
    g.finish();
}

fn bench_busy_steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotloop_steady_state");
    g.sample_size(10);
    let prep = rmat_prep();
    // Busy pipelined run: measures the slab/scratch hot path and confirms
    // the fast-forward activity gate costs nothing when never quiescent.
    for (name, ff) in [("busy_ff_off", false), ("busy_ff_on", true)] {
        g.bench_function(name, |b| {
            let mut cfg = ScalaGraphConfig::with_pes(128);
            cfg.fast_forward = ff;
            b.iter(|| run_scalagraph(&prep, Workload::PageRank, cfg.clone()))
        });
    }
    g.finish();
}

fn bench_sweep_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotloop_sweep_threads");
    g.sample_size(10);
    let prep = rmat_prep();
    let configs: Vec<(String, ScalaGraphConfig)> = (0..4)
        .map(|i| (format!("cfg{i}"), latency_bound_config(true)))
        .collect();
    for threads in [1usize, 4] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| sweep_scalagraph_with(threads, &prep, Workload::Bfs, configs.clone()))
        });
    }
    g.finish();
}

criterion_group!(
    hotloop,
    bench_fast_forward,
    bench_busy_steady_state,
    bench_sweep_threads
);
criterion_main!(hotloop);
