//! Criterion benches wrapping every paper experiment's kernel at a small,
//! statistically-repeatable scale. The experiment *binaries* print the
//! paper-style tables; these benches give robust timing for the same code
//! paths. One group per table/figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalagraph::{Mapping, MemoryPreset, ScalaGraphConfig};
use scalagraph_baselines::{GraphDyns, GraphDynsConfig, GunrockModel};
use scalagraph_bench::runners::{run_graphdyns, run_gunrock, run_scalagraph};
use scalagraph_bench::workloads::{prepare, PreparedGraph, Workload};
use scalagraph_graph::Dataset;
use scalagraph_hwmodel::{
    max_frequency_mhz, EnergyModel, InterconnectKind, ResourceModel, SystemKind,
};

/// Bench-scale divisor: small graphs so a full `cargo bench` stays in
/// minutes.
const SCALE: u64 = 16384;

fn small(dataset: Dataset, workload: Workload) -> PreparedGraph {
    prepare(dataset, workload, SCALE, 42)
}

fn bench_tables_1_3(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables_1_3_dataset_generation");
    g.sample_size(10);
    for d in [Dataset::Pokec, Dataset::Twitter] {
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, d| {
            b.iter(|| d.generate(SCALE, 42))
        });
    }
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_crossbar_effect");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::PageRank);
    for (name, with_xbar) in [("with_crossbar", true), ("without_crossbar", false)] {
        g.bench_function(name, |b| {
            let mut cfg = GraphDynsConfig::with_pes(64);
            cfg.with_crossbar = with_xbar;
            b.iter(|| run_graphdyns(&prep, Workload::PageRank, cfg))
        });
    }
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_naive_mesh");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::PageRank);
    g.bench_function("naive_mesh_som_noagg", |b| {
        let mut cfg = ScalaGraphConfig::with_pes(64);
        cfg.mapping = Mapping::SourceOriented;
        cfg.aggregation_registers = 0;
        b.iter(|| run_scalagraph(&prep, Workload::PageRank, cfg.clone()))
    });
    g.finish();
}

fn bench_fig8_table4_fig16(c: &mut Criterion) {
    let mut g = c.benchmark_group("hwmodel_queries");
    g.bench_function("fig8_frequency_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for pes in [32, 64, 128, 256, 512, 1024] {
                for kind in [
                    InterconnectKind::Crossbar,
                    InterconnectKind::Benes,
                    InterconnectKind::Mesh,
                ] {
                    acc += max_frequency_mhz(kind, pes).frequency_mhz().unwrap_or(0.0);
                }
            }
            acc
        })
    });
    g.bench_function("fig16_resource_model", |b| {
        let m = ResourceModel::u280();
        b.iter(|| {
            m.utilization(scalagraph_hwmodel::AcceleratorKind::ScalaGraph, 512)
                .lut
                + m.utilization(scalagraph_hwmodel::AcceleratorKind::GraphDyns, 512)
                    .lut
        })
    });
    g.bench_function("fig15_energy_model", |b| {
        let m = EnergyModel::u280();
        b.iter(|| m.energy_joules(SystemKind::ScalaGraph, 512, 1.0))
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_overall_throughput");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::Bfs);
    g.bench_function("scalagraph_512", |b| {
        b.iter(|| run_scalagraph(&prep, Workload::Bfs, ScalaGraphConfig::scalagraph_512()))
    });
    g.bench_function("scalagraph_128", |b| {
        b.iter(|| run_scalagraph(&prep, Workload::Bfs, ScalaGraphConfig::scalagraph_128()))
    });
    g.bench_function("graphdyns_128", |b| {
        b.iter(|| run_graphdyns(&prep, Workload::Bfs, GraphDynsConfig::graphdyns_128()))
    });
    g.bench_function("graphdyns_512", |b| {
        b.iter(|| run_graphdyns(&prep, Workload::Bfs, GraphDynsConfig::graphdyns_512()))
    });
    g.bench_function("gunrock_v100", |b| {
        b.iter(|| run_gunrock(&prep, Workload::Bfs, GunrockModel::v100()))
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_energy");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::PageRank);
    g.bench_function("sg512_run_plus_energy", |b| {
        let em = EnergyModel::u280();
        b.iter(|| {
            let m = run_scalagraph(
                &prep,
                Workload::PageRank,
                ScalaGraphConfig::scalagraph_512(),
            );
            em.energy_joules(SystemKind::ScalaGraph, 512, m.seconds)
        })
    });
    g.finish();
}

fn bench_fig17_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_mapping");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::PageRank);
    for mapping in Mapping::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(mapping), &mapping, |b, &m| {
            let mut cfg = ScalaGraphConfig::scalagraph_128();
            cfg.mapping = m;
            b.iter(|| run_scalagraph(&prep, Workload::PageRank, cfg.clone()))
        });
    }
    g.finish();
}

fn bench_fig18(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig18_aggregation");
    g.sample_size(10);
    let prep = small(Dataset::Orkut, Workload::PageRank);
    for regs in [0usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(regs), &regs, |b, &r| {
            let mut cfg = ScalaGraphConfig::scalagraph_128();
            cfg.aggregation_registers = r;
            b.iter(|| run_scalagraph(&prep, Workload::PageRank, cfg.clone()))
        });
    }
    g.finish();
}

fn bench_fig19(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19_load_balance");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::PageRank);
    for width in [1usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("degree_aware_width", width),
            &width,
            |b, &w| {
                let mut cfg = ScalaGraphConfig::scalagraph_128();
                cfg.max_scheduled_vertices = w;
                b.iter(|| run_scalagraph(&prep, Workload::PageRank, cfg.clone()))
            },
        );
    }
    let cc = small(Dataset::Pokec, Workload::Cc);
    for pipelined in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("inter_phase_pipelining", pipelined),
            &pipelined,
            |b, &p| {
                let mut cfg = ScalaGraphConfig::scalagraph_128();
                cfg.inter_phase_pipelining = p;
                b.iter(|| run_scalagraph(&cc, Workload::Cc, cfg.clone()))
            },
        );
    }
    g.finish();
}

fn bench_fig20(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_pe_utilization");
    g.sample_size(10);
    let prep = small(Dataset::LiveJournal, Workload::PageRank);
    g.bench_function("scalagraph_128_util", |b| {
        b.iter(|| {
            run_scalagraph(
                &prep,
                Workload::PageRank,
                ScalaGraphConfig::scalagraph_128(),
            )
            .pe_utilization
        })
    });
    g.bench_function("graphdyns_128_util", |b| {
        b.iter(|| {
            run_graphdyns(&prep, Workload::PageRank, GraphDynsConfig::graphdyns_128())
                .pe_utilization
        })
    });
    g.finish();
}

fn bench_fig21(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig21_pe_scaling");
    g.sample_size(10);
    let prep = small(Dataset::Orkut, Workload::PageRank);
    for pes in [32usize, 128, 512, 2048] {
        g.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, &n| {
            let mut cfg = ScalaGraphConfig::with_pes(n);
            if n > 1024 {
                cfg.memory = MemoryPreset::Unlimited;
            }
            b.iter(|| run_scalagraph(&prep, Workload::PageRank, cfg.clone()))
        });
    }
    g.finish();
}

fn bench_baseline_consistency(c: &mut Criterion) {
    // Not a figure: guards that the baseline machine itself stays fast.
    let mut g = c.benchmark_group("graphdyns_machine");
    g.sample_size(10);
    let prep = small(Dataset::Pokec, Workload::Sssp);
    g.bench_function("sssp_128pe", |b| {
        let gd = GraphDyns::new(GraphDynsConfig::graphdyns_128());
        b.iter(|| {
            let algo = scalagraph_algo::algorithms::Sssp::from_root(prep.root);
            gd.run(&algo, &prep.graph).stats.cycles
        })
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_tables_1_3,
    bench_fig4,
    bench_fig6,
    bench_fig8_table4_fig16,
    bench_fig14,
    bench_fig15,
    bench_fig17_table2,
    bench_fig18,
    bench_fig19,
    bench_fig20,
    bench_fig21,
    bench_baseline_consistency
);
criterion_main!(paper);
