//! Criterion benches for the substrate layers themselves: graph
//! construction, edge re-layout, the mesh NoC, the aggregation buffer, and
//! the HBM model. These guard the simulator's own performance (wall-clock
//! per simulated cycle), independent of any paper figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalagraph::aggregate::AggregationBuffer;
use scalagraph_graph::{generators, relayout, Csr};
use scalagraph_mem::{Hbm, HbmConfig, MemRequest};
use scalagraph_noc::{Mesh, MeshConfig, Packet};

fn bench_csr_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr_build");
    for &edges in &[10_000usize, 100_000] {
        let list = generators::power_law(edges / 10, edges, 0.8, 7);
        g.bench_with_input(BenchmarkId::from_parameter(edges), &list, |b, l| {
            b.iter(|| Csr::from_edges(edges / 10, l))
        });
    }
    g.finish();
}

fn bench_relayout(c: &mut Criterion) {
    let mut g = c.benchmark_group("degree_aware_relayout");
    let base = Csr::from_edges(10_000, &generators::power_law(10_000, 100_000, 0.8, 7));
    g.bench_function("100k_edges_16_lanes", |b| {
        b.iter(|| {
            let mut csr = base.clone();
            relayout::degree_aware_relayout(&mut csr, 16, |v| (v as usize) % 16)
        })
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh_noc");
    g.bench_function("16x16_uniform_1000_packets", |b| {
        b.iter(|| {
            let mut mesh = Mesh::new(MeshConfig::new(16, 16));
            let n = 256usize;
            let mut pending: Vec<(usize, Packet)> = (0..1000u64)
                .map(|i| {
                    (
                        (i * 7 % n as u64) as usize,
                        Packet {
                            dst: (i * 13 % n as u64) as usize,
                            payload: i,
                            inject_cycle: 0,
                        },
                    )
                })
                .collect();
            let mut delivered = 0u64;
            while delivered < 1000 {
                pending.retain(|&(src, pkt)| {
                    !(mesh.can_inject(src) && {
                        mesh.try_inject(src, pkt);
                        true
                    })
                });
                mesh.step();
                for node in 0..n {
                    while mesh.pop_delivered(node).is_some() {
                        delivered += 1;
                    }
                }
            }
            delivered
        })
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation_buffer");
    for &regs in &[0usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(regs), &regs, |b, &r| {
            b.iter(|| {
                let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(r);
                let mut out = 0u64;
                for i in 0..10_000u32 {
                    agg.push(i % 64, i, |a, b| a.min(b));
                    if i % 2 == 0 {
                        out += agg.drain_one().map_or(0, |u| u.value as u64);
                    }
                }
                out
            })
        });
    }
    g.finish();
}

fn bench_hbm(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbm_model");
    g.bench_function("u280_10k_requests", |b| {
        b.iter(|| {
            let mut hbm = Hbm::new(HbmConfig::u280(250e6));
            let mut done = 0u64;
            let mut issued = 0u64;
            while done < 10_000 {
                for ch in 0..hbm.num_channels() {
                    if issued < 10_000 && hbm.try_request(ch, MemRequest::read(issued, 64)) {
                        issued += 1;
                    }
                }
                hbm.step();
                for ch in 0..hbm.num_channels() {
                    while hbm.pop_ready(ch).is_some() {
                        done += 1;
                    }
                }
            }
            done
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_csr_build,
    bench_relayout,
    bench_mesh,
    bench_aggregation,
    bench_hbm
);
criterion_main!(substrates);
