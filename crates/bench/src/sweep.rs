//! Parallel experiment sweeps.
//!
//! The figure binaries run dozens of independent simulations; this module
//! fans them out over scoped threads (crossbeam) so a full `fig14` run
//! uses every core. Each simulation is single-threaded and deterministic,
//! so parallelism cannot change any result — only the wall clock.

/// The sweep thread count: the `SCALAGRAPH_THREADS` environment variable
/// when set to a positive integer, otherwise every available core.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("SCALAGRAPH_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(1)
}

/// Applies `f` to every item of `inputs` in parallel (bounded by
/// [`default_threads`]), preserving order.
///
/// # Example
///
/// ```
/// let squares = scalagraph_bench::sweep::parallel_map(vec![1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(default_threads(), inputs, f)
}

/// [`parallel_map`] with an explicit worker count. `threads == 1` runs the
/// closure inline on the caller's thread — no pool, no queue — so a
/// single-threaded sweep is exactly a `for` loop (the sequential baseline
/// the benchmarks compare against).
pub fn parallel_map_with<T, R, F>(threads: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return inputs.into_iter().map(f).collect();
    }
    let n = inputs.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = inputs.into_iter().enumerate().collect();
    let queue = parking_lot_free_queue(work);
    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n.max(1)) {
            let queue = &queue;
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                while let Some((i, item)) = queue.pop() {
                    out.push((i, f(item)));
                }
                out
            }));
        }
        for h in handles {
            // A panicking closure is a bug in the sweep's caller; surface
            // it on the calling thread instead of swallowing results.
            match h.join() {
                Ok(results) => {
                    for (i, r) in results {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // Every index is pushed exactly once and popped exactly once;
            // a missing slot is unreachable once all workers joined.
            None => unreachable!("sweep slot left unfilled"),
        })
        .collect()
}

/// [`parallel_map`] with per-item panic isolation: a closure that panics
/// yields `Err(message)` for that item instead of tearing down the whole
/// sweep. Built for sweeps over hostile inputs (e.g. fuzz-derived
/// scenarios) where one bad item must not cost the other results.
pub fn parallel_map_isolated<T, R, F>(inputs: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map(inputs, |item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    })
}

/// A minimal multi-consumer work queue on top of crossbeam's SegQueue.
fn parking_lot_free_queue<T>(items: Vec<(usize, T)>) -> crossbeam::queue::SegQueue<(usize, T)> {
    let q = crossbeam::queue::SegQueue::new();
    for it in items {
        q.push(it);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn works_with_heavy_closures() {
        let out = parallel_map(vec![1u64, 2, 3, 4], |x| {
            (0..10_000u64).fold(x, |a, b| a.wrapping_add(b))
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn explicit_thread_counts_agree_with_sequential() {
        let inputs: Vec<i64> = (0..64).collect();
        let seq = parallel_map_with(1, inputs.clone(), |x| x * x - 3);
        for threads in [2, 3, 8] {
            let par = parallel_map_with(threads, inputs.clone(), |x| x * x - 3);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn isolated_map_contains_panics_per_item() {
        let out = parallel_map_isolated(vec![1, 2, 3, 4], |x| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x * 10
        });
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[1], Ok(20));
        assert!(out[2].as_ref().is_err_and(|m| m.contains("boom on 3")));
        assert_eq!(out[3], Ok(40));
    }
}
