//! Shared infrastructure for the experiment binaries and Criterion
//! benches that regenerate every table and figure of the ScalaGraph paper.
//!
//! Each figure/table has a binary in `src/bin/` (run with
//! `cargo run --release -p scalagraph-bench --bin fig14`); this library
//! holds the pieces they share: workload construction, system runners,
//! and table formatting.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod runners;
pub mod sweep;
pub mod workloads;

use std::fmt::Write as _;

/// Environment variable overriding the graph down-scale divisor.
pub const SCALE_ENV: &str = "SCALAGRAPH_SCALE";

/// Returns the down-scale divisor for dataset generation: the
/// `SCALAGRAPH_SCALE` environment variable, or `default`.
pub fn scale_or(default: u64) -> u64 {
    std::env::var(SCALE_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(default)
}

/// Renders a simple aligned table (markdown-flavored) to stdout.
///
/// # Example
///
/// ```
/// use scalagraph_bench::print_table;
///
/// print_table(
///     "Demo",
///     &["graph", "gteps"],
///     &[vec!["PK".into(), "1.25".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut line = String::from("|");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, " {h:<w$} |");
    }
    let _ = writeln!(out, "{line}");
    let mut sep = String::from("|");
    for w in &widths {
        let _ = write!(sep, "{}|", "-".repeat(w + 2));
    }
    let _ = writeln!(out, "{sep}");
    for row in rows {
        let mut line = String::from("|");
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, " {cell:<w$} |");
        }
        let _ = writeln!(out, "{line}");
    }
    print!("{out}");
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_when_env_unset() {
        std::env::remove_var(SCALE_ENV);
        assert_eq!(scale_or(2048), 2048);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ratio(2.0), "2.00x");
    }
}
