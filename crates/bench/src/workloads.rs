//! Workload construction: (dataset, algorithm) pairs as the paper runs
//! them — SSSP on weighted graphs, CC on symmetrized graphs, BFS/SSSP
//! rooted at a hub.

use scalagraph_graph::{Csr, Dataset, VertexId};

/// The four evaluation algorithms (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Breadth-first search from a hub root.
    Bfs,
    /// Single-source shortest paths (weights 0..=255) from a hub root.
    Sssp,
    /// Connected components on the symmetrized graph.
    Cc,
    /// PageRank, fixed iteration count.
    PageRank,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 4] = [
        Workload::Bfs,
        Workload::Sssp,
        Workload::Cc,
        Workload::PageRank,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Bfs => "BFS",
            Workload::Sssp => "SSSP",
            Workload::Cc => "CC",
            Workload::PageRank => "PR",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The number of PageRank iterations the harness runs (a fixed schedule,
/// as accelerator evaluations conventionally do).
pub const PAGERANK_ITERATIONS: usize = 5;

/// A prepared input: graph plus the root (where applicable).
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    /// The device-ready graph (weighted for SSSP, symmetrized for CC).
    pub graph: Csr,
    /// Hub root used by BFS/SSSP.
    pub root: VertexId,
}

/// Builds the input graph for `dataset` under `workload` semantics at
/// `1/scale` of paper size.
pub fn prepare(dataset: Dataset, workload: Workload, scale: u64, seed: u64) -> PreparedGraph {
    let graph = match workload {
        Workload::Sssp => dataset.generate_weighted(scale, seed),
        Workload::Cc => {
            let mut list = dataset.edge_list(scale, seed);
            list.symmetrize();
            Csr::from_edge_list(&list)
        }
        Workload::Bfs | Workload::PageRank => dataset.generate(scale, seed),
    };
    let root = Dataset::pick_root(&graph);
    PreparedGraph { graph, root }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sssp_prepared_is_weighted() {
        let p = prepare(Dataset::Pokec, Workload::Sssp, 4096, 1);
        assert!(p.graph.is_weighted());
    }

    #[test]
    fn cc_prepared_is_symmetric() {
        let p = prepare(Dataset::Pokec, Workload::Cc, 4096, 1);
        let r = p.graph.reverse();
        for v in p.graph.vertices().take(50) {
            let mut a = p.graph.neighbors(v).to_vec();
            let mut b = r.neighbors(v).to_vec();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(a, b, "vertex {v} not symmetric");
        }
    }

    #[test]
    fn bfs_root_has_edges() {
        let p = prepare(Dataset::LiveJournal, Workload::Bfs, 8192, 2);
        assert!(p.graph.out_degree(p.root) > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::PageRank.label(), "PR");
        assert_eq!(Workload::ALL.len(), 4);
    }
}
