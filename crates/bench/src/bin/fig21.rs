//! Figure 21: performance scaling of ScalaGraph with PE counts 32→4,096.
//!
//! Paper shape: near-linear speedup up to 512 PEs on the U280's 460 GB/s;
//! 1,024 PEs gains only ~1.16× over 512 (off-chip bandwidth saturates);
//! with "sufficient off-chip bandwidth" each further doubling gains ~1.47×.

use scalagraph::{MemoryPreset, ScalaGraphConfig};
use scalagraph_bench::runners::run_scalagraph;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, ratio, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(256);
    println!("Figure 21 — PE scaling; PageRank on Orkut at 1/{scale}");

    let prep = prepare(Dataset::Orkut, Workload::PageRank, scale, 42);

    // On-FPGA series: U280 bandwidth, 32 to 1,024 PEs.
    let mut rows = Vec::new();
    let mut base = 0.0;
    let mut prev = 0.0;
    for pes in [32usize, 64, 128, 256, 512, 1024] {
        let cfg = ScalaGraphConfig::with_pes(pes);
        let m = run_scalagraph(&prep, Workload::PageRank, cfg);
        if pes == 32 {
            base = m.gteps;
        }
        let vs_prev = if prev > 0.0 { m.gteps / prev } else { 1.0 };
        prev = m.gteps;
        rows.push(vec![
            pes.to_string(),
            format!("{:.2}", m.gteps),
            ratio(m.gteps / base),
            ratio(vs_prev),
        ]);
    }
    print_table(
        "U280 (460 GB/s): speedup normalized to 32 PEs — paper: near-linear to 512, ~1.16x for 512->1024 (bandwidth saturates)",
        &["PEs", "GTEPS", "vs 32 PEs", "vs previous"],
        &rows,
    );

    // Beyond the FPGA: the paper's cycle-accurate simulator "with
    // sufficient off-chip bandwidth" — one consistent memory model across
    // the whole series so doubling ratios are meaningful.
    let mut rows = Vec::new();
    let mut prev = 0.0;
    for pes in [1024usize, 2048, 4096] {
        let mut cfg = ScalaGraphConfig::with_pes(pes);
        cfg.memory = MemoryPreset::Unlimited;
        let m = run_scalagraph(&prep, Workload::PageRank, cfg);
        let vs_prev = if prev > 0.0 { m.gteps / prev } else { 1.0 };
        prev = m.gteps;
        rows.push(vec![
            pes.to_string(),
            format!("{:.2}", m.gteps),
            ratio(vs_prev),
        ]);
    }
    print_table(
        "Unlimited bandwidth: paper reports ~1.47x per PE doubling beyond 1,024",
        &["PEs", "GTEPS", "per doubling"],
        &rows,
    );
}
