//! Figure 4: the effect of the centralized crossbar on (a) maximal
//! frequency and (b) performance, for AccuGraph and GraphDynS prototypes
//! with and without the crossbar, scaling 4→512 PEs.
//!
//! Paper shape: with the crossbar, frequency collapses past 64 PEs
//! (300→~100 MHz) and performance stalls or drops at 128 PEs; 256+ PEs
//! route-fail. Without the crossbar both scale nearly linearly at 300 MHz.
//! One PageRank iteration over the Table I graphs characterizes maximal
//! throughput.

use scalagraph_algo::algorithms::PageRank;
use scalagraph_baselines::{GraphDyns, GraphDynsConfig};
use scalagraph_bench::{print_table, ratio, scale_or};
use scalagraph_graph::Dataset;
use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind};

fn main() {
    let scale = scale_or(4096);
    println!("Figure 4 — crossbar effect; one PageRank iteration, Table I graphs at 1/{scale}");

    // (a) Maximal frequency.
    let pes_list = [4usize, 8, 16, 32, 64, 128, 256, 512];
    let rows: Vec<Vec<String>> = pes_list
        .iter()
        .map(|&pes| {
            let with = max_frequency_mhz(InterconnectKind::Crossbar, pes)
                .frequency_mhz()
                .map_or("route-fail".into(), |f| format!("{f:.0} MHz"));
            let without = max_frequency_mhz(InterconnectKind::None, pes)
                .frequency_mhz()
                .map_or("route-fail".into(), |f| format!("{f:.0} MHz"));
            vec![
                pes.to_string(),
                with.clone(),
                without.clone(),
                with,
                without,
            ]
        })
        .collect();
    print_table(
        "(a) Maximal frequency",
        &[
            "PEs",
            "AccuGraph",
            "AccuGraph w/o xbar",
            "GraphDynS",
            "GraphDynS w/o xbar",
        ],
        &rows,
    );

    // (b) Performance, normalized to the 4-PE crossbar build, averaged
    // over the four motivation graphs.
    let algo = PageRank::new(1);
    let graphs: Vec<_> = Dataset::MOTIVATION
        .iter()
        .map(|d| d.generate(scale, 42))
        .collect();

    let run = |cfg: GraphDynsConfig| -> f64 {
        let clock = cfg.effective_clock_mhz();
        graphs
            .iter()
            .map(|g| GraphDyns::new(cfg).run(&algo, g).stats.gteps(clock))
            .sum::<f64>()
            / graphs.len() as f64
    };

    type Variant = (&'static str, fn(usize) -> GraphDynsConfig, bool);
    let variants: [Variant; 4] = [
        ("AccuGraph", GraphDynsConfig::accugraph_with_pes, true),
        (
            "AccuGraph w/o xbar",
            GraphDynsConfig::accugraph_with_pes,
            false,
        ),
        ("GraphDynS", GraphDynsConfig::with_pes, true),
        ("GraphDynS w/o xbar", GraphDynsConfig::with_pes, false),
    ];

    let mut baselines = Vec::new();
    let mut rows = Vec::new();
    for &pes in &pes_list {
        let mut row = vec![pes.to_string()];
        for (vi, (_, make, with_xbar)) in variants.iter().enumerate() {
            let mut cfg = make(pes);
            cfg.with_crossbar = *with_xbar;
            let routed =
                !*with_xbar || max_frequency_mhz(InterconnectKind::Crossbar, pes).is_routed();
            if !routed {
                row.push("route-fail".into());
                continue;
            }
            let gteps = run(cfg);
            if baselines.len() <= vi {
                baselines.push(gteps);
            }
            row.push(ratio(gteps / baselines[vi]));
        }
        rows.push(row);
    }
    print_table(
        "(b) Performance normalized to 4 PEs",
        &[
            "PEs",
            "AccuGraph",
            "AccuGraph w/o xbar",
            "GraphDynS",
            "GraphDynS w/o xbar",
        ],
        &rows,
    );
}
