//! Figure 14: throughput (GTEPS) of ScalaGraph-128/512 against
//! GraphDynS-128/512 and Gunrock (V100) on BFS/SSSP/CC/PageRank over the
//! five Table III graphs.
//!
//! Paper shape: ScalaGraph-512 ≈ 3.2× Gunrock, ≈ 4.6× GraphDynS-128,
//! ≈ 2.2× GraphDynS-512; ScalaGraph-128 ≈ 1.2× GraphDynS-128. BFS shows
//! the smallest speedups (frontier starvation), PageRank the largest.
//!
//! The 20 (workload, dataset) cells are independent simulations and run in
//! parallel across cores.

use scalagraph::ScalaGraphConfig;
use scalagraph_baselines::{GraphDynsConfig, GunrockModel};
use scalagraph_bench::runners::{run_graphdyns, run_gunrock, run_scalagraph, Metrics};
use scalagraph_bench::sweep::parallel_map;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{f2, print_table, ratio, scale_or};
use scalagraph_graph::Dataset;

struct Cell {
    workload: Workload,
    dataset: Dataset,
    gunrock: Metrics,
    gd128: Metrics,
    gd512: Metrics,
    sg128: Metrics,
    sg512: Metrics,
}

fn main() {
    let scale = scale_or(512);
    println!("Figure 14 — overall throughput (GTEPS); graphs at 1/{scale} paper scale");

    let cells: Vec<(Workload, Dataset)> = Workload::ALL
        .iter()
        .flat_map(|&w| Dataset::EVALUATION.iter().map(move |&d| (w, d)))
        .collect();

    let results: Vec<Cell> = parallel_map(cells, |(workload, dataset)| {
        let prep = prepare(dataset, workload, scale, 42);
        Cell {
            workload,
            dataset,
            gunrock: run_gunrock(
                &prep,
                workload,
                GunrockModel::v100_for_paper_graph(
                    dataset.spec().paper_vertices,
                    dataset.spec().paper_edges,
                ),
            ),
            gd128: run_graphdyns(&prep, workload, GraphDynsConfig::graphdyns_128()),
            gd512: run_graphdyns(&prep, workload, GraphDynsConfig::graphdyns_512()),
            sg128: run_scalagraph(&prep, workload, ScalaGraphConfig::scalagraph_128()),
            sg512: run_scalagraph(&prep, workload, ScalaGraphConfig::scalagraph_512()),
        }
    });

    let mut rows = Vec::new();
    let mut speedup_sums = [0.0f64; 4];
    let count = results.len() as f64;
    for c in &results {
        speedup_sums[0] += c.sg512.gteps / c.gunrock.gteps;
        speedup_sums[1] += c.sg512.gteps / c.gd128.gteps;
        speedup_sums[2] += c.sg512.gteps / c.gd512.gteps;
        speedup_sums[3] += c.sg128.gteps / c.gd128.gteps;
        rows.push(vec![
            c.workload.to_string(),
            c.dataset.to_string(),
            f2(c.gunrock.gteps),
            f2(c.gd128.gteps),
            f2(c.gd512.gteps),
            f2(c.sg128.gteps),
            f2(c.sg512.gteps),
            ratio(c.sg512.gteps / c.gunrock.gteps),
            ratio(c.sg512.gteps / c.gd512.gteps),
        ]);
    }

    print_table(
        "Throughput (GTEPS)",
        &[
            "algo",
            "graph",
            "Gunrock",
            "GD-128",
            "GD-512",
            "SG-128",
            "SG-512",
            "SG512/Gun",
            "SG512/GD512",
        ],
        &rows,
    );

    println!("\nGeometric shape summary (paper targets in parentheses):");
    println!(
        "  ScalaGraph-512 vs Gunrock      : {} (3.2x)",
        ratio(speedup_sums[0] / count)
    );
    println!(
        "  ScalaGraph-512 vs GraphDynS-128: {} (4.6x)",
        ratio(speedup_sums[1] / count)
    );
    println!(
        "  ScalaGraph-512 vs GraphDynS-512: {} (2.2x)",
        ratio(speedup_sums[2] / count)
    );
    println!(
        "  ScalaGraph-128 vs GraphDynS-128: {} (1.2x)",
        ratio(speedup_sums[3] / count)
    );
}
