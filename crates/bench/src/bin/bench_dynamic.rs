//! `bench_dynamic` — incremental mutation path vs full recompute.
//!
//! Drives a seeded mutation schedule over a fixed uniform graph at three
//! churn levels (measured largest first) and, per batch, times two legs in
//! strict alternation, keeping the min-of-N of each:
//!
//! * **incremental** — [`DynamicCsr::apply`] splices the batch into both
//!   CSR views, then `repair_rooted` (BFS) / `delta_pagerank` reprocesses
//!   only the affected region;
//! * **recompute** — from-scratch rebuild of both views from the mutated
//!   edge set plus a full reference run (BFS) / full trace (PageRank) —
//!   the static ingestion pipeline a mutation would otherwise rerun.
//!
//! Both legs are asserted bit-identical before any timing is trusted.
//! This host's wall clock drifts heavily, so the report and its gates are
//! **ratio-only**: the in-run incremental-over-recompute speedup at the
//! ≤1% churn presets must be ≥ 2x (`GATE_MIN_SPEEDUP`); absolute times are
//! published for context but never gated. `--check` compares ratios
//! against a previous report, again never wall-clock.
//!
//! ```text
//! bench_dynamic [--out <path>] [--check <path>] [--reps <n>]
//!   --out <path>     where to write the JSON        [BENCH_dynamic.json]
//!   --check <path>   also require: current gated speedups >= half the
//!                    previous report's (ratio-to-ratio, noise-tolerant)
//!   --reps <n>       timed reps per leg (min-of-N)  [5]
//! ```

use scalagraph_algo::algorithms::{Bfs, PageRank};
use scalagraph_algo::dynamic::{delta_pagerank, repair_rooted, trace_pagerank, PageRankTrace};
use scalagraph_algo::ReferenceEngine;
use scalagraph_conformance::{materialize_batch, MutationSpec};
use scalagraph_graph::mutate::DynamicCsr;
use scalagraph_graph::{generators, Csr};
use std::time::Instant;

/// BFS-repair course graph: dense enough (avg degree 4) that a removed
/// edge rarely orphans a large subtree, the regime batched repair targets.
const BFS_VERTICES: usize = 16_384;
const BFS_EDGES: usize = 65_536;
/// Delta-PageRank course graph: sparse (avg degree 1.5) so the affected
/// frontier's one-hop-per-iteration growth stays well sublinear in |V|.
const PR_VERTICES: usize = 65_536;
const PR_EDGES: usize = 98_304;
const GRAPH_SEED: u64 = 42;
const BATCHES: u32 = 4;
const PAGERANK_ITERS: usize = 3;
const GATE_MIN_SPEEDUP: f64 = 2.0;
/// Presets at or below this churn fraction are gated.
const GATE_MAX_CHURN: f64 = 0.01;

/// Churn presets, largest first so the heavy preset absorbs warm-up drift.
struct Preset {
    name: &'static str,
    /// Per-batch insert/remove counts as a fraction of the course's edge
    /// count (churn = 2x this).
    half_churn: f64,
}

const PRESETS: &[Preset] = &[
    Preset {
        name: "churn-5pct",
        half_churn: 0.0244,
    },
    Preset {
        name: "churn-1pct",
        half_churn: 0.0049,
    },
    Preset {
        name: "churn-0.5pct",
        half_churn: 0.0024,
    },
];

fn base_graph(vertices: usize, edges: usize) -> Csr {
    Csr::from_edges(vertices, &generators::uniform(vertices, edges, GRAPH_SEED))
}

fn spec_for(preset: &Preset, edges: usize) -> MutationSpec {
    let ops = (preset.half_churn * edges as f64) as u32;
    MutationSpec {
        batches: BATCHES,
        insert_edges: ops,
        remove_edges: ops,
        add_vertices: 0,
        isolate_vertices: 0,
        seed: GRAPH_SEED,
    }
}

/// min-of-N over strictly alternating legs; returns (incremental, full)
/// best seconds. `inc` and `full` must be pure (state handed in fresh).
fn alternate<FI: FnMut() -> f64, FF: FnMut() -> f64>(
    reps: u32,
    mut inc: FI,
    mut full: FF,
) -> (f64, f64) {
    let (mut bi, mut bf) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        bi = bi.min(inc());
        bf = bf.min(full());
    }
    (bi, bf)
}

struct BatchTiming {
    batch: u32,
    affected: usize,
    incremental_s: f64,
    recompute_s: f64,
}

fn speedup(t: &BatchTiming) -> f64 {
    t.recompute_s / t.incremental_s.max(1e-12)
}

/// BFS course: advance the schedule batch by batch, timing repair vs full
/// reference recompute at each step and asserting bit-identity.
fn bfs_course(preset: &Preset, reps: u32) -> Vec<BatchTiming> {
    let spec = spec_for(preset, BFS_EDGES);
    let bfs = Bfs::from_root(0);
    let reference = ReferenceEngine::new();
    let mut state = DynamicCsr::new(base_graph(BFS_VERTICES, BFS_EDGES));
    let mut props = reference.run(&bfs, state.canonical()).properties;
    let mut out = Vec::new();
    for k in 1..=BATCHES {
        let old_canonical = state.canonical().clone();
        let batch = materialize_batch(&spec, 0, &old_canonical, k);
        let mut advanced = state.clone();
        let delta = advanced.apply(&batch).expect("bench batch applies");

        let repaired = repair_rooted(&bfs, &old_canonical, &props, advanced.canonical(), &delta);
        let full = reference.run(&bfs, advanced.canonical()).properties;
        assert_eq!(repaired.properties, full, "repair must be bit-identical");

        let (incremental_s, recompute_s) = alternate(
            reps,
            || {
                let mut d = state.clone();
                let t = Instant::now();
                let delta = d.apply(&batch).expect("bench batch applies");
                let run = repair_rooted(&bfs, &old_canonical, &props, d.canonical(), &delta);
                let dt = t.elapsed().as_secs_f64();
                assert!(run.properties.len() == d.num_vertices());
                dt
            },
            || {
                let t = Instant::now();
                let (canonical, laidout) = advanced.rebuild_reference();
                let run = reference.run(&bfs, &canonical);
                let dt = t.elapsed().as_secs_f64();
                assert!(run.properties.len() == laidout.num_vertices());
                dt
            },
        );
        out.push(BatchTiming {
            batch: k,
            affected: repaired.affected_vertices,
            incremental_s,
            recompute_s,
        });
        state = advanced;
        props = full;
    }
    out
}

/// PageRank course: delta reprocessing vs a full fresh trace.
fn pagerank_course(preset: &Preset, reps: u32) -> Vec<BatchTiming> {
    let spec = spec_for(preset, PR_EDGES);
    let pr = PageRank::new(PAGERANK_ITERS);
    let mut state = DynamicCsr::new(base_graph(PR_VERTICES, PR_EDGES));
    let mut trace = trace_pagerank(&pr, state.canonical());
    let mut out = Vec::new();
    for k in 1..=BATCHES {
        let old_canonical = state.canonical().clone();
        let batch = materialize_batch(&spec, 0, &old_canonical, k);
        let mut advanced = state.clone();
        let delta = advanced.apply(&batch).expect("bench batch applies");

        let (delta_trace, stats) =
            delta_pagerank(&pr, &trace, &old_canonical, advanced.canonical(), &delta);
        let full: PageRankTrace = trace_pagerank(&pr, advanced.canonical());
        assert!(!stats.full_fallback, "delta path must stay incremental");
        assert_eq!(
            delta_trace.ranks, full.ranks,
            "delta trace must be bit-identical"
        );

        let (incremental_s, recompute_s) = alternate(
            reps,
            || {
                let mut d = state.clone();
                let t = Instant::now();
                let delta = d.apply(&batch).expect("bench batch applies");
                let (dt_trace, _) =
                    delta_pagerank(&pr, &trace, &old_canonical, d.canonical(), &delta);
                let dt = t.elapsed().as_secs_f64();
                assert!(dt_trace.final_ranks().len() == d.num_vertices());
                dt
            },
            || {
                let t = Instant::now();
                let (canonical, laidout) = advanced.rebuild_reference();
                let full = trace_pagerank(&pr, &canonical);
                let dt = t.elapsed().as_secs_f64();
                assert!(full.final_ranks().len() == laidout.num_vertices());
                dt
            },
        );
        out.push(BatchTiming {
            batch: k,
            affected: stats.affected_final,
            incremental_s,
            recompute_s,
        });
        state = advanced;
        trace = full;
    }
    out
}

/// Geometric mean of the per-batch speedups: the gate statistic. A single
/// adversarial batch (a removal that orphans a big subtree forces a
/// near-full repair) should not veto a preset the incremental path wins
/// on average; the per-batch ratios are still published for inspection.
fn gm_speedup(timings: &[BatchTiming]) -> f64 {
    let log_sum: f64 = timings.iter().map(|t| speedup(t).max(1e-12).ln()).sum();
    (log_sum / timings.len() as f64).exp()
}

fn churn_fraction(preset: &Preset) -> f64 {
    2.0 * preset.half_churn
}

fn batch_json(timings: &[BatchTiming]) -> String {
    let lines: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "        {{ \"batch\": {}, \"affected\": {}, \"incremental_us\": {:.1}, \
                 \"recompute_us\": {:.1}, \"speedup\": {:.2} }}",
                t.batch,
                t.affected,
                t.incremental_s * 1e6,
                t.recompute_s * 1e6,
                speedup(t)
            )
        })
        .collect();
    lines.join(",\n")
}

/// Extracts the gated `"gm_speedup"` values from a previous report: every
/// number following a `"gm_speedup":` key inside a gated preset. The JSON
/// is ours and flat, so a scan is enough.
fn read_gated_speedups(text: &str) -> Vec<f64> {
    let mut out = Vec::new();
    for chunk in text.split("\"gated\": true").skip(1) {
        for field in chunk.split("\"gm_speedup\":").skip(1).take(2) {
            if let Some(v) = field
                .trim_start()
                .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
                .next()
                .and_then(|s| s.parse::<f64>().ok())
            {
                out.push(v);
            }
        }
    }
    out
}

fn main() {
    let mut out_path = "BENCH_dynamic.json".to_string();
    let mut check_path: Option<String> = None;
    let mut reps: u32 = 5;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--reps" => {
                reps = value("--reps").parse().expect("--reps needs an integer");
                assert!(reps > 0, "--reps needs a positive integer");
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    println!(
        "workloads: bfs-repair uniform |V|={BFS_VERTICES} |E|={BFS_EDGES}, \
         delta-pagerank uniform |V|={PR_VERTICES} |E|={PR_EDGES} (seed {GRAPH_SEED}), \
         {BATCHES} batches/preset, min-of-{reps} alternating legs"
    );

    let mut sections = Vec::new();
    let mut gate_ok = true;
    let mut gated_current = Vec::new();
    for preset in PRESETS {
        let churn = churn_fraction(preset);
        let gated = churn <= GATE_MAX_CHURN;
        let bfs = bfs_course(preset, reps);
        let pagerank = pagerank_course(preset, reps);
        let (bfs_gm, pr_gm) = (gm_speedup(&bfs), gm_speedup(&pagerank));
        println!(
            "  {:>13} (churn {:.2}%{}): bfs-repair {:.1}x, delta-pagerank {:.1}x (geo mean)",
            preset.name,
            churn * 100.0,
            if gated { ", gated" } else { "" },
            bfs_gm,
            pr_gm,
        );
        if gated {
            gated_current.push(bfs_gm);
            gated_current.push(pr_gm);
            gate_ok &= bfs_gm >= GATE_MIN_SPEEDUP && pr_gm >= GATE_MIN_SPEEDUP;
        }
        let mut section = format!(
            "    {{\n      \"preset\": \"{}\", \"churn_fraction\": {churn:.4}, \"gated\": {gated},\n",
            preset.name
        );
        section.push_str(&format!(
            "      \"bfs_repair\": {{ \"gm_speedup\": {bfs_gm:.2}, \"batches\": [\n{}\n      ] }},\n",
            batch_json(&bfs)
        ));
        section.push_str(&format!(
            "      \"delta_pagerank\": {{ \"gm_speedup\": {pr_gm:.2}, \"batches\": [\n{}\n      ] }}\n    }}",
            batch_json(&pagerank)
        ));
        sections.push(section);
    }

    assert!(
        gate_ok,
        "ratio gate failed: incremental must be >= {GATE_MIN_SPEEDUP}x \
         over full recompute at <= {GATE_MAX_CHURN} churn"
    );

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
        let previous = read_gated_speedups(&text);
        assert!(
            !previous.is_empty(),
            "--check: {path} has no gated gm_speedup fields"
        );
        // Ratio-to-ratio only: current gated speedups may not collapse to
        // less than half of what the checked-in report published.
        let prev_min = previous.iter().copied().fold(f64::MAX, f64::min);
        let cur_min = gated_current.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            cur_min >= prev_min / 2.0,
            "--check: gated speedup collapsed: current min {cur_min:.2}x \
             vs previous min {prev_min:.2}x"
        );
        println!("check vs {path}: current gated min {cur_min:.2}x, previous {prev_min:.2}x — ok");
    }

    let mut json = format!(
        "{{\n  \"workload\": \"uniform bfs |V|={BFS_VERTICES} |E|={BFS_EDGES}, pagerank |V|={PR_VERTICES} |E|={PR_EDGES}, seed={GRAPH_SEED}\",\n"
    );
    json.push_str(&format!(
        "  \"batches_per_preset\": {BATCHES},\n  \"reps\": {reps},\n"
    ));
    json.push_str(&format!(
        "  \"gate\": {{ \"min_speedup\": {GATE_MIN_SPEEDUP}, \"max_churn\": {GATE_MAX_CHURN}, \"pass\": {gate_ok} }},\n"
    ));
    json.push_str(&format!(
        "  \"presets\": [\n{}\n  ]\n}}\n",
        sections.join(",\n")
    ));
    std::fs::write(&out_path, json).expect("write report");
    println!("wrote {out_path}");
}
