//! Figure 15: energy consumption of ScalaGraph and GraphDynS, normalized
//! to Gunrock (lower is better).
//!
//! Paper shape: ScalaGraph-512 uses ~7.1× less energy than Gunrock, and
//! ~3.3× / ~2.8× less than GraphDynS-128 / GraphDynS-512; ScalaGraph-128
//! saves only ~1.3× over GraphDynS-128 (mesh overhead eats the gain at
//! small parallelism).

use scalagraph::ScalaGraphConfig;
use scalagraph_baselines::{GraphDynsConfig, GunrockModel};
use scalagraph_bench::runners::{run_graphdyns, run_gunrock, run_scalagraph};
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, ratio, scale_or};
use scalagraph_graph::Dataset;
use scalagraph_hwmodel::{EnergyModel, SystemKind};

fn main() {
    let scale = scale_or(512);
    println!("Figure 15 — energy normalized to Gunrock; graphs at 1/{scale}");
    let em = EnergyModel::u280();

    let cells: Vec<(Workload, Dataset)> = Workload::ALL
        .iter()
        .flat_map(|&w| Dataset::EVALUATION.iter().map(move |&d| (w, d)))
        .collect();
    let results = scalagraph_bench::sweep::parallel_map(cells, |(workload, dataset)| {
        let prep = prepare(dataset, workload, scale, 42);
        let gun = run_gunrock(
            &prep,
            workload,
            GunrockModel::v100_for_paper_graph(
                dataset.spec().paper_vertices,
                dataset.spec().paper_edges,
            ),
        );
        let gd128 = run_graphdyns(&prep, workload, GraphDynsConfig::graphdyns_128());
        let gd512 = run_graphdyns(&prep, workload, GraphDynsConfig::graphdyns_512());
        let sg128 = run_scalagraph(&prep, workload, ScalaGraphConfig::scalagraph_128());
        let sg512 = run_scalagraph(&prep, workload, ScalaGraphConfig::scalagraph_512());
        let e_gun = em.energy_joules(SystemKind::GunrockV100, 0, gun.seconds);
        let e = [
            em.energy_joules(SystemKind::GraphDyns, 128, gd128.seconds) / e_gun,
            em.energy_joules(SystemKind::GraphDyns, 512, gd512.seconds) / e_gun,
            em.energy_joules(SystemKind::ScalaGraph, 128, sg128.seconds) / e_gun,
            em.energy_joules(SystemKind::ScalaGraph, 512, sg512.seconds) / e_gun,
        ];
        (workload, dataset, e)
    });

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    let mut count = 0.0;
    for (workload, dataset, e) in results {
        for (s, v) in sums.iter_mut().zip(e) {
            *s += v;
        }
        count += 1.0;
        rows.push(vec![
            workload.to_string(),
            dataset.to_string(),
            format!("{:.3}", e[0]),
            format!("{:.3}", e[1]),
            format!("{:.3}", e[2]),
            format!("{:.3}", e[3]),
        ]);
    }
    print_table(
        "Energy normalized to Gunrock (= 1.0)",
        &["algo", "graph", "GD-128", "GD-512", "SG-128", "SG-512"],
        &rows,
    );
    let m = |i: usize| sums[i] / count;
    println!("\nMeans (paper targets in parentheses):");
    println!(
        "  Gunrock / ScalaGraph-512      : {} (7.1x)",
        ratio(1.0 / m(3))
    );
    println!(
        "  GraphDynS-128 / ScalaGraph-512: {} (3.3x)",
        ratio(m(0) / m(3))
    );
    println!(
        "  GraphDynS-512 / ScalaGraph-512: {} (2.8x)",
        ratio(m(1) / m(3))
    );
    println!(
        "  GraphDynS-128 / ScalaGraph-128: {} (1.3x)",
        ratio(m(0) / m(2))
    );
}
