//! Figure 16: FPGA resource utilization (left table) and the ScalaGraph
//! power breakdown (right pie), from the calibrated hardware model.

use scalagraph_bench::print_table;
use scalagraph_hwmodel::{AcceleratorKind, EnergyModel, PowerBreakdown, ResourceModel, SystemKind};

fn main() {
    println!("Figure 16 — resource utilization and power breakdown");
    let m = ResourceModel::u280();
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    let configs = [
        ("GraphDynS-128", AcceleratorKind::GraphDyns, 128usize),
        ("ScalaGraph-128", AcceleratorKind::ScalaGraph, 128),
        ("GraphDynS-512", AcceleratorKind::GraphDyns, 512),
        ("ScalaGraph-512", AcceleratorKind::ScalaGraph, 512),
    ];
    let paper = [
        (22.8, 11.6, 74.7),
        (10.9, 6.4, 70.8),
        (85.1, 43.8, 76.1),
        (39.2, 22.9, 73.2),
    ];
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(paper)
        .map(|((name, kind, pes), (pl, pr, pb))| {
            let u = m.utilization(*kind, *pes);
            vec![
                name.to_string(),
                pct(u.lut),
                format!("{pl}%"),
                pct(u.reg),
                format!("{pr}%"),
                pct(u.bram),
                format!("{pb}%"),
            ]
        })
        .collect();
    print_table(
        "Resource utilization (model vs paper)",
        &[
            "accelerator",
            "LUT",
            "(paper)",
            "REG",
            "(paper)",
            "BRAM",
            "(paper)",
        ],
        &rows,
    );

    let b = PowerBreakdown::scalagraph();
    let total_w = EnergyModel::u280().power_watts(SystemKind::ScalaGraph, 512);
    let rows = vec![
        vec![
            "HBM".into(),
            pct(b.hbm),
            format!("{:.1} W", b.hbm * total_w),
        ],
        vec![
            "SPD".into(),
            pct(b.spd),
            format!("{:.1} W", b.spd * total_w),
        ],
        vec![
            "RU (NoC)".into(),
            pct(b.ru),
            format!("{:.1} W", b.ru * total_w),
        ],
        vec!["GU".into(), pct(b.gu), format!("{:.1} W", b.gu * total_w)],
        vec![
            "Dispatch".into(),
            pct(b.dispatch),
            format!("{:.1} W", b.dispatch * total_w),
        ],
        vec![
            "Prefetch/other".into(),
            pct(b.other),
            format!("{:.1} W", b.other * total_w),
        ],
    ];
    print_table(
        &format!("ScalaGraph-512 power breakdown (total {total_w:.1} W)"),
        &["component", "share", "watts"],
        &rows,
    );
}
