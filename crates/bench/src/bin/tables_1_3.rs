//! Tables I and III: the evaluation datasets. Prints the paper's original
//! vertex/edge counts next to the generated synthetic stand-ins at the
//! configured scale, with degree-skew statistics demonstrating the
//! stand-ins preserve the power-law character.

use scalagraph_bench::{print_table, scale_or};
use scalagraph_graph::{Dataset, DegreeStats};

fn main() {
    let scale = scale_or(2048);
    println!("Tables I & III — datasets (synthetic stand-ins at 1/{scale})");

    let rows: Vec<Vec<String>> = Dataset::ALL
        .iter()
        .map(|d| {
            let spec = d.spec();
            let g = d.generate(scale, 42);
            let stats = DegreeStats::of(&g);
            vec![
                spec.name.to_string(),
                spec.abbrev.to_string(),
                format!("{:.2}M", spec.paper_vertices as f64 / 1e6),
                format!("{:.1}M", spec.paper_edges as f64 / 1e6),
                format!("{:.1}", spec.paper_avg_degree()),
                stats.vertices.to_string(),
                stats.edges.to_string(),
                format!("{:.1}", stats.avg),
                stats.max.to_string(),
                format!("{:.3}", stats.gini),
            ]
        })
        .collect();

    print_table(
        "Datasets",
        &[
            "graph",
            "abbrev",
            "paper |V|",
            "paper |E|",
            "paper deg",
            "gen |V|",
            "gen |E|",
            "gen deg",
            "gen max-deg",
            "gini",
        ],
        &rows,
    );
}
