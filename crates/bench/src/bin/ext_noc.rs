//! Extension experiment (the paper's stated future work): "the problem of
//! determining or even designing the most appropriate NoC".
//!
//! Drives four interconnects — full crossbar, butterfly (Benes-class
//! multistage), 2D mesh, and 2D torus — with identical synthetic update
//! traffic at equal port counts, and combines the *behavioural* results
//! (accepted throughput, latency) with the *physical* ones (synthesizable
//! frequency from the hardware model) into effective throughput. The
//! punchline mirrors the paper: the crossbar wins per cycle but loses per
//! second once its frequency collapses — and fails outright at 256+ ports.

use scalagraph_bench::print_table;
use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind};
use scalagraph_noc::{BflyPacket, Butterfly, Crossbar, CrossbarKind, Mesh, MeshConfig, Packet};

/// Deterministic pseudo-random stream (xorshift).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A (src, dst) traffic pattern over `ports` endpoints.
fn traffic(ports: usize, packets: usize, hotspot: bool, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = Rng(seed | 1);
    (0..packets)
        .map(|_| {
            let src = (rng.next() % ports as u64) as usize;
            let dst = if hotspot && rng.next().is_multiple_of(5) {
                // 20% of traffic converges on one endpoint — the hub
                // pattern of power-law graphs.
                7 % ports
            } else {
                (rng.next() % ports as u64) as usize
            };
            (src, dst)
        })
        .collect()
}

struct Outcome {
    cycles: u64,
    avg_latency: f64,
}

fn drive_crossbar(ports: usize, pattern: &[(usize, usize)]) -> Outcome {
    eprintln!("[ext_noc] crossbar {ports}");
    let mut x = Crossbar::new(ports, ports, CrossbarKind::Full);
    let mut pending: Vec<(usize, usize, u64)> = pattern
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| (s, d, i as u64))
        .collect();
    let mut delivered = 0usize;
    while delivered < pattern.len() {
        assert!(
            x.stats().cycles < 10_000_000,
            "crossbar drive did not converge"
        );
        pending.retain(|&(s, d, p)| !x.try_inject(s, d, p));
        x.step();
        for port in 0..ports {
            while x.pop_delivered(port).is_some() {
                delivered += 1;
            }
        }
    }
    Outcome {
        cycles: x.stats().cycles,
        avg_latency: x.stats().avg_latency(),
    }
}

fn drive_butterfly(ports: usize, pattern: &[(usize, usize)]) -> Outcome {
    eprintln!("[ext_noc] butterfly {ports}");
    let mut net = Butterfly::new(ports);
    let mut pending: Vec<(usize, BflyPacket)> = pattern
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| {
            (
                s,
                BflyPacket {
                    dst: d,
                    payload: i as u64,
                    inject_cycle: 0,
                },
            )
        })
        .collect();
    let mut delivered = 0usize;
    while delivered < pattern.len() {
        assert!(
            net.stats().cycles < 10_000_000,
            "butterfly drive did not converge"
        );
        pending.retain(|&(s, pkt)| !net.try_inject(s, pkt));
        net.step();
        for port in 0..ports {
            while net.pop_delivered(port).is_some() {
                delivered += 1;
            }
        }
    }
    Outcome {
        cycles: net.stats().cycles,
        avg_latency: net.stats().avg_latency(),
    }
}

fn drive_grid(ports: usize, pattern: &[(usize, usize)], torus: bool) -> Outcome {
    eprintln!("[ext_noc] grid {ports} torus={torus}");
    let side = (ports as f64).sqrt() as usize;
    assert_eq!(side * side, ports, "grid drive needs a square port count");
    let cfg = if torus {
        MeshConfig::torus(side, side)
    } else {
        MeshConfig::new(side, side)
    };
    let mut mesh = Mesh::new(cfg);
    let mut pending: Vec<(usize, Packet)> = pattern
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| {
            (
                s,
                Packet {
                    dst: d,
                    payload: i as u64,
                    inject_cycle: 0,
                },
            )
        })
        .collect();
    let mut delivered = 0usize;
    while delivered < pattern.len() {
        assert!(
            mesh.stats().cycles < 10_000_000,
            "grid drive did not converge"
        );
        pending.retain(|&(s, pkt)| !mesh.try_inject(s, pkt));
        mesh.step();
        for node in 0..ports {
            while mesh.pop_delivered(node).is_some() {
                delivered += 1;
            }
        }
    }
    Outcome {
        cycles: mesh.stats().cycles,
        avg_latency: mesh.stats().avg_latency(),
    }
}

fn main() {
    println!("Extension — which NoC? (paper Section III-A future work)");
    println!("Equal-port shootout: behavioural cycles x modelled frequency = effective rate.\n");

    let packets = 20_000usize;
    for hotspot in [false, true] {
        let label = if hotspot {
            "hotspot (20% to one port)"
        } else {
            "uniform random"
        };
        let mut rows = Vec::new();
        for ports in [64usize, 256] {
            let pattern = traffic(ports, packets, hotspot, 0xC0FFEE + ports as u64);
            let nets: [(&str, InterconnectKind, Option<Outcome>); 4] = [
                (
                    "Crossbar",
                    InterconnectKind::Crossbar,
                    max_frequency_mhz(InterconnectKind::Crossbar, ports)
                        .is_routed()
                        .then(|| drive_crossbar(ports, &pattern)),
                ),
                (
                    "Butterfly",
                    InterconnectKind::Benes,
                    max_frequency_mhz(InterconnectKind::Benes, ports)
                        .is_routed()
                        .then(|| drive_butterfly(ports, &pattern)),
                ),
                (
                    "Mesh",
                    InterconnectKind::Mesh,
                    Some(drive_grid(ports, &pattern, false)),
                ),
                (
                    "Torus",
                    InterconnectKind::Mesh,
                    Some(drive_grid(ports, &pattern, true)),
                ),
            ];
            for (name, kind, outcome) in nets {
                match outcome {
                    None => rows.push(vec![
                        ports.to_string(),
                        name.into(),
                        "route-fail".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]),
                    Some(o) => {
                        let mhz = max_frequency_mhz(kind, ports)
                            .frequency_mhz()
                            .unwrap_or(250.0);
                        let per_cycle = packets as f64 / o.cycles as f64;
                        let eff = per_cycle * mhz * 1e6 / 1e9;
                        rows.push(vec![
                            ports.to_string(),
                            name.into(),
                            format!("{:.2}", per_cycle),
                            format!("{mhz:.0} MHz"),
                            format!("{eff:.2} Gpkt/s"),
                            format!("{:.1} cyc", o.avg_latency),
                        ]);
                    }
                }
            }
        }
        print_table(
            &format!("20k updates, {label}"),
            &[
                "ports",
                "network",
                "pkts/cycle",
                "fmax",
                "effective",
                "latency",
            ],
            &rows,
        );
    }
    println!("\nReading: the crossbar moves the most packets per cycle but its frequency");
    println!("collapse (and 256-port route failure) hands the *effective* crown to the");
    println!("mesh family — the paper's scalability argument, now quantified across four");
    println!("topologies. The torus buys ~20% lower latency than the mesh for wrap links.");
}
