//! Table II: per-iteration communication volume of the three mappings —
//! measured counters from the cycle simulator next to the analytic
//! O-estimates.
//!
//! Paper: SOM scatters O(M·√K); ROM halves that; DOM scatters nothing but
//! pays O(N·K) in Apply (plus O(N·K + M) off-chip).

use scalagraph::{Mapping, ScalaGraphConfig};
use scalagraph_bench::runners::run_scalagraph;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(2048);
    println!("Table II — communication volume per mapping (1 PageRank pass at 1/{scale})");

    let prep = prepare(Dataset::Pokec, Workload::PageRank, scale, 42);
    let k = 512usize;
    let n = prep.graph.num_vertices() as u64;
    let m = prep.graph.num_edges() as u64;

    let mut rows = Vec::new();
    for mapping in Mapping::ALL {
        let mut cfg = ScalaGraphConfig::scalagraph_512();
        cfg.mapping = mapping;
        let metrics = run_scalagraph(&prep, Workload::PageRank, cfg);
        let est = mapping.estimate(k, n, m);
        // The simulator runs PAGERANK_ITERATIONS passes; normalize hops to
        // one iteration for comparison with the per-iteration estimate.
        let per_iter = metrics.noc_hops / metrics.iterations.max(1);
        rows.push(vec![
            mapping.to_string(),
            per_iter.to_string(),
            format!("{:.0}", est.scatter + est.apply),
            format!("O({})", analytic_label(mapping)),
        ]);
    }
    print_table(
        &format!("Measured vs analytic on-chip traffic (K={k}, N={n}, M={m})"),
        &[
            "mapping",
            "measured hops/iter",
            "analytic estimate",
            "asymptotic",
        ],
        &rows,
    );
    println!("\nNote: the analytic column uses the Table II formulas with unit constants;");
    println!("shape (ROM < SOM, DOM Apply-dominated) is the reproduction target, not the");
    println!("absolute magnitudes.");
}

fn analytic_label(m: Mapping) -> &'static str {
    match m {
        Mapping::SourceOriented => "M*sqrt(K) + N",
        Mapping::DestinationOriented => "N*K",
        Mapping::RowOriented => "M*sqrt(K)/2 + N",
    }
}
