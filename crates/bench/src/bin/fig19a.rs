//! Figure 19(a): degree-aware scheduling — performance as the maximum
//! number of simultaneously scheduled vertices sweeps 1→16.
//!
//! Paper shape: monotone improvement, 1.02–1.28× at 16; lower-degree
//! graphs benefit more.

use scalagraph::ScalaGraphConfig;
use scalagraph_bench::runners::run_scalagraph;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(2048);
    println!("Figure 19(a) — degree-aware scheduling sweep; PageRank at 1/{scale}");

    let widths = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for dataset in Dataset::EVALUATION {
        let prep = prepare(dataset, Workload::PageRank, scale, 42);
        let mut row = vec![dataset.to_string()];
        let mut base = 0.0;
        for &w in &widths {
            let mut cfg = ScalaGraphConfig::scalagraph_512();
            cfg.max_scheduled_vertices = w;
            let m = run_scalagraph(&prep, Workload::PageRank, cfg);
            if w == 1 {
                base = m.seconds;
            }
            row.push(format!("{:.2}x", base / m.seconds));
        }
        rows.push(row);
    }
    print_table(
        "Speedup over scheduling one vertex at a time",
        &["graph", "1", "2", "4", "8", "16"],
        &rows,
    );
}
