//! Figure 20: average PE utilization of ScalaGraph-128 against
//! GraphDynS-128 (the mesh-free comparison, to isolate load balance).
//!
//! Paper shape: ScalaGraph 87.2% mean vs GraphDynS 92.3% — slightly lower
//! because central mesh routers congest, but close enough that the higher
//! clock wins overall.

use scalagraph::ScalaGraphConfig;
use scalagraph_baselines::GraphDynsConfig;
use scalagraph_bench::runners::{run_graphdyns, run_scalagraph};
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(2048);
    println!("Figure 20 — PE utilization during PageRank at 1/{scale}");

    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    let mut rows = Vec::new();
    let mut sums = (0.0, 0.0);
    for dataset in Dataset::EVALUATION {
        let prep = prepare(dataset, Workload::PageRank, scale, 42);
        let sg = run_scalagraph(
            &prep,
            Workload::PageRank,
            ScalaGraphConfig::scalagraph_128(),
        );
        let gd = run_graphdyns(&prep, Workload::PageRank, GraphDynsConfig::graphdyns_128());
        sums.0 += sg.pe_utilization;
        sums.1 += gd.pe_utilization;
        rows.push(vec![
            dataset.to_string(),
            pct(sg.pe_utilization),
            pct(gd.pe_utilization),
        ]);
    }
    let n = Dataset::EVALUATION.len() as f64;
    rows.push(vec!["mean".into(), pct(sums.0 / n), pct(sums.1 / n)]);
    print_table(
        "PE utilization (paper means: ScalaGraph 87.2%, GraphDynS 92.3%)",
        &["graph", "ScalaGraph-128", "GraphDynS-128"],
        &rows,
    );
}
