//! Figure 8: maximum frequency of four interconnects (crossbar, multi-stage
//! crossbar, Benes, 2D mesh) as the PE count grows from 4 to 1,024.
//!
//! Paper shape: the crossbar collapses fastest and route-fails at 256 PEs;
//! Benes and the multi-stage crossbar degrade more slowly but fail at 512;
//! the mesh holds near-300 MHz through 1,024 PEs.

use scalagraph_bench::print_table;
use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind};

fn main() {
    println!("Figure 8 — interconnect frequency vs PE count (modelled U280 synthesis)");
    let kinds = [
        ("Crossbar", InterconnectKind::Crossbar),
        (
            "MultiStage(x2)",
            InterconnectKind::MultiStageCrossbar { mux: 2 },
        ),
        ("Benes", InterconnectKind::Benes),
        ("Mesh", InterconnectKind::Mesh),
    ];
    let pes = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024];
    let rows: Vec<Vec<String>> = pes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for (_, k) in kinds {
                row.push(match max_frequency_mhz(k, n).frequency_mhz() {
                    Some(f) => format!("{f:.0} MHz"),
                    None => "route-fail".to_string(),
                });
            }
            row
        })
        .collect();
    print_table(
        "Max frequency",
        &["PEs", "Crossbar", "MultiStage(x2)", "Benes", "Mesh"],
        &rows,
    );
}
