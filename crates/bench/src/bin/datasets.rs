//! `bench_datasets` — paper-scale dataset generation, packing, and
//! zero-copy loading.
//!
//! Exercises the full dataset pipeline this repo uses to stand in for the
//! paper's Table III graphs, at real sizes:
//!
//! 1. **Generation**: serial reference vs chunk-parallel generator for a
//!    ladder of presets up to the full LiveJournal stand-in (68.9M edges),
//!    asserting nothing — the unit suites prove bit-identity — but timing
//!    both paths in the same process so the speedup ratio is fair on a
//!    noisy host.
//! 2. **Packing**: delta+varint container size vs the resident CSR, per
//!    preset (the <60% acceptance line lives here).
//! 3. **Cold-open**: `PackedCsr::open` of the largest preset (header +
//!    checksum + structure-only walk) against regenerating the same graph
//!    from its spec (serial generation + CSR build), measured in one run.
//! 4. **End-to-end**: one BFS simulation on the in-memory `Csr` vs the
//!    same graph through the `PackedCsr` read path, asserting bit-identical
//!    `SimStats` and final properties.
//!
//! All regression gates are *ratios* (gen speedup, pack ratio, cold-open
//! speedup), so a slower or faster host does not trip them.
//!
//! ```text
//! bench_datasets [--out <path>] [--check <path>]
//!   --out <path>     where to write the JSON        [BENCH_datasets.json]
//!   --check <path>   compare against a previous JSON and exit nonzero if
//!                    the pack ratio worsened >10%, or the gen/cold-open
//!                    speedups fell below half their recorded values
//! ```

use scalagraph::{ScalaGraphConfig, Simulator};
use scalagraph_algo::algorithms::Bfs;
use scalagraph_graph::{packed, Csr, Dataset, PackedCsr};
use std::time::Instant;

const SEED: u64 = 42;

/// Generation/packing ladder: `(dataset, scale)` where the preset is the
/// paper graph at `1/scale`. The *largest* entry (by edges) doubles as the
/// cold-open subject and runs FIRST, on a fresh heap: multi-hundred-MB
/// alloc/free churn from earlier presets costs the later ones their huge
/// pages, and at LiveJournal scale the sampler's 65 MB working set then
/// pays a TLB walk per access — a 1.4x slowdown that has nothing to do
/// with the code under test. Full LiveJournal is the deliberate top:
/// among the paper's six datasets it sits in the middle (Pokec and
/// Flickr below it, Orkut/RMAT24/Twitter above), so it is the honest
/// "mid-scale" graph that still regenerates slowly enough for the
/// cold-open comparison to mean something.
const PRESETS: &[(Dataset, u64)] = &[
    (Dataset::LiveJournal, 1),
    (Dataset::Pokec, 1),
    (Dataset::Rmat24, 64),
    (Dataset::Pokec, 8),
];

/// Preset for the end-to-end simulation comparison: small enough that a
/// full device simulation completes in seconds.
const SIM_DATASET: Dataset = Dataset::Pokec;
const SIM_SCALE: u64 = 256;
const SIM_REPS: u32 = 3;

struct PresetResult {
    label: String,
    vertices: usize,
    edges: usize,
    serial_gen_s: f64,
    parallel_gen_s: f64,
    gen_speedup: f64,
    raw_csr_bytes: u64,
    packed_bytes: u64,
    pack_ratio: f64,
    bytes_per_edge: f64,
    /// Serial generation + CSR build: what a cache miss on this spec costs
    /// without a packed file.
    regen_s: f64,
}

fn label_of(dataset: Dataset, scale: u64) -> String {
    format!("{dataset}/{scale}")
}

/// Generation timing reps per preset (aligned with [`PRESETS`]). The host
/// this runs on can drift >2x in effective speed on minute timescales,
/// which is the length of one large-preset generation leg — a single
/// parallel/serial pair can land in different regimes and report a
/// nonsense ratio in either direction. Alternating the legs and taking
/// the min of each side makes both numbers converge to the fast-regime
/// cost, so their ratio measures the code, not the weather. The parallel
/// sampler is the more contention-sensitive side (its win is overlapped
/// cache misses, which a saturated memory bus re-serializes), so the
/// largest preset gets an extra rep to find a quiet window.
const GEN_REPS: &[u32] = &[3, 2, 2, 2];

/// Times one preset through generation (alternating parallel/serial legs,
/// min of each — see [`GEN_REPS`]; each list is dropped before the next
/// leg so no leg pays another's resident footprint) and packing.
fn run_preset(dataset: Dataset, scale: u64, reps: u32) -> PresetResult {
    let label = label_of(dataset, scale);

    let mut parallel_gen_s = f64::MAX;
    let mut serial_gen_s = f64::MAX;
    let mut vertices = 0;
    let mut edges = 0;
    let mut kept = None;
    for _ in 0..reps {
        let start = Instant::now();
        let parallel = dataset.edge_list(scale, SEED);
        parallel_gen_s = parallel_gen_s.min(start.elapsed().as_secs_f64());
        (vertices, edges) = (parallel.num_vertices(), parallel.len());
        drop(parallel);

        let start = Instant::now();
        let serial = dataset.edge_list_serial(scale, SEED);
        serial_gen_s = serial_gen_s.min(start.elapsed().as_secs_f64());
        kept = Some(serial);
    }
    let serial = kept.expect("every preset has at least one rep");

    let start = Instant::now();
    let graph = Csr::from_edge_list(&serial);
    let build_s = start.elapsed().as_secs_f64();
    drop(serial);

    let raw_csr_bytes = graph.storage_bytes();
    let container = packed::pack_to_vec(&graph, packed::DEFAULT_BLOCK_SIZE);
    let packed_bytes = container.len() as u64;

    let result = PresetResult {
        label,
        vertices,
        edges,
        serial_gen_s,
        parallel_gen_s,
        gen_speedup: serial_gen_s / parallel_gen_s.max(1e-9),
        raw_csr_bytes,
        packed_bytes,
        pack_ratio: packed_bytes as f64 / raw_csr_bytes as f64,
        bytes_per_edge: packed_bytes as f64 / edges.max(1) as f64,
        regen_s: serial_gen_s + build_s,
    };
    println!(
        "  {:>6}: |V|={:>9} |E|={:>9}  gen serial {:7.2}s / parallel {:7.2}s ({:.2}x)  \
         pack {:5.1}% of CSR ({:.2} B/edge)",
        result.label,
        vertices,
        edges,
        serial_gen_s,
        parallel_gen_s,
        result.gen_speedup,
        result.pack_ratio * 100.0,
        result.bytes_per_edge,
    );
    result
}

struct ColdOpen {
    open_ms: f64,
    open_to_csr_ms: f64,
    speedup: f64,
}

/// Cold-open of the largest preset: write the container, then time
/// `PackedCsr::open` (min of three, after one warm-up so the page cache —
/// not the disk — is the backing, which is the steady state a cache
/// daemon sees) against the in-run regeneration cost of the same spec.
fn run_cold_open(dataset: Dataset, scale: u64, regen_s: f64) -> ColdOpen {
    let graph = dataset.generate(scale, SEED);
    let path = std::env::temp_dir().join(format!("scalagraph-bench-{}.sgpk", std::process::id()));
    packed::write_packed(&graph, &path, packed::DEFAULT_BLOCK_SIZE).expect("write container");
    drop(graph);

    let timed_open = || {
        let start = Instant::now();
        let p = PackedCsr::open(&path).expect("open container");
        let secs = start.elapsed().as_secs_f64();
        (secs, p)
    };
    let _ = timed_open(); // warm the page cache
    let mut open_s = f64::MAX;
    for _ in 0..3 {
        open_s = open_s.min(timed_open().0);
    }
    let (_, p) = timed_open();
    let start = Instant::now();
    let csr = p.to_csr().expect("container round-trips");
    let to_csr_s = start.elapsed().as_secs_f64();
    assert_eq!(csr.num_edges(), p.num_edges());
    drop(csr);
    drop(p);
    std::fs::remove_file(&path).expect("remove temp container");

    let cold = ColdOpen {
        open_ms: open_s * 1e3,
        open_to_csr_ms: (open_s + to_csr_s) * 1e3,
        speedup: regen_s / open_s.max(1e-9),
    };
    println!(
        "  cold-open {}: open {:.0} ms (+to_csr {:.0} ms) vs regen {:.1}s -> {:.0}x",
        label_of(dataset, scale),
        cold.open_ms,
        cold.open_to_csr_ms,
        regen_s,
        cold.speedup,
    );
    cold
}

struct EndToEnd {
    csr_wall_ms: f64,
    packed_wall_ms: f64,
    cycles: u64,
}

/// One BFS device simulation on both graph backings, bit-identity
/// asserted on every run.
fn run_end_to_end() -> EndToEnd {
    let graph = SIM_DATASET.generate(SIM_SCALE, SEED);
    let packed_graph =
        PackedCsr::from_bytes(packed::pack_to_vec(&graph, packed::DEFAULT_BLOCK_SIZE))
            .expect("pack round-trips");
    let root = Dataset::pick_root(&graph);
    let algo = Bfs::from_root(root);
    let cfg = ScalaGraphConfig::with_pes(64);

    let reference = Simulator::try_new(&algo, &graph, cfg.clone())
        .and_then(|mut s| s.try_run())
        .expect("bench sim must converge");

    let timed = |on_packed: bool| {
        let start = Instant::now();
        for _ in 0..SIM_REPS {
            let result = if on_packed {
                Simulator::try_new(&algo, &packed_graph, cfg.clone())
                    .and_then(|mut s| s.try_run())
                    .expect("packed-backed sim must converge")
            } else {
                Simulator::try_new(&algo, &graph, cfg.clone())
                    .and_then(|mut s| s.try_run())
                    .expect("csr-backed sim must converge")
            };
            assert_eq!(
                result.stats, reference.stats,
                "graph backing changed simulation statistics"
            );
            assert_eq!(
                result.properties, reference.properties,
                "graph backing changed algorithm results"
            );
        }
        start.elapsed().as_secs_f64() * 1e3 / f64::from(SIM_REPS)
    };
    let csr_wall_ms = timed(false);
    let packed_wall_ms = timed(true);

    println!(
        "  end-to-end BFS {}: csr {:.1} ms/run, packed {:.1} ms/run, {} cycles, bit-identical",
        label_of(SIM_DATASET, SIM_SCALE),
        csr_wall_ms,
        packed_wall_ms,
        reference.stats.cycles,
    );
    EndToEnd {
        csr_wall_ms,
        packed_wall_ms,
        cycles: reference.stats.cycles,
    }
}

/// Extracts `"key": <number>` from a previous report. Hand-rolled because
/// the JSON is ours and the keys are unique at top level.
fn read_number(text: &str, key: &str) -> Option<f64> {
    let after = text.split(&format!("\"{key}\":")).nth(1)?;
    after
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let mut out_path = "BENCH_datasets.json".to_string();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            other => panic!("unknown flag `{other}`"),
        }
    }

    println!("dataset ladder ({} presets):", PRESETS.len());
    let results: Vec<PresetResult> = PRESETS
        .iter()
        .zip(GEN_REPS)
        .map(|(&(dataset, scale), &reps)| run_preset(dataset, scale, reps))
        .collect();

    let (largest_idx, largest) = results
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.edges)
        .expect("preset ladder is not empty");
    let largest_gen_speedup = largest.gen_speedup;
    let worst_pack_ratio = results.iter().map(|r| r.pack_ratio).fold(0.0, f64::max);

    let (cold_dataset, cold_scale) = PRESETS[largest_idx];
    let cold = run_cold_open(cold_dataset, cold_scale, largest.regen_s);
    let e2e = run_end_to_end();

    let preset_lines: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{ \"label\": \"{}\", \"vertices\": {}, \"edges\": {}, \
                 \"serial_gen_s\": {:.3}, \"parallel_gen_s\": {:.3}, \"gen_speedup\": {:.3}, \
                 \"raw_csr_bytes\": {}, \"packed_bytes\": {}, \"pack_ratio\": {:.4}, \
                 \"bytes_per_edge\": {:.3} }}",
                r.label,
                r.vertices,
                r.edges,
                r.serial_gen_s,
                r.parallel_gen_s,
                r.gen_speedup,
                r.raw_csr_bytes,
                r.packed_bytes,
                r.pack_ratio,
                r.bytes_per_edge,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"presets\": [\n{presets}\n  ],\n  \
         \"largest_preset\": \"{lp}\",\n  \
         \"largest_gen_speedup\": {lgs:.3},\n  \
         \"worst_pack_ratio\": {wpr:.4},\n  \
         \"cold_open\": {{ \"preset\": \"{lp}\", \"regen_s\": {rg:.3}, \
         \"open_ms\": {om:.1}, \"open_to_csr_ms\": {oc:.1} }},\n  \
         \"cold_open_speedup\": {cos:.1},\n  \
         \"end_to_end\": {{ \"preset\": \"{sp}\", \"algo\": \"bfs\", \
         \"csr_wall_ms\": {cw:.2}, \"packed_wall_ms\": {pw:.2}, \
         \"cycles\": {cy}, \"bit_identical\": true }}\n}}\n",
        presets = preset_lines.join(",\n"),
        lp = largest.label,
        lgs = largest_gen_speedup,
        wpr = worst_pack_ratio,
        rg = largest.regen_s,
        om = cold.open_ms,
        oc = cold.open_to_csr_ms,
        cos = cold.speedup,
        sp = label_of(SIM_DATASET, SIM_SCALE),
        cw = e2e.csr_wall_ms,
        pw = e2e.packed_wall_ms,
        cy = e2e.cycles,
    );
    std::fs::write(&out_path, json).expect("could not write report");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let mut failed = false;
        // (key, old -> bound, new value, direction). Every gate is a
        // ratio, so host speed cancels out of the comparison.
        let gates = [
            (
                "worst_pack_ratio",
                read_number(&text, "worst_pack_ratio").map(|v| v * 1.10),
                worst_pack_ratio,
                "above",
            ),
            (
                "largest_gen_speedup",
                read_number(&text, "largest_gen_speedup").map(|v| v * 0.5),
                largest_gen_speedup,
                "below",
            ),
            (
                "cold_open_speedup",
                read_number(&text, "cold_open_speedup").map(|v| v * 0.5),
                cold.speedup,
                "below",
            ),
        ];
        for (key, bound, new, direction) in gates {
            let bound = bound.unwrap_or_else(|| panic!("no {key} in {path}"));
            println!("regression check [{key}] vs {path}: bound {bound:.3} ({direction}), measured {new:.3}");
            let tripped = match direction {
                "above" => new > bound,
                _ => new < bound,
            };
            if tripped {
                eprintln!("error: {key} regressed {direction} its bound vs {path}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("regression checks passed");
    }
}
