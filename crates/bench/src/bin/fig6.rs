//! Figure 6: overheads of naively dropping a mesh NoC into a graph
//! accelerator — increased on-chip communications and load imbalance.
//!
//! The paper measures a ~6.9× slowdown from mesh communications plus a
//! further ~1.74× from power-law load imbalance when running PageRank on a
//! 16×16 mesh without ScalaGraph's co-designs. We reproduce the
//! decomposition in two steps: (1) a naive mesh (source-oriented mapping,
//! no aggregation) against an idealized iso-frequency crossbar on the same
//! graph; and (2) the *extra* naive-mesh penalty a power-law graph pays
//! over a degree-uniform twin with identical vertex/edge counts — the
//! load-imbalance component.

use scalagraph::{Mapping, ScalaGraphConfig};
use scalagraph_algo::algorithms::PageRank;
use scalagraph_baselines::{GraphDyns, GraphDynsConfig};
use scalagraph_bench::{print_table, ratio, scale_or};
use scalagraph_graph::{generators, Csr, Dataset};

fn naive_mesh_config() -> ScalaGraphConfig {
    let mut cfg = ScalaGraphConfig::with_pes(256);
    cfg.mapping = Mapping::SourceOriented;
    cfg.aggregation_registers = 0;
    cfg.clock_mhz = Some(250.0);
    cfg
}

fn ideal_config() -> GraphDynsConfig {
    let mut cfg = GraphDynsConfig::with_pes(256);
    cfg.pes_per_tile = 256;
    cfg.clock_mhz = Some(250.0);
    cfg
}

fn cycles_naive(graph: &Csr, algo: &PageRank) -> u64 {
    scalagraph::run_on(algo, graph, naive_mesh_config())
        .stats
        .cycles
}

fn cycles_ideal(graph: &Csr, algo: &PageRank) -> u64 {
    GraphDyns::new(ideal_config()).run(algo, graph).stats.cycles
}

fn main() {
    let scale = scale_or(2048);
    println!("Figure 6 — cost of a naive mesh (PageRank at 1/{scale}, 256 PEs, iso-frequency)");

    let algo = PageRank::new(2);
    let mut rows = Vec::new();
    for dataset in Dataset::MOTIVATION {
        let graph = dataset.generate(scale, 42);
        // A degree-uniform twin: same |V| and |E|, no skew.
        let twin = Csr::from_edges(
            graph.num_vertices(),
            &generators::uniform(graph.num_vertices(), graph.num_edges(), 42),
        );

        let comm = cycles_naive(&twin, &algo) as f64 / cycles_ideal(&twin, &algo) as f64;
        let naive_skew = cycles_naive(&graph, &algo) as f64 / cycles_ideal(&graph, &algo) as f64;
        let imbalance = naive_skew / comm;

        rows.push(vec![
            dataset.to_string(),
            ratio(comm),
            ratio(imbalance),
            ratio(naive_skew),
        ]);
    }
    print_table(
        "Naive-mesh slowdown vs idealized crossbar (paper: ~6.9x comm, ~1.74x further imbalance)",
        &[
            "graph",
            "mesh comm (uniform twin)",
            "x power-law imbalance",
            "total",
        ],
        &rows,
    );
}
