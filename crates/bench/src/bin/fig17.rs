//! Figure 17: effectiveness of the row-oriented mapping (ROM) against
//! source-oriented (SOM) and destination-oriented (DOM) mappings, running
//! PageRank (all edges active) on the five evaluation graphs.
//!
//! Paper shape: ROM cuts NoC communications by ~61.7% versus SOM (routing
//! latency 15.6 → 5.9 cycles) and by 28.6–67.0% versus DOM, and runs ~2.6×
//! faster than SOM; higher-average-degree graphs gain less over DOM.

use scalagraph::{Mapping, ScalaGraphConfig};
use scalagraph_bench::runners::run_scalagraph;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{f2, print_table, ratio, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(2048);
    println!("Figure 17 — mapping ablation; PageRank on evaluation graphs at 1/{scale}");

    let mut rows = Vec::new();
    let mut lat = (0.0, 0.0, 0.0);
    let mut n = 0.0;
    for dataset in Dataset::EVALUATION {
        let prep = prepare(dataset, Workload::PageRank, scale, 42);
        let mut metrics = Vec::new();
        for mapping in Mapping::ALL {
            let mut cfg = ScalaGraphConfig::scalagraph_512();
            cfg.mapping = mapping;
            metrics.push(run_scalagraph(&prep, Workload::PageRank, cfg));
        }
        let (som, dom, rom) = (&metrics[0], &metrics[1], &metrics[2]);
        lat.0 += som.avg_routing_latency;
        lat.1 += dom.avg_routing_latency;
        lat.2 += rom.avg_routing_latency;
        n += 1.0;
        rows.push(vec![
            dataset.to_string(),
            som.noc_hops.to_string(),
            dom.noc_hops.to_string(),
            rom.noc_hops.to_string(),
            format!(
                "-{:.1}%",
                100.0 * (1.0 - rom.noc_hops as f64 / som.noc_hops.max(1) as f64)
            ),
            ratio(som.seconds / rom.seconds),
            ratio(dom.seconds / rom.seconds),
        ]);
    }
    print_table(
        "NoC communications (link traversals) and speedups",
        &[
            "graph",
            "SOM hops",
            "DOM hops",
            "ROM hops",
            "ROM vs SOM",
            "ROM speedup vs SOM",
            "ROM speedup vs DOM",
        ],
        &rows,
    );
    println!(
        "\nMean routing latency (cycles): SOM {} | DOM {} | ROM {}  (paper: SOM 15.6 -> ROM 5.9)",
        f2(lat.0 / n),
        f2(lat.1 / n),
        f2(lat.2 / n)
    );
}
