//! Table IV: maximum frequency of ScalaGraph (mesh) against GraphDynS
//! (crossbar) from 32 to 1,024 PEs.
//!
//! Paper values (MHz): ScalaGraph 304/293/292/285/274/258, GraphDynS
//! 270/227/112/−/−/−.

use scalagraph_bench::print_table;
use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind};

fn main() {
    println!("Table IV — maximal frequency (MHz); '-' denotes synthesis failure");
    let pes = [32usize, 64, 128, 256, 512, 1024];
    let paper_sg = [304.0, 293.0, 292.0, 285.0, 274.0, 258.0];
    let paper_gd = [Some(270.0), Some(227.0), Some(112.0), None, None, None];

    let fmt = |o: Option<f64>| o.map_or("-".to_string(), |f| format!("{f:.0}"));
    let rows: Vec<Vec<String>> = pes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                fmt(max_frequency_mhz(InterconnectKind::Mesh, n).frequency_mhz()),
                format!("{:.0}", paper_sg[i]),
                fmt(max_frequency_mhz(InterconnectKind::Crossbar, n).frequency_mhz()),
                fmt(paper_gd[i]),
            ]
        })
        .collect();
    print_table(
        "Max frequency",
        &[
            "PEs",
            "ScalaGraph (model)",
            "ScalaGraph (paper)",
            "GraphDynS (model)",
            "GraphDynS (paper)",
        ],
        &rows,
    );
}
