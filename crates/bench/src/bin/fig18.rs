//! Figure 18: effectiveness of the update-aggregation pipeline — (a) NoC
//! communications as the register count sweeps 0→20, and (b) speedup with
//! 16 registers versus none.
//!
//! Paper shape: communications drop by up to ~50% as registers grow, with
//! diminishing returns past ~12–16; aggregation yields ~1.57× speedup.

use scalagraph::ScalaGraphConfig;
use scalagraph_bench::runners::run_scalagraph;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, ratio, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(2048);
    println!("Figure 18 — update aggregation; PageRank at 1/{scale}");

    let registers = [0usize, 4, 8, 12, 16, 20];
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for dataset in Dataset::EVALUATION {
        let prep = prepare(dataset, Workload::PageRank, scale, 42);
        let mut row = vec![dataset.to_string()];
        let mut base_hops = 0u64;
        let mut base_secs = 0.0;
        let mut secs16 = 0.0;
        for &regs in &registers {
            let mut cfg = ScalaGraphConfig::scalagraph_512();
            cfg.aggregation_registers = regs;
            let m = run_scalagraph(&prep, Workload::PageRank, cfg);
            if regs == 0 {
                base_hops = m.noc_hops.max(1);
                base_secs = m.seconds;
            }
            if regs == 16 {
                secs16 = m.seconds;
            }
            row.push(format!("{:.2}", m.noc_hops as f64 / base_hops as f64));
        }
        speedups.push((dataset.to_string(), base_secs / secs16));
        rows.push(row);
    }
    print_table(
        "(a) NoC communications normalized to 0 registers",
        &["graph", "0", "4", "8", "12", "16", "20"],
        &rows,
    );

    let rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|(g, s)| vec![g.clone(), ratio(*s)])
        .collect();
    print_table(
        "(b) Speedup of 16 registers over none (paper mean: 1.57x)",
        &["graph", "speedup"],
        &rows,
    );
}
