//! Developer probe 2: parameter sensitivity of ScalaGraph-512 on one
//! workload, to locate the binding constraint. Not part of the paper
//! reproduction.

use scalagraph::{MemoryPreset, ScalaGraphConfig, Simulator};
use scalagraph_algo::algorithms::PageRank;
use scalagraph_bench::scale_or;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(512);
    let prep = prepare(Dataset::Twitter, Workload::PageRank, scale, 42);
    // link width sensitivity

    let algo = PageRank::new(2);
    println!(
        "TW 1/{scale}: |V|={} |E|={}",
        prep.graph.num_vertices(),
        prep.graph.num_edges()
    );
    let base = ScalaGraphConfig::scalagraph_512();
    let variants: Vec<(&str, ScalaGraphConfig)> = vec![
        ("baseline", base.clone()),
        ("link width 1", {
            let mut c = base.clone();
            c.link_width = 1;
            c
        }),
        ("link width 2", {
            let mut c = base.clone();
            c.link_width = 2;
            c
        }),
        ("link width 2 agg0", {
            let mut c = base.clone();
            c.link_width = 2;
            c.aggregation_registers = 0;
            c
        }),
        ("link width 4", {
            let mut c = base.clone();
            c.link_width = 4;
            c
        }),
        ("link width 4 agg0", {
            let mut c = base.clone();
            c.link_width = 4;
            c.aggregation_registers = 0;
            c
        }),
        ("unlimited memory", {
            let mut c = base.clone();
            c.memory = MemoryPreset::Unlimited;
            c
        }),
        ("link width 32", {
            let mut c = base.clone();
            c.link_width = 32;
            c
        }),
        ("agg regs 64", {
            let mut c = base.clone();
            c.aggregation_registers = 64;
            c
        }),
        ("gu queue 32", {
            let mut c = base.clone();
            c.gu_queue_capacity = 32;
            c
        }),
        ("router queue 32", {
            let mut c = base.clone();
            c.router_queue_capacity = 32;
            c
        }),
        ("all of the above", {
            let mut c = base.clone();
            c.memory = MemoryPreset::Unlimited;
            c.link_width = 32;
            c.aggregation_registers = 64;
            c.gu_queue_capacity = 32;
            c.router_queue_capacity = 32;
            c
        }),
    ];
    for (name, cfg) in variants {
        let clock = cfg.effective_clock_mhz();
        let r = Simulator::new(&algo, &prep.graph, cfg).run();
        let s = r.stats;
        println!(
            "{name:<18} cyc={:>8} gteps={:>6.1} util={:.2} conf={:>9} lat={:>5.1} merges={:>8} bw={:.2} vl={} el={} pig={} starve={:.2}",
            s.cycles,
            s.gteps(clock),
            s.pe_utilization(),
            s.noc_conflicts,
            s.avg_routing_latency(),
            s.agg_merges,
            s.offchip_bytes() as f64 / (s.cycles as f64 * 1840.0),
            s.vpref_lines,
            s.epref_lines,
            s.epref_piggybacks,
            s.dispatch_starved_row_cycles as f64 / (s.scatter_cycles as f64 * 32.0)
        );
    }
}
