//! Developer probe: dumps detailed counters for one configuration to find
//! bottlenecks. Not part of the paper reproduction.

use scalagraph::{ScalaGraphConfig, Simulator};
use scalagraph_algo::algorithms::PageRank;
use scalagraph_baselines::{GraphDyns, GraphDynsConfig};
use scalagraph_bench::scale_or;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(1024);
    for dataset in [Dataset::Orkut, Dataset::Rmat24, Dataset::Pokec] {
        let prep = prepare(dataset, Workload::PageRank, scale, 42);
        let algo = PageRank::new(2);
        println!(
            "\n=== {dataset} |V|={} |E|={} maxdeg={}",
            prep.graph.num_vertices(),
            prep.graph.num_edges(),
            prep.graph
                .vertices()
                .map(|v| prep.graph.out_degree(v))
                .max()
                .unwrap()
        );
        for pes in [128usize, 512] {
            let cfg = ScalaGraphConfig::with_pes(pes);
            let clock = cfg.effective_clock_mhz();
            let r = Simulator::new(&algo, &prep.graph, cfg).run();
            let s = r.stats;
            println!(
                "SG-{pes}: cyc={} sc={} ap={} util={:.2} gteps={:.1} hops={} conf={} lat={:.1} merges={} bw_util={:.2}",
                s.cycles,
                s.scatter_cycles,
                s.apply_cycles,
                s.pe_utilization(),
                s.gteps(clock),
                s.noc_hops,
                s.noc_conflicts,
                s.avg_routing_latency(),
                s.agg_merges,
                s.offchip_bytes() as f64 / (s.cycles as f64 * 1840.0)
            );
        }
        for (name, cfg) in [
            ("GD-128", GraphDynsConfig::graphdyns_128()),
            ("GD-512", GraphDynsConfig::graphdyns_512()),
        ] {
            let clock = cfg.effective_clock_mhz();
            let r = GraphDyns::new(cfg).run(&algo, &prep.graph);
            let s = r.stats;
            println!(
                "{name}: cyc={} sc={} ap={} util={:.2} gteps={:.1} hops={} conf={} merges={}",
                s.cycles,
                s.scatter_cycles,
                s.apply_cycles,
                s.pe_utilization(),
                s.gteps(clock),
                s.noc_hops,
                s.noc_conflicts,
                s.agg_merges,
            );
        }
    }
}
