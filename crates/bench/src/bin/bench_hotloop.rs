//! `bench_hotloop` — end-to-end timing of the hot-loop optimisations.
//!
//! Runs a fixed R-MAT workload through an HBM-latency sensitivity sweep
//! three times: sequentially with fast-forward off (the pre-optimisation
//! baseline), on the thread pool with idle-cycle fast-forward, and on the
//! thread pool with the event-driven stepping core. Asserts all three
//! sweeps produce bit-identical metrics, then writes `BENCH_hotloop.json`
//! reporting simulated-cycles/sec, sweep wall-clock, the end-to-end
//! speedups, and — per configuration — the busy-cycle fraction (the share
//! of unit-visits the event core actually executed) plus single-threaded
//! fast-forward vs event-driven cycles/sec. Busy-dominated configurations
//! are exactly where whole-device fast-forward stops helping and per-unit
//! skipping has to carry the win.
//!
//! ```text
//! bench_hotloop [--out <path>] [--check <path>] [--threads <n>]
//!   --out <path>     where to write the JSON        [BENCH_hotloop.json]
//!   --check <path>   compare against a previously written JSON and exit
//!                    nonzero if optimized or event-driven cycles/sec
//!                    regressed >20%
//!   --threads <n>    worker threads for the parallel sweeps [all cores]
//! ```

use scalagraph::telemetry::Recorder;
use scalagraph::{MemoryPreset, ScalaGraphConfig, Simulator};
use scalagraph_algo::algorithms::Bfs;
use scalagraph_bench::runners::{sweep_scalagraph_with, SweepRecord};
use scalagraph_bench::sweep::default_threads;
use scalagraph_bench::workloads::{PreparedGraph, Workload};
use scalagraph_graph::{generators, Csr, Dataset};
use scalagraph_mem::HbmConfig;
use std::time::Instant;

/// Fixed workload: every run of this binary simulates exactly this graph.
const RMAT_VERTICES: usize = 4096;
const RMAT_EDGES: usize = 16384;
const RMAT_SEED: u64 = 42;

/// The sweep: HBM load-to-use latency sensitivity at 512 PEs with serial
/// phases — the paper-style experiment where idle-cycle fast-forward
/// matters, because deeper memory pipelines mean longer quiescent waits.
const LATENCIES: &[u32] = &[64, 128, 256, 384, 512];

/// Repetitions for the single-threaded per-config timings.
const PER_CONFIG_REPS: u32 = 8;

fn workload() -> PreparedGraph {
    let graph = Csr::from_edges(
        RMAT_VERTICES,
        &generators::rmat(RMAT_VERTICES, RMAT_EDGES, RMAT_SEED),
    );
    let root = Dataset::pick_root(&graph);
    PreparedGraph { graph, root }
}

/// The three execution modes under comparison.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Sequential stepping, no skipping: the pre-optimisation baseline.
    Stepped,
    /// Whole-device idle-cycle fast-forward.
    FastForward,
    /// Per-unit activity calendar: step only units with scheduled work.
    EventDriven,
}

fn configs(mode: Mode) -> Vec<(String, ScalaGraphConfig)> {
    let apply = |cfg: &mut ScalaGraphConfig| {
        cfg.fast_forward = mode != Mode::Stepped;
        cfg.event_driven = mode == Mode::EventDriven;
    };
    let mut out = Vec::new();
    for &lat in LATENCIES {
        let mut cfg = ScalaGraphConfig::with_pes(512);
        cfg.inter_phase_pipelining = false;
        let mut hbm = HbmConfig::u280(cfg.effective_clock_mhz() * 1e6);
        hbm.latency_cycles = lat;
        cfg.memory = MemoryPreset::Custom(hbm);
        apply(&mut cfg);
        out.push((format!("lat{lat}"), cfg));
    }
    // One busy, pipelined configuration so the sweep also covers the case
    // whole-device fast-forward cannot help; the event core still skips
    // individual idle units there.
    let mut cfg = ScalaGraphConfig::with_pes(512);
    apply(&mut cfg);
    out.push(("u280-pipelined".to_string(), cfg));
    out
}

struct SweepTiming {
    wall_seconds: f64,
    total_cycles: u64,
    records: Vec<SweepRecord>,
}

fn timed_sweep(threads: usize, prep: &PreparedGraph, mode: Mode) -> SweepTiming {
    let start = Instant::now();
    let records = sweep_scalagraph_with(threads, prep, Workload::Bfs, configs(mode));
    let wall_seconds = start.elapsed().as_secs_f64();
    let total_cycles = records
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|m| m.cycles)
        .sum();
    SweepTiming {
        wall_seconds,
        total_cycles,
        records,
    }
}

fn cycles_per_sec(t: &SweepTiming) -> f64 {
    t.total_cycles as f64 / t.wall_seconds.max(1e-9)
}

/// Single-threaded cycles/sec of one configuration, best practice warm:
/// one untimed run, then `PER_CONFIG_REPS` timed ones.
fn config_cycles_per_sec(prep: &PreparedGraph, cfg: &ScalaGraphConfig) -> f64 {
    let algo = Bfs::from_root(prep.root);
    let run = || {
        Simulator::try_new(&algo, &prep.graph, cfg.clone())
            .and_then(|mut s| s.try_run())
            .expect("bench config must converge")
    };
    let cycles = run().stats.cycles;
    let start = Instant::now();
    for _ in 0..PER_CONFIG_REPS {
        let _ = run();
    }
    let per_run = start.elapsed().as_secs_f64() / f64::from(PER_CONFIG_REPS);
    cycles as f64 / per_run.max(1e-9)
}

/// Busy-cycle fraction of one configuration: the share of unit-visits the
/// event-driven core executed rather than proved idle, from an untimed
/// recorded run.
fn config_busy_fraction(prep: &PreparedGraph, cfg: &ScalaGraphConfig) -> f64 {
    let algo = Bfs::from_root(prep.root);
    let mut rec = Recorder::new(1000);
    Simulator::try_new(&algo, &prep.graph, cfg.clone())
        .and_then(|mut s| s.try_run_with(&mut rec))
        .expect("bench config must converge");
    rec.event_busy_fraction()
        .expect("event-driven run records busy windows")
}

/// Extracts `"cycles_per_sec": <number>` from the `section` object of a
/// previous report. Hand-rolled because the JSON is ours and flat.
fn read_section_cps(text: &str, section: &str) -> Option<f64> {
    let obj = text.split(&format!("\"{section}\"")).nth(1)?;
    let num = obj.split("\"cycles_per_sec\":").nth(1)?;
    num.trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let mut out_path = "BENCH_hotloop.json".to_string();
    let mut check_path: Option<String> = None;
    let mut threads = default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .expect("--threads needs a positive integer");
                assert!(threads > 0, "--threads needs a positive integer");
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    let prep = workload();
    println!(
        "workload: BFS on R-MAT |V|={} |E|={} (seed {}), {} configs",
        prep.graph.num_vertices(),
        prep.graph.num_edges(),
        RMAT_SEED,
        configs(Mode::FastForward).len()
    );

    // Warm-up pass so no timed sweep pays first-touch costs.
    let _ = timed_sweep(1, &prep, Mode::EventDriven);

    let baseline = timed_sweep(1, &prep, Mode::Stepped);
    let optimized = timed_sweep(threads, &prep, Mode::FastForward);
    let event = timed_sweep(threads, &prep, Mode::EventDriven);

    // The whole point: the optimisations must not change a single result.
    assert_eq!(baseline.records.len(), optimized.records.len());
    assert_eq!(baseline.records.len(), event.records.len());
    for ((b, o), ev) in baseline
        .records
        .iter()
        .zip(&optimized.records)
        .zip(&event.records)
    {
        assert_eq!(b.label, o.label);
        assert_eq!(b.label, ev.label);
        let bm = b.outcome.as_ref().expect("baseline config failed");
        let om = o.outcome.as_ref().expect("optimized config failed");
        let em = ev.outcome.as_ref().expect("event-driven config failed");
        assert_eq!(bm, om, "fast-forward metrics diverged for {}", b.label);
        assert_eq!(bm, em, "event-driven metrics diverged for {}", b.label);
    }

    // Per-config single-threaded comparison: where does per-unit skipping
    // pay beyond the whole-device jump?
    let mut per_config = Vec::new();
    for ((label, ff_cfg), (_, ev_cfg)) in configs(Mode::FastForward)
        .into_iter()
        .zip(configs(Mode::EventDriven))
    {
        let busy = config_busy_fraction(&prep, &ev_cfg);
        let ff_cps = config_cycles_per_sec(&prep, &ff_cfg);
        let ev_cps = config_cycles_per_sec(&prep, &ev_cfg);
        println!(
            "  {label:>14}: busy {:5.1}%  ff {ff_cps:>12.0} c/s  event {ev_cps:>12.0} c/s  ({:.2}x)",
            busy * 100.0,
            ev_cps / ff_cps.max(1e-9),
        );
        per_config.push((label, busy, ff_cps, ev_cps));
    }

    let speedup = baseline.wall_seconds / optimized.wall_seconds.max(1e-9);
    let event_speedup = optimized.wall_seconds / event.wall_seconds.max(1e-9);
    println!(
        "baseline (seq, stepped)  : {:8.1} ms  {:>12.0} cycles/s",
        baseline.wall_seconds * 1e3,
        cycles_per_sec(&baseline)
    );
    println!(
        "optimized (par, ff)      : {:8.1} ms  {:>12.0} cycles/s  ({threads} threads)",
        optimized.wall_seconds * 1e3,
        cycles_per_sec(&optimized)
    );
    println!(
        "event-driven (par, cal)  : {:8.1} ms  {:>12.0} cycles/s  ({threads} threads)",
        event.wall_seconds * 1e3,
        cycles_per_sec(&event)
    );
    println!("end-to-end sweep speedup: {speedup:.2}x over stepped, {event_speedup:.2}x over fast-forward (bit-identical results)");

    let mut config_lines = Vec::new();
    for (r, (label, busy, ff_cps, ev_cps)) in event.records.iter().zip(&per_config) {
        assert_eq!(&r.label, label);
        let m = r.outcome.as_ref().expect("event-driven config failed");
        config_lines.push(format!(
            "    {{ \"label\": \"{}\", \"cycles\": {}, \"traversed_edges\": {}, \
             \"busy_fraction\": {:.4}, \"ff_cycles_per_sec\": {:.0}, \
             \"event_cycles_per_sec\": {:.0} }}",
            r.label, m.cycles, m.traversed_edges, busy, ff_cps, ev_cps
        ));
    }
    let json = format!(
        "{{\n  \"workload\": \"BFS on R-MAT |V|={v} |E|={e} seed={s}\",\n  \
         \"configs\": [\n{cfgs}\n  ],\n  \
         \"baseline\": {{ \"fast_forward\": false, \"threads\": 1, \
         \"wall_ms\": {bw:.2}, \"cycles_per_sec\": {bc:.0} }},\n  \
         \"optimized\": {{ \"fast_forward\": true, \"threads\": {t}, \
         \"wall_ms\": {ow:.2}, \"cycles_per_sec\": {oc:.0} }},\n  \
         \"event_driven\": {{ \"event_driven\": true, \"threads\": {t}, \
         \"wall_ms\": {ew:.2}, \"cycles_per_sec\": {ec:.0} }},\n  \
         \"speedup\": {sp:.3},\n  \"event_speedup\": {esp:.3},\n  \
         \"bit_identical\": true\n}}\n",
        v = RMAT_VERTICES,
        e = RMAT_EDGES,
        s = RMAT_SEED,
        cfgs = config_lines.join(",\n"),
        bw = baseline.wall_seconds * 1e3,
        bc = cycles_per_sec(&baseline),
        t = threads,
        ow = optimized.wall_seconds * 1e3,
        oc = cycles_per_sec(&optimized),
        ew = event.wall_seconds * 1e3,
        ec = cycles_per_sec(&event),
        sp = speedup,
        esp = event_speedup,
    );
    std::fs::write(&out_path, json).expect("could not write report");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let mut failed = false;
        // The event-driven gate falls back to the optimized figure for
        // reports written before the mode existed: the new engine must
        // clear the bar the old one set, never a lowered one.
        let checks = [
            (
                "optimized",
                read_section_cps(&text, "optimized"),
                cycles_per_sec(&optimized),
            ),
            (
                "event_driven",
                read_section_cps(&text, "event_driven")
                    .or_else(|| read_section_cps(&text, "optimized")),
                cycles_per_sec(&event),
            ),
        ];
        for (section, old, new) in checks {
            let old = old.unwrap_or_else(|| panic!("no {section} cycles_per_sec in {path}"));
            let ratio = new / old;
            println!(
                "regression check [{section}] vs {path}: {old:.0} -> {new:.0} cycles/s ({ratio:.2}x)"
            );
            if ratio < 0.8 {
                eprintln!("error: {section} cycles/sec regressed more than 20% vs {path}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
