//! `bench_hotloop` — end-to-end timing of the hot-loop optimisations.
//!
//! Runs a fixed R-MAT workload through an HBM-latency sensitivity sweep
//! twice: once sequentially with fast-forward off (the pre-optimisation
//! baseline) and once on the default thread pool with fast-forward on.
//! Asserts the two sweeps produce bit-identical metrics, then writes
//! `BENCH_hotloop.json` reporting simulated-cycles/sec, sweep wall-clock,
//! and the end-to-end speedup.
//!
//! ```text
//! bench_hotloop [--out <path>] [--check <path>] [--threads <n>]
//!   --out <path>     where to write the JSON        [BENCH_hotloop.json]
//!   --check <path>   compare against a previously written JSON and exit
//!                    nonzero if optimized cycles/sec regressed >20%
//!   --threads <n>    worker threads for the optimized sweep [all cores]
//! ```

use scalagraph::{MemoryPreset, ScalaGraphConfig};
use scalagraph_bench::runners::{sweep_scalagraph_with, SweepRecord};
use scalagraph_bench::sweep::default_threads;
use scalagraph_bench::workloads::{PreparedGraph, Workload};
use scalagraph_graph::{generators, Csr, Dataset};
use scalagraph_mem::HbmConfig;
use std::time::Instant;

/// Fixed workload: every run of this binary simulates exactly this graph.
const RMAT_VERTICES: usize = 4096;
const RMAT_EDGES: usize = 16384;
const RMAT_SEED: u64 = 42;

/// The sweep: HBM load-to-use latency sensitivity at 512 PEs with serial
/// phases — the paper-style experiment where idle-cycle fast-forward
/// matters, because deeper memory pipelines mean longer quiescent waits.
const LATENCIES: &[u32] = &[64, 128, 256, 384, 512];

fn workload() -> PreparedGraph {
    let graph = Csr::from_edges(
        RMAT_VERTICES,
        &generators::rmat(RMAT_VERTICES, RMAT_EDGES, RMAT_SEED),
    );
    let root = Dataset::pick_root(&graph);
    PreparedGraph { graph, root }
}

fn configs(fast_forward: bool) -> Vec<(String, ScalaGraphConfig)> {
    let mut out = Vec::new();
    for &lat in LATENCIES {
        let mut cfg = ScalaGraphConfig::with_pes(512);
        cfg.inter_phase_pipelining = false;
        let mut hbm = HbmConfig::u280(cfg.effective_clock_mhz() * 1e6);
        hbm.latency_cycles = lat;
        cfg.memory = MemoryPreset::Custom(hbm);
        cfg.fast_forward = fast_forward;
        out.push((format!("lat{lat}"), cfg));
    }
    // One busy, pipelined configuration so the sweep also covers the case
    // fast-forward cannot help (the activity gate keeps it near-free).
    let mut cfg = ScalaGraphConfig::with_pes(512);
    cfg.fast_forward = fast_forward;
    out.push(("u280-pipelined".to_string(), cfg));
    out
}

struct SweepTiming {
    wall_seconds: f64,
    total_cycles: u64,
    records: Vec<SweepRecord>,
}

fn timed_sweep(threads: usize, prep: &PreparedGraph, fast_forward: bool) -> SweepTiming {
    let start = Instant::now();
    let records = sweep_scalagraph_with(threads, prep, Workload::Bfs, configs(fast_forward));
    let wall_seconds = start.elapsed().as_secs_f64();
    let total_cycles = records
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|m| m.cycles)
        .sum();
    SweepTiming {
        wall_seconds,
        total_cycles,
        records,
    }
}

fn cycles_per_sec(t: &SweepTiming) -> f64 {
    t.total_cycles as f64 / t.wall_seconds.max(1e-9)
}

/// Extracts `"key": <number>` from the `"optimized"` object of a previous
/// report. Hand-rolled because the JSON is ours and flat.
fn read_baseline_cps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let opt = text.split("\"optimized\"").nth(1)?;
    let num = opt.split("\"cycles_per_sec\":").nth(1)?;
    num.trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let mut out_path = "BENCH_hotloop.json".to_string();
    let mut check_path: Option<String> = None;
    let mut threads = default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--out" => out_path = value("--out"),
            "--check" => check_path = Some(value("--check")),
            "--threads" => {
                threads = value("--threads")
                    .parse()
                    .expect("--threads needs a positive integer");
                assert!(threads > 0, "--threads needs a positive integer");
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    let prep = workload();
    println!(
        "workload: BFS on R-MAT |V|={} |E|={} (seed {}), {} configs",
        prep.graph.num_vertices(),
        prep.graph.num_edges(),
        RMAT_SEED,
        configs(true).len()
    );

    // Warm-up pass so neither timed sweep pays first-touch costs.
    let _ = timed_sweep(1, &prep, true);

    let baseline = timed_sweep(1, &prep, false);
    let optimized = timed_sweep(threads, &prep, true);

    // The whole point: the optimisations must not change a single result.
    assert_eq!(baseline.records.len(), optimized.records.len());
    for (b, o) in baseline.records.iter().zip(&optimized.records) {
        assert_eq!(b.label, o.label);
        let (bm, om) = (
            b.outcome.as_ref().expect("baseline config failed"),
            o.outcome.as_ref().expect("optimized config failed"),
        );
        assert_eq!(bm, om, "metrics diverged for {}", b.label);
    }

    let speedup = baseline.wall_seconds / optimized.wall_seconds.max(1e-9);
    println!(
        "baseline (seq, no-ff) : {:8.1} ms  {:>12.0} cycles/s",
        baseline.wall_seconds * 1e3,
        cycles_per_sec(&baseline)
    );
    println!(
        "optimized (par, ff)   : {:8.1} ms  {:>12.0} cycles/s  ({threads} threads)",
        optimized.wall_seconds * 1e3,
        cycles_per_sec(&optimized)
    );
    println!("end-to-end sweep speedup: {speedup:.2}x (bit-identical results)");

    let mut config_lines = Vec::new();
    for r in &optimized.records {
        let m = r.outcome.as_ref().expect("optimized config failed");
        config_lines.push(format!(
            "    {{ \"label\": \"{}\", \"cycles\": {}, \"traversed_edges\": {} }}",
            r.label, m.cycles, m.traversed_edges
        ));
    }
    let json = format!(
        "{{\n  \"workload\": \"BFS on R-MAT |V|={v} |E|={e} seed={s}\",\n  \
         \"configs\": [\n{cfgs}\n  ],\n  \
         \"baseline\": {{ \"fast_forward\": false, \"threads\": 1, \
         \"wall_ms\": {bw:.2}, \"cycles_per_sec\": {bc:.0} }},\n  \
         \"optimized\": {{ \"fast_forward\": true, \"threads\": {t}, \
         \"wall_ms\": {ow:.2}, \"cycles_per_sec\": {oc:.0} }},\n  \
         \"speedup\": {sp:.3},\n  \"bit_identical\": true\n}}\n",
        v = RMAT_VERTICES,
        e = RMAT_EDGES,
        s = RMAT_SEED,
        cfgs = config_lines.join(",\n"),
        bw = baseline.wall_seconds * 1e3,
        bc = cycles_per_sec(&baseline),
        t = threads,
        ow = optimized.wall_seconds * 1e3,
        oc = cycles_per_sec(&optimized),
        sp = speedup,
    );
    std::fs::write(&out_path, json).expect("could not write report");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let old = read_baseline_cps(&path)
            .unwrap_or_else(|| panic!("no optimized cycles_per_sec in {path}"));
        let new = cycles_per_sec(&optimized);
        let ratio = new / old;
        println!("regression check vs {path}: {old:.0} -> {new:.0} cycles/s ({ratio:.2}x)");
        if ratio < 0.8 {
            eprintln!("error: cycles/sec regressed more than 20% vs {path}");
            std::process::exit(1);
        }
    }
}
