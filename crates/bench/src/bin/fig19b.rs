//! Figure 19(b): inter-phase pipelining — Connected Components with the
//! mechanism on and off.
//!
//! Paper shape: 1.05–1.76× speedups; Twitter benefits least because its
//! vertex properties exceed on-chip capacity, forcing slicing, and the
//! pipeline cannot cross slice boundaries.

use scalagraph::ScalaGraphConfig;
use scalagraph_bench::runners::run_scalagraph;
use scalagraph_bench::workloads::{prepare, Workload};
use scalagraph_bench::{print_table, ratio, scale_or};
use scalagraph_graph::Dataset;

fn main() {
    let scale = scale_or(2048);
    println!("Figure 19(b) — inter-phase pipelining; CC at 1/{scale}");

    let mut rows = Vec::new();
    for dataset in Dataset::EVALUATION {
        let prep = prepare(dataset, Workload::Cc, scale, 42);
        // Mirror the paper's capacity pressure: the big graphs (RM, TW)
        // do not fit on-chip at paper scale and must slice, which defeats
        // the pipeline; scale the SPD capacity with the graphs so the same
        // datasets slice here.
        let spd = (8_000_000 / scale as usize).max(64);
        let mut on = ScalaGraphConfig::scalagraph_512();
        on.inter_phase_pipelining = true;
        on.spd_capacity_vertices = spd;
        let mut off = on.clone();
        off.inter_phase_pipelining = false;
        let m_on = run_scalagraph(&prep, Workload::Cc, on);
        let m_off = run_scalagraph(&prep, Workload::Cc, off);
        rows.push(vec![
            dataset.to_string(),
            m_off.cycles.to_string(),
            m_on.cycles.to_string(),
            ratio(m_off.seconds / m_on.seconds),
        ]);
    }
    print_table(
        "CC cycles with pipelining off/on",
        &["graph", "cycles (off)", "cycles (on)", "speedup"],
        &rows,
    );
}
