//! Extension experiment: vertex-order (in)sensitivity.
//!
//! Cache-based graph systems gain or lose 2x from vertex reordering
//! (degree ordering, BFS/RCM relabeling). ScalaGraph's hashed vertex
//! placement spreads any labeling evenly over scratchpads, so its
//! performance should be nearly invariant under relabeling — a robustness
//! property worth demonstrating, since real-world graph ids arrive in
//! arbitrary orders. The Gunrock model's L2 behaviour is
//! footprint-driven, so only the accelerator's sensitivity is at issue.

use scalagraph::{run_on, ScalaGraphConfig};
use scalagraph_algo::algorithms::PageRank;
use scalagraph_bench::{print_table, scale_or};
use scalagraph_graph::{transform, Dataset};

fn main() {
    let scale = scale_or(1024);
    println!("Extension — vertex-order sensitivity of ScalaGraph-512 (PageRank at 1/{scale})");

    let algo = PageRank::new(3);
    let mut rows = Vec::new();
    for dataset in [Dataset::Pokec, Dataset::LiveJournal, Dataset::Orkut] {
        let g = dataset.generate(scale, 42);
        let orderings = [
            ("original", None),
            (
                "random",
                Some(transform::random_order(g.num_vertices(), 99)),
            ),
            ("degree-sorted", Some(transform::degree_order(&g))),
            (
                "bfs-order",
                Some(transform::bfs_order(&g, Dataset::pick_root(&g))),
            ),
        ];
        let mut cells = vec![dataset.to_string()];
        let mut base = 0u64;
        for (name, mapping) in orderings {
            let graph = match &mapping {
                None => g.clone(),
                Some(m) => transform::relabel(&g, m),
            };
            let r = run_on(&algo, &graph, ScalaGraphConfig::scalagraph_512());
            if name == "original" {
                base = r.stats.cycles;
            }
            cells.push(format!(
                "{} ({:+.1}%)",
                r.stats.cycles,
                100.0 * (r.stats.cycles as f64 - base as f64) / base as f64
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Cycles under relabelings (delta vs original)",
        &["graph", "original", "random", "degree-sorted", "bfs-order"],
        &rows,
    );
    println!("\nRandom and BFS relabelings stay within ~10% of the original — hashed");
    println!("placement imposes no locality obligation on vertex ids. The interesting");
    println!("outlier is *degree sorting*: packing all hubs into consecutive ids lands");
    println!("them in the same dispatcher row (ids 0..15 share row 0 under round-robin");
    println!("placement), costing up to ~25%. If anything, ScalaGraph prefers its hubs");
    println!("scattered — the opposite of cache-oriented preprocessing advice.");
}
