//! Resilient scenario sweeps.
//!
//! The classic sweeps in [`crate::sweep`] assume every configuration is
//! trusted: a wedge or panic tears the whole experiment down. Figure
//! regeneration over *fuzz-derived* or fault-heavy scenarios needs the
//! opposite: run everything, survive anything, report per-scenario
//! outcomes. This module routes such sweeps through the
//! [`scalagraph_runtime`] batch executor — bounded admission, per-job
//! deadlines, panic isolation, and a balanced outcome ledger — and renders
//! the result as a [`crate::print_table`]-compatible table.

use std::time::Duration;

use scalagraph_conformance::Scenario;
use scalagraph_runtime::{BatchReport, BatchRuntime, JobSpec, JobStatus, RuntimeConfig};

use crate::sweep::default_threads;

/// Runs `scenarios` through the batch runtime with bench-friendly
/// defaults: one worker per sweep thread, queue sized to the batch (no
/// admission rejections for a fully-known sweep), and an optional per-job
/// wall-clock deadline that turns wedges into `deadline-exceeded` rows
/// instead of a hung experiment.
pub fn resilient_sweep(scenarios: Vec<Scenario>, deadline: Option<Duration>) -> BatchReport {
    let config = RuntimeConfig {
        workers: default_threads(),
        queue_capacity: scenarios.len().max(1),
        default_deadline: deadline,
        ..RuntimeConfig::default()
    };
    let specs = scenarios.into_iter().map(JobSpec::new).collect();
    BatchRuntime::new(config).run(specs)
}

/// Table rows (`name`, `status`, `attempts`, `cycles`, `wall ms`) for a
/// batch report, in submission order — feed to
/// [`print_table`](crate::print_table).
pub fn outcome_rows(report: &BatchReport) -> Vec<Vec<String>> {
    report
        .outcomes
        .iter()
        .map(|o| {
            let cycles = match &o.status {
                JobStatus::Completed { metrics } => metrics.cycles.to_string(),
                _ => "-".into(),
            };
            vec![
                o.name.clone(),
                o.status.label().to_string(),
                o.attempts.to_string(),
                cycles,
                o.wall_ms.to_string(),
            ]
        })
        .collect()
}

/// Column headers matching [`outcome_rows`].
pub const OUTCOME_HEADERS: [&str; 5] = ["scenario", "status", "attempts", "cycles", "wall ms"];

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_conformance::scenario::{AlgoSpec, ConfigSpec, Expectation, Family, ModeMatrix};
    use scalagraph_conformance::{GraphSource, GraphSpec};

    fn scenario(name: &str, vertices: usize) -> Scenario {
        Scenario {
            name: name.into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices,
                    edges: vertices * 4,
                    seed: 11,
                },
                symmetrize: false,
                max_weight: 0,
                weight_seed: 0,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::sim_only(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        }
    }

    #[test]
    fn sweep_completes_and_balances() {
        let scenarios = vec![
            scenario("s-small", 48),
            scenario("s-medium", 96),
            scenario("s-large", 160),
        ];
        let report = resilient_sweep(scenarios, Some(Duration::from_secs(30)));
        assert!(report.balanced(), "{}", report.render());
        assert_eq!(report.counters.completed, 3);
        assert_eq!(report.counters.rejected, 0, "queue sized to the batch");
        let rows = outcome_rows(&report);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], "s-small");
        assert_eq!(rows[0][1], "completed");
        assert_ne!(rows[0][3], "-", "completed rows carry cycle counts");
    }

    #[test]
    fn empty_sweep_is_a_clean_empty_report() {
        let report = resilient_sweep(Vec::new(), None);
        assert!(report.balanced());
        assert!(report.outcomes.is_empty());
        assert!(outcome_rows(&report).is_empty());
    }
}
