//! System runners: execute a workload on ScalaGraph, GraphDynS, or the
//! Gunrock model and return a uniform metrics record.

use crate::sweep::{default_threads, parallel_map_with};
use crate::workloads::{PreparedGraph, Workload, PAGERANK_ITERATIONS};
use scalagraph::telemetry::{Recorder, TelemetrySummary};
use scalagraph::{ScalaGraphConfig, SimError, SimStats, Simulator};
use scalagraph_algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use scalagraph_algo::Algorithm;
use scalagraph_baselines::{GraphDyns, GraphDynsConfig, GunrockModel};
use scalagraph_graph::Csr;

/// Uniform per-run metrics across systems.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Modelled wall-clock seconds.
    pub seconds: f64,
    /// Throughput in GTEPS.
    pub gteps: f64,
    /// Edges traversed.
    pub traversed_edges: u64,
    /// Simulated cycles (0 for the GPU model).
    pub cycles: u64,
    /// NoC link traversals (0 for the GPU model).
    pub noc_hops: u64,
    /// Off-chip bytes moved.
    pub offchip_bytes: u64,
    /// Mean PE utilization (0 for the GPU model).
    pub pe_utilization: f64,
    /// Mean NoC routing latency in cycles.
    pub avg_routing_latency: f64,
    /// Updates coalesced by aggregation pipelines.
    pub agg_merges: u64,
    /// Iterations executed.
    pub iterations: u64,
}

/// Dispatches `workload` to the right concrete algorithm and calls `f`.
pub fn with_algorithm<R>(
    workload: Workload,
    prep: &PreparedGraph,
    mut f: impl FnMut(&dyn ErasedRunner) -> R,
) -> R {
    match workload {
        Workload::Bfs => f(&AlgoRunner {
            algo: Bfs::from_root(prep.root),
        }),
        Workload::Sssp => f(&AlgoRunner {
            algo: Sssp::from_root(prep.root),
        }),
        Workload::Cc => f(&AlgoRunner {
            algo: ConnectedComponents::new(),
        }),
        Workload::PageRank => f(&AlgoRunner {
            algo: PageRank::new(PAGERANK_ITERATIONS),
        }),
    }
}

/// Object-safe adapter so runners need not be generic over the property
/// type at every call site.
pub trait ErasedRunner {
    /// Runs on the ScalaGraph simulator.
    fn scalagraph(&self, graph: &Csr, cfg: ScalaGraphConfig) -> Metrics;
    /// Fallible ScalaGraph run: invalid configurations, watchdog-detected
    /// deadlocks, and unrecoverable injected faults come back as a
    /// [`SimError`] instead of a panic, so sweeps can record the failure
    /// and keep going.
    fn try_scalagraph(&self, graph: &Csr, cfg: ScalaGraphConfig) -> Result<Metrics, SimError>;
    /// Like [`try_scalagraph`](Self::try_scalagraph) but runs with a
    /// [`Recorder`] sampling every `window` cycles, and returns the
    /// [`TelemetrySummary`] alongside the metrics.
    fn try_scalagraph_telemetry(
        &self,
        graph: &Csr,
        cfg: ScalaGraphConfig,
        window: u64,
    ) -> Result<(Metrics, TelemetrySummary), SimError>;
    /// Runs on the GraphDynS baseline.
    fn graphdyns(&self, graph: &Csr, cfg: GraphDynsConfig) -> Metrics;
    /// Runs on the Gunrock GPU model.
    fn gunrock(&self, graph: &Csr, model: GunrockModel) -> Metrics;
}

fn scalagraph_metrics(s: SimStats, clock: f64) -> Metrics {
    Metrics {
        seconds: s.seconds(clock),
        gteps: s.gteps(clock),
        traversed_edges: s.traversed_edges,
        cycles: s.cycles,
        noc_hops: s.noc_hops,
        offchip_bytes: s.offchip_bytes(),
        pe_utilization: s.pe_utilization(),
        avg_routing_latency: s.avg_routing_latency(),
        agg_merges: s.agg_merges,
        iterations: s.iterations,
    }
}

struct AlgoRunner<A> {
    algo: A,
}

impl<A: Algorithm> ErasedRunner for AlgoRunner<A> {
    fn scalagraph(&self, graph: &Csr, cfg: ScalaGraphConfig) -> Metrics {
        match self.try_scalagraph(graph, cfg) {
            Ok(m) => m,
            Err(e) => panic!("scalagraph run failed: {e}"),
        }
    }

    fn try_scalagraph(&self, graph: &Csr, cfg: ScalaGraphConfig) -> Result<Metrics, SimError> {
        let clock = cfg.effective_clock_mhz();
        let result = Simulator::try_new(&self.algo, graph, cfg)?.try_run()?;
        Ok(scalagraph_metrics(result.stats, clock))
    }

    fn try_scalagraph_telemetry(
        &self,
        graph: &Csr,
        cfg: ScalaGraphConfig,
        window: u64,
    ) -> Result<(Metrics, TelemetrySummary), SimError> {
        let clock = cfg.effective_clock_mhz();
        let mut rec = Recorder::new(window);
        let result = Simulator::try_new(&self.algo, graph, cfg)?.try_run_with(&mut rec)?;
        Ok((scalagraph_metrics(result.stats, clock), rec.summary()))
    }

    fn graphdyns(&self, graph: &Csr, cfg: GraphDynsConfig) -> Metrics {
        let clock = cfg.effective_clock_mhz();
        let result = GraphDyns::new(cfg).run(&self.algo, graph);
        let s = result.stats;
        Metrics {
            seconds: s.seconds(clock),
            gteps: s.gteps(clock),
            traversed_edges: s.traversed_edges,
            cycles: s.cycles,
            noc_hops: s.noc_hops,
            offchip_bytes: s.offchip_bytes(),
            pe_utilization: s.pe_utilization(),
            avg_routing_latency: s.avg_routing_latency(),
            agg_merges: s.agg_merges,
            iterations: s.iterations,
        }
    }

    fn gunrock(&self, graph: &Csr, model: GunrockModel) -> Metrics {
        let run = model.run(&self.algo, graph);
        Metrics {
            seconds: run.seconds,
            gteps: run.gteps(),
            traversed_edges: run.traversed_edges,
            offchip_bytes: run.bytes,
            iterations: run.iterations as u64,
            ..Metrics::default()
        }
    }
}

/// Convenience: run `workload` on ScalaGraph with `cfg`.
pub fn run_scalagraph(prep: &PreparedGraph, workload: Workload, cfg: ScalaGraphConfig) -> Metrics {
    with_algorithm(workload, prep, |r| r.scalagraph(&prep.graph, cfg.clone()))
}

/// Fallible [`run_scalagraph`]: every failure mode comes back as a
/// [`SimError`].
///
/// # Errors
///
/// Returns [`SimError`] when the configuration is invalid or the run
/// cannot complete (deadlock, watchdog stall, unrecoverable fault).
pub fn try_run_scalagraph(
    prep: &PreparedGraph,
    workload: Workload,
    cfg: ScalaGraphConfig,
) -> Result<Metrics, SimError> {
    with_algorithm(workload, prep, |r| {
        r.try_scalagraph(&prep.graph, cfg.clone())
    })
}

/// One configuration's outcome inside a sweep: the metrics, or the error
/// that stopped the run — never a panic that kills the whole batch.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Configuration label, as passed to [`sweep_scalagraph`].
    pub label: String,
    /// Metrics on success, the structured failure otherwise.
    pub outcome: Result<Metrics, SimError>,
    /// Time-resolved summary when the sweep ran with telemetry enabled
    /// ([`sweep_scalagraph_telemetry`]); `None` for plain sweeps.
    pub telemetry: Option<TelemetrySummary>,
}

/// Runs `workload` under every labelled configuration in parallel. Failed
/// configurations (invalid parameters, deadlocks under fault injection)
/// are recorded in their [`SweepRecord`] and do not disturb the others.
pub fn sweep_scalagraph(
    prep: &PreparedGraph,
    workload: Workload,
    configs: Vec<(String, ScalaGraphConfig)>,
) -> Vec<SweepRecord> {
    sweep_scalagraph_with(default_threads(), prep, workload, configs)
}

/// [`sweep_scalagraph`] with an explicit worker count; `threads == 1` runs
/// every configuration sequentially on the caller's thread. Record order
/// matches `configs` order regardless of the worker count.
pub fn sweep_scalagraph_with(
    threads: usize,
    prep: &PreparedGraph,
    workload: Workload,
    configs: Vec<(String, ScalaGraphConfig)>,
) -> Vec<SweepRecord> {
    parallel_map_with(threads, configs, |(label, cfg)| SweepRecord {
        outcome: try_run_scalagraph(prep, workload, cfg),
        label,
        telemetry: None,
    })
}

/// Fallible telemetry run: like [`try_run_scalagraph`] but samples with a
/// [`Recorder`] (window of `window` cycles) and returns the summary too.
///
/// # Errors
///
/// Returns [`SimError`] when the configuration is invalid or the run
/// cannot complete (deadlock, watchdog stall, unrecoverable fault).
pub fn try_run_scalagraph_telemetry(
    prep: &PreparedGraph,
    workload: Workload,
    cfg: ScalaGraphConfig,
    window: u64,
) -> Result<(Metrics, TelemetrySummary), SimError> {
    with_algorithm(workload, prep, |r| {
        r.try_scalagraph_telemetry(&prep.graph, cfg.clone(), window)
    })
}

/// [`sweep_scalagraph`] with telemetry: every successful record carries a
/// [`TelemetrySummary`] (peak link utilization, routing-latency
/// percentiles, phase breakdown) sampled on `window`-cycle boundaries.
pub fn sweep_scalagraph_telemetry(
    prep: &PreparedGraph,
    workload: Workload,
    configs: Vec<(String, ScalaGraphConfig)>,
    window: u64,
) -> Vec<SweepRecord> {
    sweep_scalagraph_telemetry_with(default_threads(), prep, workload, configs, window)
}

/// [`sweep_scalagraph_telemetry`] with an explicit worker count (see
/// [`sweep_scalagraph_with`]).
pub fn sweep_scalagraph_telemetry_with(
    threads: usize,
    prep: &PreparedGraph,
    workload: Workload,
    configs: Vec<(String, ScalaGraphConfig)>,
    window: u64,
) -> Vec<SweepRecord> {
    parallel_map_with(
        threads,
        configs,
        |(label, cfg)| match try_run_scalagraph_telemetry(prep, workload, cfg, window) {
            Ok((metrics, summary)) => SweepRecord {
                label,
                outcome: Ok(metrics),
                telemetry: Some(summary),
            },
            Err(e) => SweepRecord {
                label,
                outcome: Err(e),
                telemetry: None,
            },
        },
    )
}

/// Convenience: run `workload` on the GraphDynS baseline with `cfg`.
pub fn run_graphdyns(prep: &PreparedGraph, workload: Workload, cfg: GraphDynsConfig) -> Metrics {
    with_algorithm(workload, prep, |r| r.graphdyns(&prep.graph, cfg))
}

/// Convenience: run `workload` on the Gunrock model.
pub fn run_gunrock(prep: &PreparedGraph, workload: Workload, model: GunrockModel) -> Metrics {
    with_algorithm(workload, prep, |r| r.gunrock(&prep.graph, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::prepare;
    use scalagraph_graph::Dataset;

    #[test]
    fn all_three_runners_produce_metrics() {
        let prep = prepare(Dataset::Pokec, Workload::Bfs, 16384, 1);
        let sg = run_scalagraph(&prep, Workload::Bfs, ScalaGraphConfig::with_pes(32));
        let gd = run_graphdyns(&prep, Workload::Bfs, GraphDynsConfig::with_pes(32));
        let gu = run_gunrock(&prep, Workload::Bfs, GunrockModel::v100());
        assert!(sg.gteps > 0.0 && gd.gteps > 0.0 && gu.gteps > 0.0);
        // All traverse the same number of edges.
        assert_eq!(sg.traversed_edges, gd.traversed_edges);
        assert_eq!(sg.traversed_edges, gu.traversed_edges);
    }

    #[test]
    fn sweep_records_the_invalid_config_and_finishes_the_rest() {
        let prep = prepare(Dataset::Pokec, Workload::Bfs, 8192, 1);
        let mut configs = Vec::new();
        for (i, &(agg, sched, pipeline)) in [
            (16usize, 16usize, true),
            (0, 16, true),
            (16, 4, true),
            (16, 16, false),
            (0, 4, false),
            (4, 8, true),
            (16, 1, true),
        ]
        .iter()
        .enumerate()
        {
            let mut cfg = ScalaGraphConfig::with_pes(32);
            cfg.aggregation_registers = agg;
            cfg.max_scheduled_vertices = sched;
            cfg.inter_phase_pipelining = pipeline;
            configs.push((format!("cfg{i}"), cfg));
        }
        // The eighth configuration is deliberately degenerate.
        let mut bad = ScalaGraphConfig::with_pes(32);
        bad.gu_queue_capacity = 0;
        configs.push(("bad".to_string(), bad));
        assert_eq!(configs.len(), 8);

        let records = sweep_scalagraph(&prep, Workload::Bfs, configs);
        assert_eq!(records.len(), 8);
        let (ok, failed): (Vec<_>, Vec<_>) = records.iter().partition(|r| r.outcome.is_ok());
        assert_eq!(ok.len(), 7, "seven valid configurations must complete");
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].label, "bad");
        assert!(matches!(
            failed[0].outcome,
            Err(SimError::ConfigInvalid { .. })
        ));
        for r in &ok {
            let m = r.outcome.as_ref().unwrap();
            assert!(m.cycles > 0 && m.traversed_edges > 0, "{}", r.label);
        }
    }

    #[test]
    fn telemetry_sweep_attaches_summaries_without_changing_metrics() {
        let prep = prepare(Dataset::Pokec, Workload::Bfs, 8192, 1);
        let configs = vec![
            ("pe32".to_string(), ScalaGraphConfig::with_pes(32)),
            ("pe64".to_string(), ScalaGraphConfig::with_pes(64)),
        ];
        let plain = sweep_scalagraph(&prep, Workload::Bfs, configs.clone());
        let traced = sweep_scalagraph_telemetry(&prep, Workload::Bfs, configs, 256);
        assert_eq!(plain.len(), traced.len());
        for (p, t) in plain.iter().zip(&traced) {
            assert_eq!(p.label, t.label);
            assert!(p.telemetry.is_none());
            let (pm, tm) = (p.outcome.as_ref().unwrap(), t.outcome.as_ref().unwrap());
            // The recorder must not perturb the simulation.
            assert_eq!(pm, tm, "{}", t.label);
            let summary = t.telemetry.expect("telemetry sweep must attach a summary");
            assert_eq!(summary.run_cycles, tm.cycles);
            assert_eq!(summary.window_cycles, 256);
            assert!(summary.windows > 0);
            assert!(summary.total_link_traversals > 0);
            assert!(summary.routing_latency_max >= summary.routing_latency_p95);
            assert!(summary.routing_latency_p95 >= summary.routing_latency_p50);
        }
    }
}
