//! Golden reference engine: Figure 1, executed literally and sequentially.
//!
//! Every cycle-accurate simulator in this workspace (ScalaGraph itself, the
//! GraphDynS baseline, the Gunrock model) is validated against the output of
//! this engine in the integration test suite.

use crate::model::{Algorithm, EdgeCtx};
use scalagraph_graph::{Csr, VertexId};

/// The result of running an algorithm to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Run<P> {
    /// Final persistent property of every vertex.
    pub properties: Vec<P>,
    /// Number of Scatter/Apply iterations executed.
    pub iterations: usize,
    /// Total edges traversed across all Scatter phases (the numerator of
    /// GTEPS).
    pub traversed_edges: u64,
    /// Active-vertex count at the start of each iteration.
    pub frontier_sizes: Vec<usize>,
    /// Edges traversed in each iteration's Scatter phase.
    pub edges_per_iteration: Vec<u64>,
}

/// Sequential engine executing the vertex-centric model of Figure 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReferenceEngine {
    /// Hard cap on iterations regardless of convergence; guards against
    /// non-terminating algorithm definitions. `None` bounds only by the
    /// algorithm's own [`Algorithm::max_iterations`].
    pub iteration_cap: Option<usize>,
}

impl ReferenceEngine {
    /// Creates an engine with no extra iteration cap.
    pub fn new() -> Self {
        ReferenceEngine {
            iteration_cap: None,
        }
    }

    /// Creates an engine that stops after at most `cap` iterations.
    pub fn with_cap(cap: usize) -> Self {
        ReferenceEngine {
            iteration_cap: Some(cap),
        }
    }

    /// Runs `algorithm` on `graph` to completion.
    pub fn run<A: Algorithm>(&self, algorithm: &A, graph: &Csr) -> Run<A::Prop> {
        let n = graph.num_vertices();
        let mut properties: Vec<A::Prop> =
            graph.vertices().map(|v| algorithm.init(v, graph)).collect();
        let mut active: Vec<VertexId> = algorithm.initial_frontier(graph);
        dedup_frontier(&mut active, n);

        let mut iterations = 0usize;
        let mut traversed = 0u64;
        let mut frontier_sizes = Vec::new();
        let mut edges_per_iteration = Vec::new();

        let limit = match (self.iteration_cap, algorithm.max_iterations()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => usize::MAX,
        };

        while !active.is_empty() && iterations < limit {
            frontier_sizes.push(active.len());
            let traversed_before = traversed;

            // Scatter phase (Figure 1 lines 2-7).
            let mut temp: Vec<A::Prop> = vec![algorithm.reduce_identity(); n];
            for &v in &active {
                let src_prop = properties[v as usize];
                let degree = graph.out_degree(v) as u32;
                let range = graph.edge_range(v);
                for idx in range {
                    let dst = graph.neighbor_at(idx);
                    let ctx = EdgeCtx {
                        weight: graph.weight_at(idx),
                        src: v,
                        src_degree: degree,
                    };
                    let scatter_res = algorithm.process(&ctx, src_prop);
                    temp[dst as usize] = algorithm.reduce(temp[dst as usize], scatter_res);
                    traversed += 1;
                }
            }

            // Apply phase (Figure 1 lines 9-15).
            let mut next: Vec<VertexId> = Vec::new();
            for v in 0..n {
                let old = properties[v];
                let new = algorithm.apply(v as VertexId, old, temp[v], graph);
                if new != old {
                    properties[v] = new;
                }
                if algorithm.activates(old, new) {
                    next.push(v as VertexId);
                }
            }
            active = next;
            iterations += 1;
            edges_per_iteration.push(traversed - traversed_before);
        }

        Run {
            properties,
            iterations,
            traversed_edges: traversed,
            frontier_sizes,
            edges_per_iteration,
        }
    }
}

/// Sorts and deduplicates a frontier in place, asserting ids are in range.
pub fn dedup_frontier(frontier: &mut Vec<VertexId>, num_vertices: usize) {
    frontier.sort_unstable();
    frontier.dedup();
    if let Some(&last) = frontier.last() {
        assert!(
            (last as usize) < num_vertices,
            "frontier vertex {last} out of range"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp, UNREACHED};
    use scalagraph_graph::{generators, Csr, Edge, EdgeList};

    #[test]
    fn bfs_levels_on_tree() {
        let g = Csr::from_edges(15, &generators::binary_tree(15));
        let run = ReferenceEngine::new().run(&Bfs::from_root(0), &g);
        for v in 0..15usize {
            let expected = usize::BITS - (v + 1).leading_zeros() - 1;
            assert_eq!(run.properties[v], expected, "vertex {v}");
        }
        assert_eq!(run.iterations, 4); // levels 0->1, 1->2, 2->3 and one fixpoint pass
    }

    #[test]
    fn bfs_unreachable_stays_unreached() {
        let g = Csr::from_edges(4, &[Edge::new(0, 1)]);
        let run = ReferenceEngine::new().run(&Bfs::from_root(0), &g);
        assert_eq!(run.properties, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn sssp_prefers_cheap_path() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): best dist(1) = 3.
        let g = Csr::from_edges(
            3,
            &[
                Edge::weighted(0, 1, 10),
                Edge::weighted(0, 2, 1),
                Edge::weighted(2, 1, 2),
            ],
        );
        let run = ReferenceEngine::new().run(&Sssp::from_root(0), &g);
        assert_eq!(run.properties, vec![0, 3, 1]);
    }

    #[test]
    fn sssp_zero_weight_edges_terminate() {
        let g = Csr::from_edges(3, &[Edge::weighted(0, 1, 0), Edge::weighted(1, 0, 0)]);
        let run = ReferenceEngine::new().run(&Sssp::from_root(0), &g);
        assert_eq!(run.properties[..2], [0, 0]);
    }

    #[test]
    fn cc_on_symmetrized_graph_finds_components() {
        // Two components: {0,1,2} and {3,4}.
        let mut list = EdgeList::new(5);
        list.push(Edge::new(0, 1));
        list.push(Edge::new(1, 2));
        list.push(Edge::new(3, 4));
        list.symmetrize();
        let g = Csr::from_edge_list(&list);
        let run = ReferenceEngine::new().run(&ConnectedComponents::new(), &g);
        assert_eq!(run.properties, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let mut list = EdgeList::new(4);
        // Everyone links to 0; 0 links to 1.
        list.push(Edge::new(1, 0));
        list.push(Edge::new(2, 0));
        list.push(Edge::new(3, 0));
        list.push(Edge::new(0, 1));
        let g = Csr::from_edge_list(&list);
        let run = ReferenceEngine::new().run(&PageRank::new(30), &g);
        let total: f32 = run.properties.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "ranks sum to {total}");
        assert!(run.properties[0] > run.properties[2]);
        assert_eq!(run.iterations, 30);
    }

    #[test]
    fn pagerank_handles_rankless_sinks() {
        // Vertex 1 is a sink; its rank leaks (standard simplification, same
        // as the accelerator's model).
        let g = Csr::from_edges(2, &[Edge::new(0, 1)]);
        let run = ReferenceEngine::new().run(&PageRank::new(10), &g);
        assert!(run.properties[1] > run.properties[0]);
    }

    #[test]
    fn traversed_edges_counts_per_iteration_work() {
        let g = Csr::from_edges(3, &generators::path(3));
        let run = ReferenceEngine::new().run(&Bfs::from_root(0), &g);
        // Iter 1: edges of {0} = 1; iter 2: edges of {1} = 1; iter 3: edges
        // of {2} = 0.
        assert_eq!(run.traversed_edges, 2);
        assert_eq!(run.frontier_sizes, vec![1, 1, 1]);
    }

    #[test]
    fn iteration_cap_stops_early() {
        let g = Csr::from_edges(100, &generators::path(100));
        let run = ReferenceEngine::with_cap(5).run(&Bfs::from_root(0), &g);
        assert_eq!(run.iterations, 5);
        assert_eq!(run.properties[10], UNREACHED);
    }

    #[test]
    fn empty_frontier_terminates_immediately() {
        let g = Csr::from_edges(3, &[]);
        let run = ReferenceEngine::new().run(&Bfs::from_root(5 % 3), &g);
        assert!(run.iterations <= 1);
    }

    #[test]
    fn dedup_frontier_sorts_and_dedups() {
        let mut f = vec![3, 1, 3, 0];
        dedup_frontier(&mut f, 4);
        assert_eq!(f, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dedup_frontier_rejects_out_of_range() {
        let mut f = vec![9];
        dedup_frontier(&mut f, 4);
    }
}
