//! The four evaluation algorithms of Section V-A: BFS, SSSP, CC, PageRank.

use crate::model::{Algorithm, EdgeCtx};
#[cfg(test)]
use scalagraph_graph::Edge;
use scalagraph_graph::{GraphRead, VertexId};

/// Sentinel for "unreached" in BFS/SSSP/CC lattices.
pub const UNREACHED: u32 = u32::MAX;

/// Breadth-first search: property is the hop distance (level) from the
/// root; `Process` proposes `level + 1`, `Reduce`/`Apply` take the minimum.
/// Monotonic (levels only decrease), so inter-phase pipelining is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    root: VertexId,
}

impl Bfs {
    /// BFS rooted at `root`.
    pub fn from_root(root: VertexId) -> Self {
        Bfs { root }
    }

    /// The configured root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl Algorithm for Bfs {
    type Prop = u32;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn init(&self, v: VertexId, _graph: &dyn GraphRead) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }

    fn initial_frontier(&self, _graph: &dyn GraphRead) -> Vec<VertexId> {
        vec![self.root]
    }

    fn reduce_identity(&self) -> u32 {
        UNREACHED
    }

    fn process(&self, _ctx: &EdgeCtx, src_prop: u32) -> u32 {
        src_prop.saturating_add(1)
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, old: u32, temp: u32, _graph: &dyn GraphRead) -> u32 {
        old.min(temp)
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

/// Single-source shortest paths (Bellman-Ford style): property is the
/// tentative distance; `Process` proposes `dist + weight`, `Reduce`/`Apply`
/// take the minimum. Monotonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sssp {
    root: VertexId,
}

impl Sssp {
    /// SSSP rooted at `root`.
    pub fn from_root(root: VertexId) -> Self {
        Sssp { root }
    }

    /// The configured root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl Algorithm for Sssp {
    type Prop = u32;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn init(&self, v: VertexId, _graph: &dyn GraphRead) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }

    fn initial_frontier(&self, _graph: &dyn GraphRead) -> Vec<VertexId> {
        vec![self.root]
    }

    fn reduce_identity(&self) -> u32 {
        UNREACHED
    }

    fn process(&self, ctx: &EdgeCtx, src_prop: u32) -> u32 {
        src_prop.saturating_add(ctx.weight)
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, old: u32, temp: u32, _graph: &dyn GraphRead) -> u32 {
        old.min(temp)
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

/// Connected components by label propagation: property is the component
/// label (initialized to the vertex's own id); labels flow along edges and
/// the minimum wins. On a symmetrized (undirected) graph this converges to
/// the connected components; on a directed graph it computes the "min label
/// reachable along directed paths" fixpoint — use
/// [`scalagraph_graph::EdgeList::symmetrize`] for true CC. Monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the CC algorithm.
    pub fn new() -> Self {
        ConnectedComponents
    }
}

impl Algorithm for ConnectedComponents {
    type Prop = u32;

    fn name(&self) -> &'static str {
        "CC"
    }

    fn init(&self, v: VertexId, _graph: &dyn GraphRead) -> u32 {
        v
    }

    fn initial_frontier(&self, graph: &dyn GraphRead) -> Vec<VertexId> {
        graph.vertex_ids().collect()
    }

    fn reduce_identity(&self) -> u32 {
        UNREACHED
    }

    fn process(&self, _ctx: &EdgeCtx, src_prop: u32) -> u32 {
        src_prop
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, old: u32, temp: u32, _graph: &dyn GraphRead) -> u32 {
        old.min(temp)
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

/// PageRank with damping factor `d`: the property is the vertex's rank;
/// `Process` contributes `rank / out_degree`, `Reduce` sums, and `Apply`
/// computes `(1 - d) / N + d * sum`. Every vertex is active every iteration
/// for a fixed number of iterations. **Non-monotonic** — ranks move both
/// ways — so ScalaGraph disables inter-phase pipelining for it (Section
/// IV-D, "Limitation").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    damping: f32,
    iterations: usize,
}

impl PageRank {
    /// PageRank with the conventional damping factor 0.85.
    pub fn new(iterations: usize) -> Self {
        Self::with_damping(iterations, 0.85)
    }

    /// PageRank with an explicit damping factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= damping <= 1.0`.
    pub fn with_damping(iterations: usize, damping: f32) -> Self {
        assert!((0.0..=1.0).contains(&damping), "damping must be in [0, 1]");
        PageRank {
            damping,
            iterations,
        }
    }

    /// The damping factor.
    pub fn damping(&self) -> f32 {
        self.damping
    }
}

impl Algorithm for PageRank {
    type Prop = f32;

    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn init(&self, _v: VertexId, graph: &dyn GraphRead) -> f32 {
        1.0 / graph.num_vertices().max(1) as f32
    }

    fn initial_frontier(&self, graph: &dyn GraphRead) -> Vec<VertexId> {
        graph.vertex_ids().collect()
    }

    fn reduce_identity(&self) -> f32 {
        0.0
    }

    fn process(&self, ctx: &EdgeCtx, src_prop: f32) -> f32 {
        src_prop / ctx.src_degree.max(1) as f32
    }

    fn reduce(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _v: VertexId, _old: f32, temp: f32, graph: &dyn GraphRead) -> f32 {
        (1.0 - self.damping) / graph.num_vertices().max(1) as f32 + self.damping * temp
    }

    fn activates(&self, _old: f32, _new: f32) -> bool {
        // Fixed-schedule: every vertex stays active until max_iterations.
        true
    }

    fn is_monotonic(&self) -> bool {
        false
    }

    fn max_iterations(&self) -> Option<usize> {
        Some(self.iterations)
    }
}

/// Widest path (maximum bottleneck bandwidth) from a source: the property
/// is the largest minimum-edge-weight along any path from the root;
/// `Process` takes `min(path_width, edge_weight)`, `Reduce`/`Apply` take
/// the maximum. A *max*-lattice counterpart to SSSP's min-lattice —
/// monotonic, so inter-phase pipelining applies. Not part of the paper's
/// four workloads; included as an extension exercising the opposite
/// monotone direction through the aggregation pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidestPath {
    root: VertexId,
}

impl WidestPath {
    /// Widest paths from `root`.
    pub fn from_root(root: VertexId) -> Self {
        WidestPath { root }
    }

    /// The configured root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl Algorithm for WidestPath {
    type Prop = u32;

    fn name(&self) -> &'static str {
        "WidestPath"
    }

    fn init(&self, v: VertexId, _graph: &dyn GraphRead) -> u32 {
        if v == self.root {
            u32::MAX // the root has unbounded ingress capacity
        } else {
            0
        }
    }

    fn initial_frontier(&self, _graph: &dyn GraphRead) -> Vec<VertexId> {
        vec![self.root]
    }

    fn reduce_identity(&self) -> u32 {
        0
    }

    fn process(&self, ctx: &EdgeCtx, src_prop: u32) -> u32 {
        src_prop.min(ctx.weight)
    }

    fn reduce(&self, a: u32, b: u32) -> u32 {
        a.max(b)
    }

    fn apply(&self, _v: VertexId, old: u32, temp: u32, _graph: &dyn GraphRead) -> u32 {
        old.max(temp)
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_graph::{generators, Csr};

    fn ctx(weight: u32, deg: u32) -> EdgeCtx {
        EdgeCtx {
            weight,
            src: 0,
            src_degree: deg,
        }
    }

    #[test]
    fn bfs_semantics() {
        let g = Csr::from_edges(3, &generators::path(3));
        let b = Bfs::from_root(1);
        assert_eq!(b.init(1, &g), 0);
        assert_eq!(b.init(0, &g), UNREACHED);
        assert_eq!(b.process(&ctx(0, 1), 2), 3);
        assert_eq!(b.process(&ctx(0, 1), UNREACHED), UNREACHED); // saturates
        assert_eq!(b.reduce(4, 2), 2);
        assert!(b.activates(UNREACHED, 3));
        assert!(!b.activates(3, 3));
        assert!(b.is_monotonic());
    }

    #[test]
    fn sssp_uses_weight() {
        let g = Csr::from_edges(2, &generators::path(2));
        let s = Sssp::from_root(0);
        assert_eq!(s.process(&ctx(10, 1), 5), 15);
        assert_eq!(s.apply(1, 20, 15, &g), 15);
        assert_eq!(s.apply(1, 10, 15, &g), 10);
    }

    #[test]
    fn cc_propagates_min_label() {
        let g = Csr::from_edges(4, &generators::path(4));
        let c = ConnectedComponents::new();
        assert_eq!(c.init(3, &g), 3);
        assert_eq!(c.initial_frontier(&g).len(), 4);
        assert_eq!(c.process(&ctx(0, 1), 2), 2);
        assert_eq!(c.reduce(3, 1), 1);
    }

    #[test]
    fn pagerank_contribution_and_apply() {
        let g = Csr::from_edges(4, &generators::star(4));
        let pr = PageRank::new(5);
        let r0 = pr.init(0, &g);
        assert!((r0 - 0.25).abs() < 1e-6);
        let contrib = pr.process(&ctx(0, 3), 0.3);
        assert!((contrib - 0.1).abs() < 1e-6);
        let applied = pr.apply(1, 0.0, 0.1, &g);
        assert!((applied - (0.15 / 4.0 + 0.85 * 0.1)).abs() < 1e-6);
        assert!(!pr.is_monotonic());
        assert_eq!(pr.max_iterations(), Some(5));
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn pagerank_rejects_bad_damping() {
        let _ = PageRank::with_damping(3, 1.5);
    }

    #[test]
    fn widest_path_prefers_fat_pipes() {
        // 0 -> 1 directly with width 2; 0 -> 2 -> 1 with widths 10 and 7:
        // best bottleneck into 1 is 7.
        let g = Csr::from_edges(
            3,
            &[
                Edge::weighted(0, 1, 2),
                Edge::weighted(0, 2, 10),
                Edge::weighted(2, 1, 7),
            ],
        );
        let run = crate::ReferenceEngine::new().run(&WidestPath::from_root(0), &g);
        assert_eq!(run.properties, vec![u32::MAX, 7, 10]);
    }

    #[test]
    fn widest_path_unreachable_is_zero() {
        let g = Csr::from_edges(3, &[Edge::weighted(0, 1, 5)]);
        let run = crate::ReferenceEngine::new().run(&WidestPath::from_root(0), &g);
        assert_eq!(run.properties[2], 0);
    }

    #[test]
    fn reduce_laws_hold_for_min_algorithms() {
        let b = Bfs::from_root(0);
        for (x, y, z) in [(1u32, 5, 9), (UNREACHED, 3, 3), (0, 0, UNREACHED)] {
            assert_eq!(b.reduce(x, y), b.reduce(y, x));
            assert_eq!(b.reduce(b.reduce(x, y), z), b.reduce(x, b.reduce(y, z)));
            assert_eq!(b.reduce(x, b.reduce_identity()), x);
        }
    }
}
