//! The `Process` / `Reduce` / `Apply` programming model of Figure 1.

use scalagraph_graph::{GraphRead, VertexId, Weight};
use std::fmt::Debug;

/// A vertex property value.
///
/// ScalaGraph stores vertex properties in the per-PE scratchpads; this suite
/// models them as 4-byte values (`u32` for level/distance/label, `f32` for
/// PageRank). The trait is sealed by its bounds rather than a private
/// supertrait because downstream algorithm authors legitimately define new
/// property types.
pub trait PropValue: Copy + PartialEq + Debug + Send + Sync + 'static {
    /// Size of one property in scratchpad/off-chip memory, in bytes. All
    /// provided algorithms use 4-byte properties, matching the paper's
    /// traffic model.
    const BYTES: usize = 4;
}

impl PropValue for u32 {}
impl PropValue for f32 {}
impl PropValue for u64 {
    const BYTES: usize = 8;
}
impl PropValue for f64 {
    const BYTES: usize = 8;
}

/// Per-edge context handed to [`Algorithm::process`].
///
/// The dispatcher broadcasts the active vertex's property and metadata to a
/// PE row (Section IV-A, row-oriented mapping), so `Process` may use the
/// source id and its out-degree in addition to the edge weight — PageRank
/// needs the degree to normalize its contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCtx {
    /// Weight of the edge being processed (0 on unweighted graphs).
    pub weight: Weight,
    /// Source (active) vertex of the edge.
    pub src: VertexId,
    /// Out-degree of the source vertex.
    pub src_degree: u32,
}

/// A vertex-centric graph algorithm in the Scatter/Apply model of Figure 1.
///
/// Implementations must keep [`reduce`](Algorithm::reduce) **associative and
/// commutative**: the update-aggregation pipeline (Section IV-B) pre-reduces
/// updates in arbitrary routing order, and the property tests in this crate
/// check the laws on the provided algorithms.
pub trait Algorithm: Send + Sync {
    /// The vertex property type (`V_prop` in Figure 1).
    type Prop: PropValue;

    /// Short human-readable name ("BFS", "PageRank", ...).
    fn name(&self) -> &'static str;

    /// Initial persistent property of vertex `v`.
    fn init(&self, v: VertexId, graph: &dyn GraphRead) -> Self::Prop;

    /// The initially active vertex set (`V_active` for iteration 0).
    fn initial_frontier(&self, graph: &dyn GraphRead) -> Vec<VertexId>;

    /// Identity element of [`reduce`](Algorithm::reduce); the value each
    /// `V_temp[v]` holds at the start of a Scatter phase.
    fn reduce_identity(&self) -> Self::Prop;

    /// `Process` (Figure 1 line 4): computes the scatter result for one edge
    /// from the edge context and the source's property.
    fn process(&self, ctx: &EdgeCtx, src_prop: Self::Prop) -> Self::Prop;

    /// `Reduce` (Figure 1 line 5): folds a scatter result into the
    /// destination's temporary property. Must be associative and
    /// commutative, with [`reduce_identity`](Algorithm::reduce_identity) as
    /// identity.
    fn reduce(&self, a: Self::Prop, b: Self::Prop) -> Self::Prop;

    /// `Apply` (Figure 1 line 10): merges the temporary property into the
    /// persistent one, producing the new persistent property.
    fn apply(
        &self,
        v: VertexId,
        old: Self::Prop,
        temp: Self::Prop,
        graph: &dyn GraphRead,
    ) -> Self::Prop;

    /// Whether the vertex becomes active for the next iteration after its
    /// property changed from `old` to `new`. Figure 1 activates on any
    /// change; algorithms may refine this.
    fn activates(&self, old: Self::Prop, new: Self::Prop) -> bool {
        old != new
    }

    /// Whether property updates are monotonic (each `apply` moves the
    /// property only in one direction). Monotonic algorithms may run with
    /// inter-phase pipelining enabled (Section IV-D); for non-monotonic ones
    /// (PageRank) the mechanism must be disabled to preserve correctness.
    fn is_monotonic(&self) -> bool;

    /// Upper bound on iterations, if the algorithm runs a fixed schedule
    /// (PageRank). `None` means run until the frontier empties.
    fn max_iterations(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_ctx_is_plain_data() {
        let c = EdgeCtx {
            weight: 3,
            src: 1,
            src_degree: 5,
        };
        let d = c;
        assert_eq!(c, d);
    }

    #[test]
    fn prop_value_sizes() {
        assert_eq!(<u32 as PropValue>::BYTES, 4);
        assert_eq!(<f32 as PropValue>::BYTES, 4);
        assert_eq!(<u64 as PropValue>::BYTES, 8);
    }
}
