//! Incremental algorithm variants for dynamic graphs: BFS/SSSP/CC repair
//! and delta-PageRank.
//!
//! These are the algorithm-side half of the dynamic-graph story (the
//! storage-side half is [`scalagraph_graph::mutate`]). After a
//! [`MutationDelta`] is applied, instead of re-running from scratch they
//! reprocess only the *affected* region:
//!
//! * [`repair_rooted`] repairs the fixpoint of any monotone `u32` lattice
//!   algorithm (BFS, SSSP, CC, widest-path): invalidate the forward closure
//!   of values the removed edges supported, then re-relax from the intact
//!   boundary and the inserted edges. The result is **bit-identical** to a
//!   full recompute — `u32` lattice fixpoints are unique, so exactness
//!   falls out of reaching the same fixpoint.
//! * [`delta_pagerank`] advances a per-iteration rank trace: only vertices
//!   whose in-contribution stream changed (and, iteration by iteration, the
//!   out-neighborhood closure of those) are recomputed; everything else is
//!   copied from the previous run's trace. Recomputed vertices fold their
//!   in-edges in the same flat-index order as the reference engine, so the
//!   `f32` results are bit-identical too — the property the differential
//!   oracle in `scalagraph-conformance` checks after every batch.

use crate::algorithms::PageRank;
use crate::model::{Algorithm, EdgeCtx};
use scalagraph_graph::mutate::MutationDelta;
use scalagraph_graph::{Csr, VertexId};

/// Result of an incremental fixpoint repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairRun {
    /// Final persistent property of every vertex of the new graph.
    /// Bit-identical to a from-scratch reference run.
    pub properties: Vec<u32>,
    /// Vertices whose old value was invalidated (plus appended vertices) —
    /// the region reset to `init` before re-relaxation.
    pub affected_vertices: usize,
    /// Edge relaxations performed; the work metric the dynamic bench
    /// compares against full recompute's traversed edges.
    pub relaxed_edges: u64,
}

/// Repairs the converged properties of a monotone `u32` algorithm after a
/// mutation batch, touching only the affected region.
///
/// `old_props` must be the converged reference/repaired properties on
/// `old_graph`; `new_graph` is the canonical CSR after applying the batch
/// that produced `delta`.
///
/// # Algorithm contract
///
/// This routine is exact for algorithms where
///
/// 1. `apply(v, old, temp) == reduce(old, temp)` for all inputs (BFS, SSSP,
///    CC, and widest-path all satisfy this — their `Apply` is their lattice
///    meet/join), and
/// 2. `process(ctx, reduce_identity()) == reduce_identity()` (an unreached
///    source contributes nothing), and
/// 3. the algorithm is monotone with a converging (finite-chain) lattice,
///    running until the frontier empties (`max_iterations() == None`).
///
/// Under that contract the converged state is the unique extremal fixpoint
/// of `props[v] = reduce(init(v), fold of process over in-edges)`, which is
/// what both the reference engine and this repair compute — hence
/// bit-identity.
///
/// # Phases
///
/// 1. **Seed**: a removed edge `(u, v)` invalidates `v` iff the removed
///    copy supported `v`'s value (`process(u's old value) == old[v]`).
/// 2. **Closure**: invalidation propagates forward through *tight* edges of
///    the old graph (`process(old[src]) == old[dst]`), because a value
///    derived from a possibly-stale value is itself possibly stale. This
///    over-approximates the stale set, which is safe: affected vertices are
///    reset and re-derived.
/// 3. **Reset + relax**: affected and appended vertices reset to `init`;
///    the worklist starts from non-identity affected vertices, sources of
///    inserted edges, and intact boundary vertices with an edge into the
///    affected region, then relaxes `reduce(props[dst], process(props[u]))`
///    to the fixpoint.
pub fn repair_rooted<A: Algorithm<Prop = u32>>(
    algorithm: &A,
    old_graph: &Csr,
    old_props: &[u32],
    new_graph: &Csr,
    delta: &MutationDelta,
) -> RepairRun {
    let old_n = old_graph.num_vertices();
    assert_eq!(old_props.len(), old_n, "old_props/old_graph size mismatch");
    let n = new_graph.num_vertices();
    let identity = algorithm.reduce_identity();

    // Phase 1: seed invalidation from removed edges that supported their
    // destination's value. Edges inserted and removed by the same batch can
    // reference appended vertices; those never supported anything.
    let mut affected = vec![false; n];
    let mut stack: Vec<VertexId> = Vec::new();
    for e in &delta.removed {
        let (s, d) = (e.src as usize, e.dst as usize);
        if s >= old_n || d >= old_n || affected[d] {
            continue;
        }
        if old_props[s] == identity || old_props[d] == identity {
            continue;
        }
        let ctx = EdgeCtx {
            weight: e.weight,
            src: e.src,
            src_degree: old_graph.out_degree(e.src) as u32,
        };
        if algorithm.process(&ctx, old_props[s]) == old_props[d] {
            affected[d] = true;
            stack.push(e.dst);
        }
    }

    // Phase 2: forward closure over tight old-graph edges.
    while let Some(u) = stack.pop() {
        let src_prop = old_props[u as usize];
        let degree = old_graph.out_degree(u) as u32;
        for idx in old_graph.edge_range(u) {
            let dst = old_graph.neighbor_at(idx);
            if affected[dst as usize] || old_props[dst as usize] == identity {
                continue;
            }
            let ctx = EdgeCtx {
                weight: old_graph.weight_at(idx),
                src: u,
                src_degree: degree,
            };
            if algorithm.process(&ctx, src_prop) == old_props[dst as usize] {
                affected[dst as usize] = true;
                stack.push(dst);
            }
        }
    }
    // Appended vertices have no prior value: treat them as affected so the
    // boundary scan re-derives them.
    for slot in affected.iter_mut().take(n).skip(old_n) {
        *slot = true;
    }
    let affected_vertices = affected.iter().filter(|&&a| a).count();

    // Phase 3: reset and re-relax.
    let mut props: Vec<u32> = (0..n)
        .map(|v| {
            if v >= old_n || affected[v] {
                algorithm.init(v as VertexId, new_graph)
            } else {
                old_props[v]
            }
        })
        .collect();

    let mut in_queue = vec![false; n];
    let mut worklist: Vec<VertexId> = Vec::new();
    let enqueue = |v: VertexId, in_queue: &mut Vec<bool>, worklist: &mut Vec<VertexId>| {
        if !in_queue[v as usize] {
            in_queue[v as usize] = true;
            worklist.push(v);
        }
    };
    for v in 0..n {
        if affected[v] && props[v] != identity {
            enqueue(v as VertexId, &mut in_queue, &mut worklist);
        }
    }
    for e in &delta.inserted {
        if props[e.src as usize] != identity {
            enqueue(e.src, &mut in_queue, &mut worklist);
        }
    }
    // Intact boundary: one linear scan of the new graph's edges. This is
    // the fixed O(E) cost of a repair; everything after is proportional to
    // the affected region.
    for v in new_graph.vertices() {
        if affected[v as usize] || props[v as usize] == identity || in_queue[v as usize] {
            continue;
        }
        if new_graph.neighbors(v).iter().any(|&d| affected[d as usize]) {
            enqueue(v, &mut in_queue, &mut worklist);
        }
    }

    let mut relaxed = 0u64;
    while let Some(u) = worklist.pop() {
        in_queue[u as usize] = false;
        let src_prop = props[u as usize];
        if src_prop == identity {
            continue;
        }
        let degree = new_graph.out_degree(u) as u32;
        for idx in new_graph.edge_range(u) {
            let dst = new_graph.neighbor_at(idx);
            let ctx = EdgeCtx {
                weight: new_graph.weight_at(idx),
                src: u,
                src_degree: degree,
            };
            let merged = algorithm.reduce(props[dst as usize], algorithm.process(&ctx, src_prop));
            relaxed += 1;
            if merged != props[dst as usize] {
                props[dst as usize] = merged;
                if !in_queue[dst as usize] {
                    in_queue[dst as usize] = true;
                    worklist.push(dst);
                }
            }
        }
    }

    RepairRun {
        properties: props,
        affected_vertices,
        relaxed_edges: relaxed,
    }
}

/// Per-iteration rank snapshots of one PageRank run: `ranks[0]` is the
/// initial state, `ranks[t]` the state after iteration `t`. The trace is
/// what makes delta-PageRank exact — iteration `t` of the new run can copy
/// iteration `t` of the old run for every unaffected vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankTrace {
    /// `iterations + 1` snapshots of all vertex ranks.
    pub ranks: Vec<Vec<f32>>,
}

impl PageRankTrace {
    /// The converged (final-iteration) ranks.
    pub fn final_ranks(&self) -> &[f32] {
        self.ranks.last().map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Runs PageRank from scratch, recording every iteration's ranks.
///
/// The loop mirrors [`ReferenceEngine::run`](crate::reference::ReferenceEngine)
/// statement for statement (same flat-edge-order accumulation, same
/// bit-preserving apply guard), so `final_ranks()` is bit-identical to the
/// reference engine's `properties`.
pub fn trace_pagerank(pr: &PageRank, graph: &Csr) -> PageRankTrace {
    let n = graph.num_vertices();
    let mut props: Vec<f32> = graph.vertices().map(|v| pr.init(v, graph)).collect();
    let mut ranks = vec![props.clone()];
    let iterations = if n == 0 {
        0
    } else {
        pr.max_iterations().unwrap_or(0)
    };
    for _ in 0..iterations {
        let mut temp: Vec<f32> = vec![pr.reduce_identity(); n];
        for v in graph.vertices() {
            let src_prop = props[v as usize];
            let degree = graph.out_degree(v) as u32;
            for idx in graph.edge_range(v) {
                let dst = graph.neighbor_at(idx);
                let ctx = EdgeCtx {
                    weight: graph.weight_at(idx),
                    src: v,
                    src_degree: degree,
                };
                let scatter_res = pr.process(&ctx, src_prop);
                temp[dst as usize] = pr.reduce(temp[dst as usize], scatter_res);
            }
        }
        for v in 0..n {
            let old = props[v];
            let new = pr.apply(v as VertexId, old, temp[v], graph);
            if new != old {
                props[v] = new;
            }
        }
        ranks.push(props.clone());
    }
    PageRankTrace { ranks }
}

/// Work accounting for one delta-PageRank advance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Affected-set size after the last iteration.
    pub affected_final: usize,
    /// Total vertex-iterations recomputed (full recompute would be
    /// `num_vertices * iterations`).
    pub recomputed_vertex_iterations: u64,
    /// Whether the delta path bailed to a full trace (vertex count changed
    /// or the old trace has the wrong shape).
    pub full_fallback: bool,
}

/// Advances a PageRank trace across a mutation batch, recomputing only
/// affected vertices. Returns the new trace (bit-identical to
/// [`trace_pagerank`] on `new_graph`) and work stats.
///
/// The affected set starts as every vertex whose in-contribution stream
/// changed — destinations of inserted/removed edges, plus the new-graph
/// out-neighbors of any vertex whose out-degree changed (its per-edge
/// contribution `rank / degree` changed even on surviving edges) — and
/// grows by one out-neighborhood hop after each iteration, because a rank
/// that diverged at iteration `t` contaminates its out-neighbors at
/// `t + 1`. Every other vertex's rank is copied from `old_trace`, which is
/// exact: an unaffected vertex has the same in-edges, in the same relative
/// flat order, from sources with unchanged degrees and (inductively)
/// unchanged ranks, so its `f32` accumulation reproduces the old bits.
///
/// Falls back to a full [`trace_pagerank`] when the vertex count changed —
/// the initial rank `1/N` shifts globally — or when `old_trace` does not
/// have `iterations + 1` snapshots of the right width.
pub fn delta_pagerank(
    pr: &PageRank,
    old_trace: &PageRankTrace,
    old_graph: &Csr,
    new_graph: &Csr,
    delta: &MutationDelta,
) -> (PageRankTrace, DeltaStats) {
    let n = new_graph.num_vertices();
    let iterations = pr.max_iterations().unwrap_or(0);
    let shape_ok = old_graph.num_vertices() == n
        && delta.old_num_vertices == n
        && old_trace.ranks.len() == iterations + 1
        && old_trace.ranks.iter().all(|r| r.len() == n);
    if !shape_ok {
        let stats = DeltaStats {
            affected_final: n,
            recomputed_vertex_iterations: (n as u64) * (iterations as u64),
            full_fallback: true,
        };
        return (trace_pagerank(pr, new_graph), stats);
    }

    // Reverse index over the new graph: per-destination flat edge indices,
    // ascending — i.e. exactly the order the reference scatter folds them.
    // Built CSR-style (counting sort) so the whole index is three flat
    // passes over the edge array, no per-vertex allocation; scanning flat
    // indices in ascending order makes each destination's list ascending.
    let m = new_graph.num_edges();
    let mut src_of: Vec<VertexId> = vec![0; m];
    let mut rev_off: Vec<usize> = vec![0; n + 1];
    for idx in 0..m {
        rev_off[new_graph.neighbor_at(idx) as usize + 1] += 1;
    }
    for d in 0..n {
        rev_off[d + 1] += rev_off[d];
    }
    let mut rev_flat: Vec<u32> = vec![0; m];
    let mut cursor = rev_off.clone();
    for v in new_graph.vertices() {
        for idx in new_graph.edge_range(v) {
            src_of[idx] = v;
            let d = new_graph.neighbor_at(idx) as usize;
            rev_flat[cursor[d]] = idx as u32;
            cursor[d] += 1;
        }
    }

    // Seed affected set.
    let mut affected = vec![false; n];
    let mut cur: Vec<VertexId> = Vec::new();
    let mark = |v: VertexId, affected: &mut Vec<bool>, cur: &mut Vec<VertexId>| {
        if !affected[v as usize] {
            affected[v as usize] = true;
            cur.push(v);
        }
    };
    for e in delta.inserted.iter().chain(delta.removed.iter()) {
        mark(e.dst, &mut affected, &mut cur);
    }
    for v in new_graph.vertices() {
        if old_graph.out_degree(v) != new_graph.out_degree(v) {
            for &d in new_graph.neighbors(v) {
                mark(d, &mut affected, &mut cur);
            }
        }
    }

    let mut ranks: Vec<Vec<f32>> = vec![old_trace.ranks[0].clone()];
    let mut recomputed = 0u64;
    let mut frontier_start = 0usize;
    for t in 1..=iterations {
        let mut next = old_trace.ranks[t].clone();
        let prev = &ranks[t - 1];
        for &v in &cur {
            let mut temp = pr.reduce_identity();
            let (lo, hi) = (rev_off[v as usize], rev_off[v as usize + 1]);
            for &idx in &rev_flat[lo..hi] {
                let idx = idx as usize;
                let src = src_of[idx];
                let ctx = EdgeCtx {
                    weight: new_graph.weight_at(idx),
                    src,
                    src_degree: new_graph.out_degree(src) as u32,
                };
                temp = pr.reduce(temp, pr.process(&ctx, prev[src as usize]));
            }
            let old = prev[v as usize];
            let applied = pr.apply(v, old, temp, new_graph);
            next[v as usize] = if applied != old { applied } else { old };
            recomputed += 1;
        }
        // Grow by one hop: only the vertices added last round can reach
        // anything new (earlier members' neighborhoods are already in).
        let frontier_end = cur.len();
        for i in frontier_start..frontier_end {
            let v = cur[i];
            for &d in new_graph.neighbors(v) {
                if !affected[d as usize] {
                    affected[d as usize] = true;
                    cur.push(d);
                }
            }
        }
        frontier_start = frontier_end;
        ranks.push(next);
    }

    let stats = DeltaStats {
        affected_final: cur.len(),
        recomputed_vertex_iterations: recomputed,
        full_fallback: false,
    };
    (PageRankTrace { ranks }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, ConnectedComponents, Sssp, WidestPath};
    use crate::reference::ReferenceEngine;
    use scalagraph_graph::mutate::{DynamicCsr, MutationBatch};
    use scalagraph_graph::{generators, Edge, EdgeList};

    fn mutate_rounds(
        base_edges: Vec<Edge>,
        n: usize,
        seed: u64,
        rounds: usize,
    ) -> Vec<(Csr, Csr, MutationDelta)> {
        // Deterministic xorshift batch generator; returns
        // (old_graph, new_graph, delta) triples for chained batches.
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut g = DynamicCsr::new(Csr::from_edges(n, &base_edges));
        let mut out = Vec::new();
        for _ in 0..rounds {
            let old = g.canonical().clone();
            let nv = g.num_vertices() as u64;
            let mut b = MutationBatch::new();
            for _ in 0..(next() % 8) {
                b.insert_edge(Edge::weighted(
                    (next() % nv) as u32,
                    (next() % nv) as u32,
                    (next() % 9) as u32 + 1,
                ));
            }
            for _ in 0..(next() % 8) {
                b.remove_edge((next() % nv) as u32, (next() % nv) as u32);
            }
            if next() % 4 == 0 {
                b.add_vertex();
            }
            if next() % 6 == 0 {
                b.isolate_vertex((next() % nv) as u32);
            }
            let delta = g.apply(&b).unwrap();
            out.push((old, g.canonical().clone(), delta));
        }
        out
    }

    fn check_repair<A: Algorithm<Prop = u32>>(algo: &A, rounds: &[(Csr, Csr, MutationDelta)]) {
        let engine = ReferenceEngine::new();
        let mut props = engine.run(algo, &rounds[0].0).properties;
        for (i, (old, new, delta)) in rounds.iter().enumerate() {
            let repaired = repair_rooted(algo, old, &props, new, delta);
            let golden = engine.run(algo, new).properties;
            assert_eq!(repaired.properties, golden, "{} round {i}", algo.name());
            props = repaired.properties;
        }
    }

    #[test]
    fn bfs_repair_matches_reference_across_chained_batches() {
        let rounds = mutate_rounds(generators::uniform(48, 200, 7), 48, 0xABCD, 10);
        check_repair(&Bfs::from_root(0), &rounds);
    }

    #[test]
    fn sssp_repair_matches_reference_across_chained_batches() {
        let mut edges = generators::uniform(40, 180, 9);
        for (i, e) in edges.iter_mut().enumerate() {
            e.weight = (i % 13) as u32 + 1;
        }
        let rounds = mutate_rounds(edges, 40, 0x5EED, 10);
        check_repair(&Sssp::from_root(1), &rounds);
    }

    #[test]
    fn cc_repair_matches_reference_across_chained_batches() {
        let mut list = EdgeList::new(36);
        for e in generators::uniform(36, 90, 3) {
            list.push(e);
        }
        list.symmetrize();
        // CC assumes a symmetric graph only for interpretation, not for the
        // fixpoint math; asymmetric mutations still have a unique fixpoint
        // the repair must match.
        let rounds = mutate_rounds(list.as_slice().to_vec(), 36, 0xC0FFEE, 8);
        check_repair(&ConnectedComponents::new(), &rounds);
    }

    #[test]
    fn widest_path_repair_matches_reference_across_chained_batches() {
        let mut edges = generators::uniform(32, 140, 5);
        for (i, e) in edges.iter_mut().enumerate() {
            e.weight = (i % 7) as u32 + 1;
        }
        let rounds = mutate_rounds(edges, 32, 0x77, 8);
        check_repair(&WidestPath::from_root(0), &rounds);
    }

    #[test]
    fn repair_handles_disconnecting_the_root_region() {
        // 0 -> 1 -> 2; removing 0 -> 1 must return 1 and 2 to UNREACHED.
        let old = Csr::from_edges(3, &generators::path(3));
        let mut g = DynamicCsr::new(old.clone());
        let mut b = MutationBatch::new();
        b.remove_edge(0, 1);
        let delta = g.apply(&b).unwrap();
        let props = ReferenceEngine::new()
            .run(&Bfs::from_root(0), &old)
            .properties;
        let repaired = repair_rooted(&Bfs::from_root(0), &old, &props, g.canonical(), &delta);
        assert_eq!(repaired.properties, vec![0, u32::MAX, u32::MAX]);
        assert_eq!(repaired.affected_vertices, 2);
    }

    #[test]
    fn repair_of_empty_delta_touches_nothing() {
        let old = Csr::from_edges(16, &generators::binary_tree(16));
        let mut g = DynamicCsr::new(old.clone());
        let delta = g.apply(&MutationBatch::new()).unwrap();
        let props = ReferenceEngine::new()
            .run(&Bfs::from_root(0), &old)
            .properties;
        let repaired = repair_rooted(&Bfs::from_root(0), &old, &props, g.canonical(), &delta);
        assert_eq!(repaired.properties, props);
        assert_eq!(repaired.affected_vertices, 0);
        assert_eq!(repaired.relaxed_edges, 0);
    }

    #[test]
    fn trace_final_ranks_bit_match_reference_engine() {
        let g = Csr::from_edges(64, &generators::rmat(64, 320, 11));
        let pr = PageRank::new(12);
        let trace = trace_pagerank(&pr, &g);
        let reference = ReferenceEngine::new().run(&pr, &g);
        assert_eq!(trace.ranks.len(), 13);
        let bits: Vec<u32> = trace.final_ranks().iter().map(|r| r.to_bits()).collect();
        let golden: Vec<u32> = reference.properties.iter().map(|r| r.to_bits()).collect();
        assert_eq!(bits, golden);
    }

    #[test]
    fn delta_pagerank_bit_matches_full_trace_across_chained_batches() {
        let pr = PageRank::new(8);
        let mut edges = generators::rmat(56, 300, 21);
        edges.truncate(296);
        let mut g = DynamicCsr::new(Csr::from_edges(56, &edges));
        let mut trace = trace_pagerank(&pr, g.canonical());
        let mut rng = 0x9E3779u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut saw_partial = false;
        for round in 0..8 {
            let old = g.canonical().clone();
            let nv = g.num_vertices() as u64;
            let mut b = MutationBatch::new();
            b.insert_edge(Edge::new((next() % nv) as u32, (next() % nv) as u32));
            if round % 2 == 0 {
                b.remove_edge((next() % nv) as u32, (next() % nv) as u32);
            }
            let delta = g.apply(&b).unwrap();
            let (new_trace, stats) = delta_pagerank(&pr, &trace, &old, g.canonical(), &delta);
            let golden = trace_pagerank(&pr, g.canonical());
            for (t, (ours, theirs)) in new_trace.ranks.iter().zip(&golden.ranks).enumerate() {
                let a: Vec<u32> = ours.iter().map(|r| r.to_bits()).collect();
                let b: Vec<u32> = theirs.iter().map(|r| r.to_bits()).collect();
                assert_eq!(a, b, "round {round} iteration {t}");
            }
            assert!(!stats.full_fallback, "round {round} fell back");
            saw_partial |= stats.affected_final < g.num_vertices();
            trace = new_trace;
        }
        assert!(saw_partial, "delta path never did less than full work");
    }

    #[test]
    fn delta_pagerank_falls_back_when_vertex_count_changes() {
        let pr = PageRank::new(4);
        let mut g = DynamicCsr::new(Csr::from_edges(8, &generators::path(8)));
        let old = g.canonical().clone();
        let trace = trace_pagerank(&pr, &old);
        let mut b = MutationBatch::new();
        b.add_vertex().insert_edge(Edge::new(8, 0));
        let delta = g.apply(&b).unwrap();
        let (new_trace, stats) = delta_pagerank(&pr, &trace, &old, g.canonical(), &delta);
        assert!(stats.full_fallback);
        let golden = trace_pagerank(&pr, g.canonical());
        assert_eq!(new_trace, golden);
    }
}
