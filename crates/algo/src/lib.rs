//! The vertex-centric programming model (VCM) and the four graph algorithms
//! evaluated by the ScalaGraph paper.
//!
//! Figure 1 of the paper defines the model: an iteration is a **Scatter**
//! phase, where every edge of every active vertex produces an update via the
//! user-defined `Process` function that is folded into the destination's
//! temporary property via `Reduce`, followed by an **Apply** phase, where
//! each vertex merges its temporary property into its persistent property
//! and re-activates itself if the property changed.
//!
//! * [`Algorithm`] — the user-facing trait mirroring `Process` / `Reduce` /
//!   `Apply`.
//! * [`algorithms`] — BFS, SSSP, CC, and PageRank (Section V-A's workloads).
//! * [`dynamic`] — incremental variants for mutated graphs: monotone
//!   fixpoint repair (BFS/SSSP/CC/widest-path) and trace-based
//!   delta-PageRank, both bit-identical to full recompute.
//! * [`mod@reference`] — a golden sequential engine implementing Figure 1
//!   verbatim; every hardware simulator in this workspace is validated
//!   against it.
//!
//! # Example
//!
//! ```
//! use scalagraph_algo::{algorithms::Bfs, reference::ReferenceEngine};
//! use scalagraph_graph::{generators, Csr};
//!
//! let g = Csr::from_edges(8, &generators::binary_tree(8));
//! let run = ReferenceEngine::new().run(&Bfs::from_root(0), &g);
//! assert_eq!(run.properties[6], 2); // two levels below the root
//! ```

pub mod algorithms;
pub mod dynamic;
pub mod model;
pub mod reference;

pub use model::{Algorithm, EdgeCtx, PropValue};
pub use reference::{ReferenceEngine, Run};
