//! The update-aggregation pipeline (Section IV-B, Figure 11).
//!
//! Each routing unit holds a small register array. When an update enters,
//! it is compared against the buffered updates (hash-partitioned register
//! columns in hardware; a bounded associative window here): if one targets
//! the same destination vertex, the two are reduced in place — the paper's
//! "pre-execute the Reduce ... in the routing time" — and one NoC packet is
//! eliminated. Otherwise the update occupies a free register, or, when the
//! array is full, the oldest update is evicted to the output to make room
//! (FIFO order, the systolic read of Figure 11(b)).
//!
//! With zero registers the structure degenerates to a pass-through FIFO,
//! which is the "0 registers" point of Figure 18(a).

use scalagraph_graph::VertexId;
use std::collections::VecDeque;

/// A pending vertex update: destination and partially-reduced value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingUpdate<P> {
    /// Destination vertex.
    pub dst: VertexId,
    /// Accumulated value.
    pub value: P,
}

/// Outcome of offering an update to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Coalesced with a buffered update to the same vertex; no new packet.
    Merged,
    /// Stored in a free register.
    Buffered,
    /// Stored after evicting the oldest update to the output queue.
    Evicted,
}

/// Register array + output queue of one routing unit.
///
/// # Example
///
/// ```
/// use scalagraph::aggregate::AggregationBuffer;
///
/// let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(4);
/// agg.push(7, 5, |a, b| a.min(b));
/// agg.push(7, 3, |a, b| a.min(b)); // merged
/// assert_eq!(agg.merges(), 1);
/// let u = agg.drain_one().unwrap();
/// assert_eq!((u.dst, u.value), (7, 3));
/// ```
#[derive(Debug, Clone)]
pub struct AggregationBuffer<P> {
    registers: VecDeque<PendingUpdate<P>>,
    output: VecDeque<PendingUpdate<P>>,
    capacity: usize,
    merges: u64,
}

impl<P: Copy> AggregationBuffer<P> {
    /// Creates a buffer with `registers` coalescing registers (0 = FIFO).
    pub fn new(registers: usize) -> Self {
        AggregationBuffer {
            registers: VecDeque::with_capacity(registers),
            output: VecDeque::new(),
            capacity: registers,
            merges: 0,
        }
    }

    /// Bounded variant of [`push`](Self::push) for use as a router queue:
    /// refuses (returning `None`, update not consumed) when accepting the
    /// update would grow the eviction output queue beyond `max_output` —
    /// the back-pressure signal of a full link buffer. A merge never needs
    /// space and is always accepted.
    pub fn try_push<F>(
        &mut self,
        dst: VertexId,
        value: P,
        max_output: usize,
        reduce: F,
    ) -> Option<PushOutcome>
    where
        F: Fn(P, P) -> P,
    {
        if self.capacity > 0 {
            if let Some(hit) = self
                .registers
                .iter_mut()
                .chain(self.output.iter_mut())
                .find(|u| u.dst == dst)
            {
                hit.value = reduce(hit.value, value);
                self.merges += 1;
                return Some(PushOutcome::Merged);
            }
        }
        let will_evict = self.capacity == 0 || self.registers.len() >= self.capacity;
        if will_evict && self.output.len() >= max_output {
            return None;
        }
        Some(self.push(dst, value, reduce))
    }

    /// Offers an update; `reduce` combines two values for the same vertex.
    /// With at least one register, the associative match covers every
    /// resident update (registers and the not-yet-drained output queue) —
    /// the compare-any-stage behaviour of Figure 11. With zero registers
    /// the structure is a pure FIFO and never merges.
    pub fn push<F>(&mut self, dst: VertexId, value: P, reduce: F) -> PushOutcome
    where
        F: Fn(P, P) -> P,
    {
        if self.capacity > 0 {
            if let Some(hit) = self
                .registers
                .iter_mut()
                .chain(self.output.iter_mut())
                .find(|u| u.dst == dst)
            {
                hit.value = reduce(hit.value, value);
                self.merges += 1;
                return PushOutcome::Merged;
            }
        }
        if self.capacity == 0 {
            self.output.push_back(PendingUpdate { dst, value });
            return PushOutcome::Evicted;
        }
        if self.registers.len() < self.capacity {
            self.registers.push_back(PendingUpdate { dst, value });
            PushOutcome::Buffered
        } else {
            // `capacity > 0` and the register file is full, so the pop
            // always yields the oldest entry.
            if let Some(oldest) = self.registers.pop_front() {
                self.output.push_back(oldest);
            }
            self.registers.push_back(PendingUpdate { dst, value });
            PushOutcome::Evicted
        }
    }

    /// Takes one update from the output queue; when the output is empty,
    /// releases the oldest buffered register instead (the systolic read).
    /// Returns `None` only when the structure is completely empty.
    pub fn drain_one(&mut self) -> Option<PendingUpdate<P>> {
        self.output
            .pop_front()
            .or_else(|| self.registers.pop_front())
    }

    /// The update [`drain_one`](Self::drain_one) would return, without
    /// removing it.
    pub fn peek_next(&self) -> Option<&PendingUpdate<P>> {
        self.output.front().or_else(|| self.registers.front())
    }

    /// Updates waiting in the eviction output queue (not the registers).
    pub fn output_len(&self) -> usize {
        self.output.len()
    }

    /// Total updates held (registers + output queue).
    pub fn len(&self) -> usize {
        self.registers.len() + self.output.len()
    }

    /// Whether the structure holds no updates at all.
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty() && self.output.is_empty()
    }

    /// Number of coalescing events so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of coalescing registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min(a: u32, b: u32) -> u32 {
        a.min(b)
    }

    #[test]
    fn zero_registers_is_fifo() {
        let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(0);
        assert_eq!(agg.push(1, 10, min), PushOutcome::Evicted);
        assert_eq!(agg.push(1, 5, min), PushOutcome::Evicted);
        // No merging: both updates pass through unchanged, in order.
        assert_eq!(agg.merges(), 0);
        assert_eq!(agg.drain_one().unwrap().value, 10);
        assert_eq!(agg.drain_one().unwrap().value, 5);
    }

    #[test]
    fn merge_reduces_in_place() {
        let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(4);
        assert_eq!(agg.push(3, 9, min), PushOutcome::Buffered);
        assert_eq!(agg.push(3, 4, min), PushOutcome::Merged);
        assert_eq!(agg.push(3, 7, min), PushOutcome::Merged);
        assert_eq!(agg.merges(), 2);
        assert_eq!(agg.len(), 1);
        let u = agg.drain_one().unwrap();
        assert_eq!((u.dst, u.value), (3, 4));
    }

    #[test]
    fn eviction_preserves_fifo_order() {
        let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(2);
        agg.push(1, 1, min);
        agg.push(2, 2, min);
        assert_eq!(agg.push(3, 3, min), PushOutcome::Evicted);
        assert_eq!(agg.push(4, 4, min), PushOutcome::Evicted);
        let order: Vec<u32> = std::iter::from_fn(|| agg.drain_one().map(|u| u.dst)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sum_semantics_conserve_total() {
        let add = |a: u32, b: u32| a + b;
        let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(3);
        let mut injected = 0u32;
        for i in 0..100u32 {
            let dst = i % 7;
            agg.push(dst, i, add);
            injected += i;
        }
        let mut drained = 0u32;
        while let Some(u) = agg.drain_one() {
            drained += u.value;
        }
        assert_eq!(drained, injected, "aggregation must conserve the sum");
    }

    #[test]
    fn more_registers_more_merges() {
        // Same update stream; bigger windows coalesce at least as much.
        // Destinations repeat at distance 8, so windows >= 8 merge heavily
        // while a FIFO (0 registers) cannot.
        let stream: Vec<VertexId> = (0..400u32).map(|i| i % 8).collect();
        let mut last = 0;
        for regs in [0usize, 4, 8, 16] {
            let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(regs);
            for (i, &d) in stream.iter().enumerate() {
                agg.push(d, i as u32, min);
                if i % 3 == 0 {
                    let _ = agg.drain_one();
                }
            }
            assert!(
                agg.merges() >= last,
                "{regs} registers merged {} < previous {last}",
                agg.merges()
            );
            last = agg.merges();
        }
        assert!(last > 0);
    }

    #[test]
    fn drain_empties_registers_too() {
        let mut agg: AggregationBuffer<u32> = AggregationBuffer::new(8);
        agg.push(1, 1, min);
        agg.push(2, 2, min);
        assert_eq!(agg.output_len(), 0);
        assert!(agg.drain_one().is_some());
        assert!(agg.drain_one().is_some());
        assert!(agg.drain_one().is_none());
        assert!(agg.is_empty());
    }
}
