//! Simulation statistics and derived metrics.

/// Counters accumulated over one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles during which a Scatter wave was in flight.
    pub scatter_cycles: u64,
    /// Cycles during which an Apply pass was in flight.
    pub apply_cycles: u64,
    /// Iterations (Scatter waves) executed.
    pub iterations: u64,
    /// Edges dispatched to GUs across all iterations (the GTEPS numerator).
    pub traversed_edges: u64,
    /// Vertex updates produced by GUs.
    pub updates_produced: u64,
    /// Updates that entered the NoC (excludes GU-local deliveries).
    pub updates_injected: u64,
    /// Updates folded into scratchpad temporaries.
    pub updates_delivered: u64,
    /// Updates eliminated by the aggregation pipelines.
    pub agg_merges: u64,
    /// Total NoC link traversals ("the amount of traffic injected into the
    /// on-chip network", the metric of Figures 6/17/18).
    pub noc_hops: u64,
    /// Cycles an update spent blocked by arbitration or back-pressure.
    pub noc_conflicts: u64,
    /// Sum of per-update routing latencies (inject to SPD arrival).
    pub routing_latency_sum: u64,
    /// Updates contributing to `routing_latency_sum`.
    pub routing_latency_count: u64,
    /// Cycles in which each GU was executing, summed over GUs.
    pub gu_busy_cycles: u64,
    /// `cycles × num_pes`, the denominator of PE utilization.
    pub pe_cycle_budget: u64,
    /// Bytes read from HBM.
    pub offchip_bytes_read: u64,
    /// Bytes written to HBM.
    pub offchip_bytes_written: u64,
    /// HBM read requests issued.
    pub offchip_reads: u64,
    /// Graph slices processed per iteration (1 = whole graph resident).
    pub slices: u64,
    /// Whether inter-phase pipelining was actually engaged.
    pub inter_phase_used: bool,
    /// Total vertex activations across iterations.
    pub activations: u64,
    /// Edge lines fetched by the EPrefs.
    pub epref_lines: u64,
    /// Edge-line fetches avoided by piggybacking on a shared in-flight
    /// line (degree-aware locality).
    pub epref_piggybacks: u64,
    /// Record lines fetched by the VPrefs.
    pub vpref_lines: u64,
    /// Scatter cycles in which a dispatcher row had no fetched segments.
    pub dispatch_starved_row_cycles: u64,
    /// Vertices applied (SPD Apply operations), including non-activating
    /// ones.
    pub applies: u64,
    /// Flits discarded by injected link-drop faults.
    pub flits_dropped: u64,
    /// Flits held back by injected link-delay faults.
    pub flits_delayed: u64,
    /// Updates whose destination id was corrupted by an injected fault.
    pub updates_corrupted: u64,
    /// HBM pseudo-channel stalls applied from the fault plan.
    pub hbm_stalls_injected: u64,
}

impl SimStats {
    /// Mean GU (PE) utilization in `[0, 1]` — Figure 20's metric.
    pub fn pe_utilization(&self) -> f64 {
        if self.pe_cycle_budget == 0 {
            0.0
        } else {
            self.gu_busy_cycles as f64 / self.pe_cycle_budget as f64
        }
    }

    /// Mean routing latency in cycles per delivered NoC update — the
    /// "average packet routing latency" of Section V-C.
    pub fn avg_routing_latency(&self) -> f64 {
        if self.routing_latency_count == 0 {
            0.0
        } else {
            self.routing_latency_sum as f64 / self.routing_latency_count as f64
        }
    }

    /// Wall-clock seconds at `clock_mhz`.
    pub fn seconds(&self, clock_mhz: f64) -> f64 {
        self.cycles as f64 / (clock_mhz * 1e6)
    }

    /// Throughput in giga-traversed-edges per second at `clock_mhz` —
    /// Figure 14's metric.
    pub fn gteps(&self, clock_mhz: f64) -> f64 {
        let s = self.seconds(clock_mhz);
        if s <= 0.0 {
            0.0
        } else {
            self.traversed_edges as f64 / s / 1e9
        }
    }

    /// Total off-chip traffic in bytes.
    pub fn offchip_bytes(&self) -> u64 {
        self.offchip_bytes_read + self.offchip_bytes_written
    }
}

/// The outcome of a simulated run: final properties plus statistics.
#[derive(Debug, Clone)]
pub struct SimResult<P> {
    /// Final vertex properties.
    pub properties: Vec<P>,
    /// Simulation counters.
    pub stats: SimStats,
    /// Active-vertex count entering each iteration.
    pub frontier_sizes: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_latency_guard_zero() {
        let s = SimStats::default();
        assert_eq!(s.pe_utilization(), 0.0);
        assert_eq!(s.avg_routing_latency(), 0.0);
        assert_eq!(s.gteps(250.0), 0.0);
    }

    #[test]
    fn gteps_math() {
        let s = SimStats {
            cycles: 1000,
            traversed_edges: 250_000,
            ..Default::default()
        };
        // 1000 cycles at 250 MHz = 4 us; 250k edges / 4 us = 62.5 GTEPS.
        assert!((s.gteps(250.0) - 62.5).abs() < 1e-9);
        assert!((s.seconds(250.0) - 4e-6).abs() < 1e-18);
    }

    #[test]
    fn utilization_ratio() {
        let s = SimStats {
            gu_busy_cycles: 300,
            pe_cycle_budget: 400,
            ..Default::default()
        };
        assert!((s.pe_utilization() - 0.75).abs() < 1e-12);
    }
}
