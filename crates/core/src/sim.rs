//! The cycle-accurate ScalaGraph engine.
//!
//! One [`Simulator::run`] executes a vertex-centric algorithm to completion
//! on the modelled accelerator, advancing all hardware units one clock
//! cycle at a time:
//!
//! * per-tile **HBM** pseudo-channels ([`scalagraph_mem::Hbm`]),
//! * per-tile **prefetchers** (VPref batches active-vertex records eight to
//!   a 64-byte line; EPref fetches 64-byte edge lines with adjacent-line
//!   merging — the locality the degree-aware scheduler exploits),
//! * per-row **dispatching units** (up to one 64-byte line of edges per
//!   row per cycle, from at most `max_scheduled_vertices` distinct
//!   sources),
//! * per-PE **graph units** (one `Process` per cycle),
//! * per-PE **routing units** — XY mesh routing with the update-aggregation
//!   buffer on every output port,
//! * per-PE **scratchpads** (one `Reduce` per cycle, one `Apply` per
//!   cycle).
//!
//! Phases follow Figure 9: a Scatter wave drains fully before its Apply
//! pass starts; with inter-phase pipelining (Section IV-D) the *next*
//! Scatter wave runs concurrently with the current Apply pass, fed by
//! freshly applied vertices.

use crate::aggregate::{AggregationBuffer, PendingUpdate};
use crate::calendar::Calendar;
use crate::cancel::{CancelSignal, CancelToken};
use crate::config::ScalaGraphConfig;
use crate::device::DeviceGraph;
use crate::error::{
    HbmChannelSnapshot, NodeSnapshot, SimError, StallSnapshot, StalledUnit, TileSnapshot,
};
use crate::fault::{FaultInjector, FlitAction};
use crate::mapping::Mapping;
use crate::slab::TagSlab;
use crate::stats::{SimResult, SimStats};
use scalagraph_algo::{Algorithm, EdgeCtx};
use scalagraph_graph::{Csr, GraphRead, VertexId, EDGES_PER_LINE, LINE_BYTES};
use scalagraph_mem::{Hbm, MemRequest};
use scalagraph_telemetry::{
    Collector, HbmChannelSample, InstantKind, NullCollector, SpanName, TileSample, Topology,
};
use std::collections::VecDeque;
use std::ops::Range;

/// Safety cap on simulated cycles; reaching it means the workload diverged
/// (the progress watchdog catches deadlocks much earlier), so the run ends
/// with [`SimError::CycleCapExceeded`] instead of spinning forever. Public
/// because it bounds the deadline knobs: `ScalaGraphConfig::validate`
/// rejects watchdog windows and [`cycle_limit`](ScalaGraphConfig::cycle_limit)
/// values beyond it.
pub const CYCLE_SAFETY_CAP: u64 = 2_000_000_000;

/// An edge workload travelling from dispatcher to GU.
#[derive(Debug, Clone, Copy)]
struct EdgeWork<P> {
    src: VertexId,
    dst: VertexId,
    weight: u32,
    src_degree: u32,
    src_prop: P,
}

/// A partially-reduced vertex update in flight (value plus earliest
/// injection cycle, for latency accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Flit<P> {
    value: P,
    inject: u64,
}

/// Output directions of a routing unit. `EJECT` feeds the local SPD.
const EJECT: usize = 0;
const NORTH: usize = 1;
const SOUTH: usize = 2;
const WEST: usize = 3;
const EAST: usize = 4;
const NUM_DIRS: usize = 5;

/// An active vertex queued in a tile's frontend.
#[derive(Debug, Clone, Copy)]
struct ActiveVertex<P> {
    v: VertexId,
    prop: P,
}

/// A record-fetched vertex whose edge lines are being issued; `cursor` is
/// the next un-issued flat edge index.
#[derive(Debug, Clone, Copy)]
struct EdgeCursor<P> {
    av: ActiveVertex<P>,
    cursor: usize,
    end: usize,
    degree: u32,
}

/// A run of contiguous edges of one source vertex, ready for dispatch.
/// Deliberately not `Clone`: segments move through the prefetch slab and
/// dispatch queues, never duplicating on the hot path.
#[derive(Debug)]
struct Segment<P> {
    src: VertexId,
    prop: P,
    src_degree: u32,
    edges: Range<usize>,
}

/// Memory-request tags encode the owning slab and slot so responses route
/// back without a hash lookup: bit 0 picks the slab (0 = vertex records,
/// 1 = edge lines), the rest is the recycled slot id. Write-backs carry no
/// response, so their tags only need to be distinct for diagnostics — a
/// monotonic counter above [`WRITE_TAG_BIT`].
const TAG_KIND_LINE: u64 = 1;
const WRITE_TAG_BIT: u64 = 1 << 63;

fn vpref_tag(slot: u32) -> u64 {
    u64::from(slot) << 1
}

fn line_tag(slot: u32) -> u64 {
    (u64::from(slot) << 1) | TAG_KIND_LINE
}

fn tag_slot(tag: u64) -> u32 {
    ((tag & !WRITE_TAG_BIT) >> 1) as u32
}

/// Per-tile fetch/dispatch frontend.
struct TileFrontend<P> {
    hbm: Hbm,
    channel_rr: usize,
    next_write_tag: u64,
    /// Actives awaiting a vertex-record fetch.
    vpref_pending: VecDeque<ActiveVertex<P>>,
    /// Record-line fetches in flight, slot-indexed by the request tag.
    vpref_inflight: TagSlab<ActiveVertex<P>>,
    /// Records fetched; edge lines being issued.
    records_ready: VecDeque<EdgeCursor<P>>,
    /// Edge-line fetches in flight, slot-indexed by the request tag.
    line_inflight: TagSlab<Segment<P>>,
    /// Most recently issued edge line `(line id, tag)`, for adjacent-line
    /// merging across consecutive active vertices.
    last_line: Option<(usize, u64)>,
    /// Per-row dispatch queues of fetched segments.
    row_queues: Vec<VecDeque<Segment<P>>>,
    /// Activations awaiting active-list write-back (batched 8 per line).
    write_backlog: u64,
}

impl<P: Copy> TileFrontend<P> {
    fn new(hbm: Hbm, rows: usize) -> Self {
        TileFrontend {
            hbm,
            channel_rr: 0,
            next_write_tag: 0,
            vpref_pending: VecDeque::new(),
            vpref_inflight: TagSlab::new(),
            records_ready: VecDeque::new(),
            line_inflight: TagSlab::new(),
            last_line: None,
            row_queues: (0..rows).map(|_| VecDeque::new()).collect(),
            write_backlog: 0,
        }
    }

    fn is_drained(&self) -> bool {
        self.vpref_pending.is_empty()
            && self.vpref_inflight.is_empty()
            && self.records_ready.is_empty()
            && self.line_inflight.is_empty()
            && self.row_queues.iter().all(VecDeque::is_empty)
    }

    fn fresh_write_tag(&mut self) -> u64 {
        self.next_write_tag += 1;
        WRITE_TAG_BIT | self.next_write_tag
    }
}

/// One PE's per-cycle state: GU input queue, router output buffers, apply
/// queue.
struct Node<P> {
    gu_queue: VecDeque<EdgeWork<P>>,
    out: Vec<AggregationBuffer<Flit<P>>>,
    apply_queue: VecDeque<VertexId>,
}

/// Phase of the global machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// A Scatter wave is in flight (no Apply pass).
    Scatter,
    /// An Apply pass is in flight; under inter-phase pipelining the next
    /// Scatter wave runs concurrently with it.
    Apply,
}

/// The cycle-accurate simulator. See the [module docs](self) for the
/// machine model.
///
/// # Example
///
/// ```
/// use scalagraph::{ScalaGraphConfig, Simulator};
/// use scalagraph_algo::algorithms::Bfs;
/// use scalagraph_graph::{generators, Csr};
///
/// let graph = Csr::from_edges(64, &generators::binary_tree(64));
/// let cfg = ScalaGraphConfig::with_pes(32);
/// let result = Simulator::new(&Bfs::from_root(0), &graph, cfg).run();
/// assert_eq!(result.properties[1], 1);
/// assert!(result.stats.cycles > 0);
/// ```
pub struct Simulator<'a, A: Algorithm, G: GraphRead = Csr> {
    algo: &'a A,
    graph: &'a G,
    config: ScalaGraphConfig,
    device: DeviceGraph,
}

impl<'a, A: Algorithm, G: GraphRead> Simulator<'a, A, G> {
    /// Prepares a simulator: validates the configuration and lays the
    /// graph out across tiles (and slices, if it exceeds on-chip
    /// capacity).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`ScalaGraphConfig::validate`]); [`Simulator::try_new`] reports the
    /// same conditions as a [`SimError`] instead.
    pub fn new(algo: &'a A, graph: &'a G, config: ScalaGraphConfig) -> Self {
        match Self::try_new(algo, graph, config) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Simulator::new`]: rejects degenerate configurations with
    /// [`SimError::ConfigInvalid`] instead of panicking, so sweeps can
    /// record the failure and move on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] when
    /// [`ScalaGraphConfig::validate`] does.
    pub fn try_new(algo: &'a A, graph: &'a G, config: ScalaGraphConfig) -> Result<Self, SimError> {
        config.validate()?;
        let device = DeviceGraph::prepare(graph, &config);
        Ok(Simulator {
            algo,
            graph,
            config,
            device,
        })
    }

    /// The device layout prepared for this run.
    pub fn device(&self) -> &DeviceGraph {
        &self.device
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScalaGraphConfig {
        &self.config
    }

    /// Runs the algorithm to completion and returns final properties plus
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if the run fails (see [`Simulator::try_run`] for the
    /// recoverable form). Without a fault plan a failure indicates a
    /// simulator bug, so the panic keeps legacy callers loud.
    pub fn run(&mut self) -> SimResult<A::Prop> {
        match self.try_run() {
            Ok(result) => result,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Runs the algorithm to completion, surfacing every failure mode —
    /// watchdog-detected deadlocks (with a diagnostic [`StallSnapshot`]),
    /// protocol violations, unrecoverable injected faults, the global
    /// cycle cap — as a typed [`SimError`] instead of a panic. With no
    /// fault plan attached the result is identical to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] describing why the machine could not
    /// complete the run.
    pub fn try_run(&mut self) -> Result<SimResult<A::Prop>, SimError> {
        self.try_run_with(&mut NullCollector)
    }

    /// [`Simulator::try_run`] with a telemetry [`Collector`] attached.
    ///
    /// The engine guards every emission point with the collector's
    /// compile-time `ENABLED` flag, so `try_run_with(&mut NullCollector)`
    /// monomorphizes to exactly the un-instrumented machine and a
    /// [`telemetry::Recorder`](scalagraph_telemetry::Recorder) observes the
    /// run without perturbing it: results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] describing why the machine could not
    /// complete the run. The collector still receives its final flush and
    /// `on_run_end`, so partial traces of failed runs export cleanly.
    pub fn try_run_with<C: Collector>(
        &mut self,
        collector: &mut C,
    ) -> Result<SimResult<A::Prop>, SimError> {
        Engine::new(
            self.algo,
            self.graph,
            &self.config,
            &self.device,
            collector,
            None,
        )
        .try_run()
    }

    /// [`Simulator::try_run`] under a cooperative [`CancelToken`].
    ///
    /// The engine polls the token once per stepped cycle (one relaxed
    /// atomic load; fast-forwarded spans wake at their next event cycle)
    /// and unwinds through the normal error path when it is signalled:
    /// [`CancelToken::cancel`] yields [`SimError::Cancelled`],
    /// [`CancelToken::expire`] yields [`SimError::DeadlineExceeded`], both
    /// carrying the cycle and the partial [`SimStats`]. An unsignalled
    /// token leaves the run bit-identical to [`Simulator::try_run`].
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] describing why the machine could not
    /// complete the run.
    pub fn try_run_cancellable(
        &mut self,
        token: &CancelToken,
    ) -> Result<SimResult<A::Prop>, SimError> {
        self.try_run_controlled(&mut NullCollector, token)
    }

    /// [`Simulator::try_run_cancellable`] with a telemetry [`Collector`]
    /// attached: the full-control entry point the batch runtime uses.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] describing why the machine could not
    /// complete the run. The collector still receives its final flush and
    /// `on_run_end` on cancellation, so partial traces export cleanly.
    pub fn try_run_controlled<C: Collector>(
        &mut self,
        collector: &mut C,
        token: &CancelToken,
    ) -> Result<SimResult<A::Prop>, SimError> {
        Engine::new(
            self.algo,
            self.graph,
            &self.config,
            &self.device,
            collector,
            Some(token),
        )
        .try_run()
    }
}

/// Convenience one-shot run with a fresh simulator.
pub fn run_on<A: Algorithm, G: GraphRead>(
    algo: &A,
    graph: &G,
    config: ScalaGraphConfig,
) -> SimResult<A::Prop> {
    Simulator::new(algo, graph, config).run()
}

/// Fallible [`run_on`]: builds and runs a simulator, returning every
/// failure as a [`SimError`].
///
/// # Errors
///
/// Returns [`SimError`] when the configuration is invalid or the run
/// cannot complete.
pub fn try_run_on<A: Algorithm, G: GraphRead>(
    algo: &A,
    graph: &G,
    config: ScalaGraphConfig,
) -> Result<SimResult<A::Prop>, SimError> {
    Simulator::try_new(algo, graph, config)?.try_run()
}

/// Per-cycle scratch buffers the engine reuses across cycles instead of
/// reallocating: dispatch lane ownership and source budgets, routing free
/// space and decided moves. Taken out of the engine with `mem::take` for
/// the duration of a step stage and put back after, so the buffers never
/// fight the borrow checker and never hit the allocator in steady state.
#[derive(Default)]
struct Scratch {
    /// Which segment owns each PE lane this dispatch cycle.
    lane_owner: Vec<u16>,
    /// Distinct source vertices scheduled this dispatch cycle.
    srcs_used: Vec<VertexId>,
    /// Routing: free buffer slots per (node, direction).
    route_free: Vec<[usize; NUM_DIRS]>,
    /// Routing: decided (destination node, destination buffer) moves.
    route_moves: Vec<(usize, usize)>,
}

/// A dense activity bitmap over one unit class; a set bit means the unit
/// may hold work. The single invariant the event core rests on: every
/// push into a unit's queue sets that unit's bit, and a bit is only
/// cleared when a visit finds the unit's queues empty — so a clear bit
/// *proves* the unit has nothing to do and stepping it would be a no-op.
#[derive(Default)]
struct UnitMask {
    bits: Vec<u64>,
}

impl UnitMask {
    fn sized(units: usize) -> Self {
        UnitMask {
            bits: vec![0; units.div_ceil(64)],
        }
    }

    fn set(&mut self, unit: usize) {
        self.bits[unit >> 6] |= 1 << (unit & 63);
    }

    fn clear(&mut self, unit: usize) {
        self.bits[unit >> 6] &= !(1 << (unit & 63));
    }

    fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Visits every set bit in ascending order — the same order the
    /// stepped loops walk units, so side effects land identically —
    /// clearing the bits for which `keep` returns `false`. Returns the
    /// number of bits visited. Bits set in *other* masks during the walk
    /// are untouched; callers never mutate the mask they are walking.
    fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) -> usize {
        let mut visited = 0;
        for (wi, word) in self.bits.iter_mut().enumerate() {
            let mut scan = *word;
            while scan != 0 {
                let bit = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                visited += 1;
                if !keep((wi << 6) | bit) {
                    *word &= !(1u64 << bit);
                }
            }
        }
        visited
    }

    /// Appends every set bit in ascending order.
    fn collect_into(&self, out: &mut Vec<usize>) {
        for (wi, &word) in self.bits.iter().enumerate() {
            let mut scan = word;
            while scan != 0 {
                let bit = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                out.push((wi << 6) | bit);
            }
        }
    }
}

/// State of the event-driven stepping core
/// ([`ScalaGraphConfig::event_driven`]): per-unit-class activity bitmaps
/// for the pipeline units, a [`Calendar`] posting wakeups for
/// fault-delayed flits, and the unit-visit counters behind the
/// events-dispatched / units-skipped diagnostics. Frontend timers (HBM
/// latency, fetch stalls, broadcast drains) keep their closed-form
/// whole-device skip: once every mask is empty the calendar's job
/// degenerates to exactly what [`Engine::try_fast_forward`] already does.
/// When `on` is false every field stays empty and stepped execution pays
/// one predictable branch per push site.
struct EventCore {
    on: bool,
    /// Dispatch rows plus four unit classes per PE — the denominator of
    /// the busy fraction.
    units_total: u64,
    /// Per-(tile × row) EDU dispatch activity.
    rows: UnitMask,
    /// Per-PE GU activity.
    gu: UnitMask,
    /// Per-PE router activity (any of the four mesh output buffers).
    route: UnitMask,
    /// Per-PE scratchpad activity (the eject buffer).
    spd: UnitMask,
    /// Per-PE apply-queue activity.
    apply: UnitMask,
    /// Release wakeups for flits parked between routers by delay or
    /// corruption faults.
    cal: Calendar<()>,
    /// Scratch for calendar pops.
    cal_out: Vec<()>,
    /// A released flit refused by a full downstream buffer accrues a NoC
    /// conflict every cycle, so it retries every cycle until accepted.
    delayed_retry: bool,
    /// Scratch: the routing pass's active-node snapshot.
    active_nodes: Vec<usize>,
    /// Scratch: sparse pre-mutation free-space fill for the routing pass,
    /// valid where `route_epoch` matches the current `epoch`.
    route_free: Vec<[usize; NUM_DIRS]>,
    route_epoch: Vec<u64>,
    epoch: u64,
    /// Cumulative unit visits performed on executed cycles.
    dispatched: u64,
    /// Cumulative unit visits avoided: masked-off units on executed
    /// cycles plus all units across whole-device skips.
    skipped: u64,
    /// Portion of the counters already reported to the collector.
    flushed_dispatched: u64,
    flushed_skipped: u64,
}

impl EventCore {
    fn new(cfg: &ScalaGraphConfig) -> Self {
        let p = cfg.placement;
        let (rows, pes) = if cfg.event_driven {
            (p.tiles * p.rows_per_tile, p.num_pes())
        } else {
            (0, 0)
        };
        EventCore {
            on: cfg.event_driven,
            units_total: (rows + 4 * pes) as u64,
            rows: UnitMask::sized(rows),
            gu: UnitMask::sized(pes),
            route: UnitMask::sized(pes),
            spd: UnitMask::sized(pes),
            apply: UnitMask::sized(pes),
            cal: Calendar::new(if cfg.event_driven { 64 } else { 1 }),
            cal_out: Vec::new(),
            delayed_retry: false,
            active_nodes: Vec::new(),
            route_free: vec![[0; NUM_DIRS]; pes],
            route_epoch: vec![0; pes],
            epoch: 0,
            dispatched: 0,
            skipped: 0,
            flushed_dispatched: 0,
            flushed_skipped: 0,
        }
    }

    /// With every pipeline mask empty, only timers can act: the
    /// whole-device skip-ahead applies.
    fn masks_empty(&self) -> bool {
        self.rows.is_empty()
            && self.gu.is_empty()
            && self.route.is_empty()
            && self.spd.is_empty()
            && self.apply.is_empty()
    }
}

/// A flit held between routers by an injected link-delay (or corruption)
/// fault: it left `node` via `dir` and re-enters the downstream buffer at
/// `release`.
struct DelayedFlit<P> {
    release: u64,
    node: usize,
    dir: usize,
    update: PendingUpdate<Flit<P>>,
}

/// Monotonic counters the watchdog samples: any change between cycles is
/// forward progress. Quiet-but-legitimate states (fetch stalls, broadcast
/// drain, delayed flits awaiting release) are covered separately by
/// [`Engine::waiting_on_timer`].
#[derive(Clone, Copy, PartialEq, Default)]
struct ProgressMark {
    traversed_edges: u64,
    updates_produced: u64,
    updates_delivered: u64,
    noc_hops: u64,
    activations: u64,
    applies: u64,
    vpref_lines: u64,
    epref_lines: u64,
    epref_piggybacks: u64,
    iterations: u64,
    flits_dropped: u64,
    flits_delayed: u64,
    hbm_reads: u64,
    hbm_writes: u64,
    slice: usize,
    scatter_iter: u64,
    in_apply: bool,
}

/// Previous cumulative counter values the telemetry sampler diffs against
/// at each window boundary, plus the engine-side span bookkeeping. Only
/// allocated when the attached collector is enabled.
struct TelScratch {
    /// Per-tile GU-busy cycles at the last window boundary.
    gu_busy: Vec<u64>,
    /// Per-tile aggregation merges at the last window boundary.
    merges: Vec<u64>,
    /// Per-tile dispatched edges at the last window boundary.
    dispatched: Vec<u64>,
    /// Per-(tile × channel) HBM bytes at the last window boundary.
    hbm_bytes: Vec<u64>,
    /// Per-(tile × channel) HBM stall cycles at the last window boundary.
    hbm_stalls: Vec<u64>,
    /// Open span on the iteration track.
    iter_open: Option<u64>,
    /// Open span on the scatter track: `(iteration, slice)`.
    scatter_open: Option<(u64, u64)>,
    /// Open span on the apply track.
    apply_open: Option<u64>,
}

impl TelScratch {
    fn new(tiles: usize, channels_per_tile: usize) -> Self {
        TelScratch {
            gu_busy: vec![0; tiles],
            merges: vec![0; tiles],
            dispatched: vec![0; tiles],
            hbm_bytes: vec![0; tiles * channels_per_tile],
            hbm_stalls: vec![0; tiles * channels_per_tile],
            iter_open: None,
            scatter_open: None,
            apply_open: None,
        }
    }
}

struct Engine<'a, A: Algorithm, G: GraphRead, C: Collector> {
    algo: &'a A,
    graph: &'a G,
    cfg: &'a ScalaGraphConfig,
    dev: &'a DeviceGraph,
    col: &'a mut C,
    /// Telemetry scratch; `Some` exactly when `C::ENABLED`.
    tel: Option<TelScratch>,

    props: Vec<A::Prop>,
    temp: Vec<A::Prop>,
    touched: Vec<bool>,
    touched_list: Vec<VertexId>,

    tiles: Vec<TileFrontend<A::Prop>>,
    nodes: Vec<Node<A::Prop>>,

    stats: SimStats,
    now: u64,

    phase: Phase,
    /// Iteration index of the scatter wave currently being fed/executed.
    scatter_iter: u64,
    /// Slice index of the current scatter wave.
    slice: usize,
    /// Whether the current scatter wave still accepts input (the apply
    /// pass feeding it has not finished).
    scatter_input_open: bool,
    /// Buffered activations for the next wave.
    next_active: Vec<ActiveVertex<A::Prop>>,
    /// Whether inter-phase pipelining is engaged for this run.
    pipelined: bool,
    /// Full active list of the current iteration (replayed per slice).
    iter_active: Vec<ActiveVertex<A::Prop>>,
    /// Pending DOM replica broadcasts (drained one per cycle).
    broadcast_backlog: u64,
    /// Iteration limit.
    limit: u64,

    frontier_sizes: Vec<usize>,
    apply_inflight: usize,
    /// Cycles the frontends must wait before fetching the next wave's
    /// actives: the active-list write-back/read-back round trip that
    /// inter-phase pipelining exists to hide (Figure 13).
    fetch_stall: u64,
    /// Staging area for updates crossing a link this cycle (reused
    /// allocation).
    staged: Vec<PendingUpdate<Flit<A::Prop>>>,
    /// Reused per-cycle scratch buffers for dispatch and routing, so the
    /// steady-state hot loop allocates nothing.
    scratch: Scratch,
    /// Per-node GU busy counters (trace only).
    gu_busy_per_node: Vec<u64>,
    /// Per-(tile,row) dispatched-edge counters (trace only).
    dispatched_per_row: Vec<u64>,
    /// Fault injector built from the configuration's plan; `None` leaves
    /// every fault hook cold.
    injector: Option<FaultInjector>,
    /// Flits parked between routers by delay/corruption faults.
    delayed: Vec<DelayedFlit<A::Prop>>,
    /// Event-driven stepping core; inert unless
    /// [`ScalaGraphConfig::event_driven`] is set.
    ev: EventCore,
    /// Cooperative cancellation flag, polled once per stepped cycle.
    /// `None` (the plain `try_run` paths) costs one branch per cycle.
    ctl: Option<&'a CancelToken>,
}

impl<'a, A: Algorithm, G: GraphRead, C: Collector> Engine<'a, A, G, C> {
    fn new(
        algo: &'a A,
        graph: &'a G,
        cfg: &'a ScalaGraphConfig,
        dev: &'a DeviceGraph,
        col: &'a mut C,
        ctl: Option<&'a CancelToken>,
    ) -> Self {
        let n = graph.num_vertices();
        let placement = cfg.placement;
        let nodes = (0..placement.num_pes())
            .map(|_| Node {
                gu_queue: VecDeque::new(),
                out: (0..NUM_DIRS)
                    .map(|_| AggregationBuffer::new(cfg.aggregation_registers))
                    .collect(),
                apply_queue: VecDeque::new(),
            })
            .collect();
        let tiles = (0..placement.tiles)
            .map(|_| TileFrontend::new(Hbm::new(cfg.tile_memory()), placement.rows_per_tile))
            .collect();

        let pipelined = cfg.inter_phase_pipelining && algo.is_monotonic() && dev.num_slices() == 1;
        let limit = algo.max_iterations().map_or(u64::MAX, |m| m as u64);

        Engine {
            algo,
            graph,
            cfg,
            dev,
            col,
            tel: C::ENABLED.then(|| TelScratch::new(placement.tiles, cfg.tile_memory().channels)),
            props: (0..n as u32).map(|v| algo.init(v, graph)).collect(),
            temp: vec![algo.reduce_identity(); n],
            touched: vec![false; n],
            touched_list: Vec::new(),
            tiles,
            nodes,
            stats: SimStats {
                slices: dev.num_slices() as u64,
                inter_phase_used: pipelined,
                ..SimStats::default()
            },
            now: 0,
            phase: Phase::Scatter,
            scatter_iter: 0,
            slice: 0,
            scatter_input_open: false,
            next_active: Vec::new(),
            pipelined,
            iter_active: Vec::new(),
            broadcast_backlog: 0,
            limit,
            frontier_sizes: Vec::new(),
            apply_inflight: 0,
            fetch_stall: 0,
            staged: Vec::new(),
            scratch: Scratch::default(),
            gu_busy_per_node: vec![0; placement.num_pes()],
            dispatched_per_row: vec![0; placement.tiles * placement.rows_per_tile],
            injector: cfg.fault_plan.clone().and_then(FaultInjector::new),
            delayed: Vec::new(),
            ev: EventCore::new(cfg),
            ctl,
        }
    }

    fn try_run(mut self) -> Result<SimResult<A::Prop>, SimError> {
        if C::ENABLED {
            let p = self.cfg.placement;
            self.col.on_run_start(Topology {
                tiles: p.tiles,
                rows_per_tile: p.rows_per_tile,
                cols: p.cols,
                channels_per_tile: self.cfg.tile_memory().channels,
                clock_mhz: self.cfg.effective_clock_mhz(),
            });
        }
        let mut initial: Vec<VertexId> = self.algo.initial_frontier(self.graph);
        scalagraph_algo::reference::dedup_frontier(&mut initial, self.graph.num_vertices());
        self.iter_active = initial
            .into_iter()
            .map(|v| ActiveVertex {
                v,
                prop: self.props[v as usize],
            })
            .collect();

        if self.iter_active.is_empty() || self.limit == 0 {
            return Ok(self.finish());
        }
        self.frontier_sizes.push(self.iter_active.len());
        self.feed_scatter_inputs();

        let mut last_mark = self.progress_mark();
        let mut stalled_for: u64 = 0;
        let event_mode = self.cfg.event_driven;
        // Fast-forward gate: attempting a jump costs a full quiescence scan,
        // which would be pure overhead on the ~always-busy cycles of dense
        // workloads. Only attempt one after a cycle whose cheap activity
        // signature did not move — an idle window always starts with one.
        // (The event core needs no such heuristic: empty masks *are* the
        // quiescence signal, checked in O(units / 64).)
        let mut quiet_hint = true;
        let mut last_activity = self.activity_signature();
        loop {
            if self.advance_phases() {
                break;
            }
            if event_mode {
                // Whole-device skip is the calendar's degenerate case:
                // with every pipeline mask empty only timers can act,
                // which is exactly the window try_fast_forward jumps.
                if self.ev.masks_empty() {
                    let before = self.now;
                    if self.try_fast_forward(&mut stalled_for) {
                        self.ev.skipped += (self.now - before) * self.ev.units_total;
                        if C::ENABLED {
                            self.tel_spans_at(before + 1);
                        }
                        continue;
                    }
                }
                if let Err(e) = self.step_event() {
                    self.tel_finish();
                    return Err(e);
                }
            } else {
                if self.cfg.fast_forward && quiet_hint {
                    let before = self.now;
                    if self.try_fast_forward(&mut stalled_for) {
                        if C::ENABLED {
                            self.tel_spans_at(before + 1);
                        }
                        continue;
                    }
                }
                if let Err(e) = self.step() {
                    self.tel_finish();
                    return Err(e);
                }
                if self.cfg.fast_forward {
                    let activity = self.activity_signature();
                    quiet_hint = activity == last_activity;
                    last_activity = activity;
                }
            }
            if C::ENABLED {
                self.tel_cycle();
            }
            // Deterministic cycle budget: observed on exactly `limit`, with
            // identical counters and telemetry, in stepped and fast-forward
            // execution alike (`try_fast_forward` never jumps past it).
            if let Some(limit) = self.cfg.cycle_limit {
                if self.now >= limit {
                    let err = SimError::DeadlineExceeded {
                        cycle: self.now,
                        partial: Box::new(self.partial_stats()),
                    };
                    self.tel_finish();
                    return Err(err);
                }
            }
            // Cooperative cancellation: one relaxed load per stepped cycle.
            // Wall-clock signals are asynchronous by nature, so *which*
            // cycle observes one depends on host timing — but the unwind
            // itself is clean (cycle boundary, flushed telemetry, partial
            // counters attached).
            if let Some(ctl) = self.ctl {
                if let Some(signal) = ctl.signal() {
                    let cycle = self.now;
                    let partial = Box::new(self.partial_stats());
                    let err = match signal {
                        CancelSignal::Cancelled => SimError::Cancelled { cycle, partial },
                        CancelSignal::DeadlineExpired => {
                            SimError::DeadlineExceeded { cycle, partial }
                        }
                    };
                    self.tel_finish();
                    return Err(err);
                }
            }
            if self.now >= CYCLE_SAFETY_CAP {
                let snapshot = Box::new(self.snapshot(stalled_for));
                self.tel_finish();
                return Err(SimError::CycleCapExceeded { snapshot });
            }
            if self.cfg.watchdog_stall_cycles == 0 {
                continue;
            }
            let mark = self.progress_mark();
            if mark != last_mark || self.waiting_on_timer() {
                last_mark = mark;
                stalled_for = 0;
            } else {
                stalled_for += 1;
                if stalled_for >= self.cfg.watchdog_stall_cycles {
                    if C::ENABLED {
                        self.col
                            .instant(self.now, InstantKind::WatchdogStall { stalled_for });
                    }
                    let err = self.stall_error(stalled_for);
                    self.tel_finish();
                    return Err(err);
                }
            }
        }
        Ok(self.finish())
    }

    // ----- telemetry -----------------------------------------------------

    /// Per-cycle telemetry: span transitions, then window rollover. Only
    /// called when `C::ENABLED`.
    fn tel_cycle(&mut self) {
        self.tel_spans_at(self.now);
        if self.col.window_due(self.now) {
            self.tel_sample_window();
            self.tel_flush_event_sample();
            self.col.roll_window(self.now);
        }
    }

    /// Reports the event core's unit-visit counters for the window about
    /// to roll. A no-op outside event-driven mode, so window summaries
    /// stay mode-invariant by construction — the rows land *beside* the
    /// compared state as diagnostics, never inside it.
    fn tel_flush_event_sample(&mut self) {
        if !self.ev.on {
            return;
        }
        let dispatched = self.ev.dispatched - self.ev.flushed_dispatched;
        let skipped = self.ev.skipped - self.ev.flushed_skipped;
        self.ev.flushed_dispatched = self.ev.dispatched;
        self.ev.flushed_skipped = self.ev.skipped;
        self.col.event_core_sample(dispatched, skipped);
    }

    /// Emits span begin/end events by diffing the phase machine's state
    /// against the spans currently open. Transition detection keeps the
    /// emission in one place instead of scattering it through the phase
    /// control flow, and guarantees begin/end events pair up even under
    /// inter-phase pipelining (overlapping Scatter and Apply spans live on
    /// separate tracks).
    ///
    /// Called with `self.now` after every executed cycle, and with the
    /// first cycle of a fast-forward jump after a skip: quiescence freezes
    /// the phase machine for the whole skipped window, so one diff stamped
    /// at the window's first cycle reproduces exactly what a stepped run's
    /// per-cycle diffing records.
    fn tel_spans_at(&mut self, now: u64) {
        // Computed before borrowing the scratch: these walk &self.
        let scatter_active = self.scatter_input_open || !self.scatter_machine_empty();
        let scatter_key = (self.scatter_iter, self.slice as u64);
        let apply_active = self.phase == Phase::Apply;
        let iter = self.stats.iterations;
        let apply_key = iter;
        let Some(tel) = self.tel.as_mut() else {
            return;
        };
        if tel.iter_open != Some(iter) {
            if let Some(prev) = tel.iter_open {
                self.col.span_end(now, SpanName::Iteration(prev));
            }
            self.col.span_begin(now, SpanName::Iteration(iter));
            tel.iter_open = Some(iter);
        }
        let scatter_want = scatter_active.then_some(scatter_key);
        if tel.scatter_open != scatter_want {
            if let Some((iter, slice)) = tel.scatter_open {
                self.col.span_end(now, SpanName::Scatter { iter, slice });
            }
            if let Some((iter, slice)) = scatter_want {
                self.col.span_begin(now, SpanName::Scatter { iter, slice });
            }
            tel.scatter_open = scatter_want;
        }
        let apply_want = apply_active.then_some(apply_key);
        if tel.apply_open != apply_want {
            if let Some(prev) = tel.apply_open {
                self.col.span_end(now, SpanName::Apply(prev));
            }
            if let Some(k) = apply_want {
                self.col.span_begin(now, SpanName::Apply(k));
            }
            tel.apply_open = apply_want;
        }
    }

    /// Samples every tile and HBM pseudo-channel for the window ending
    /// now: deltas of the cumulative counters since the previous boundary,
    /// plus point samples of queue occupancy.
    fn tel_sample_window(&mut self) {
        let p = self.cfg.placement;
        let ppt = p.pes_per_tile();
        let channels = self.cfg.tile_memory().channels;
        for t in 0..p.tiles {
            let mut gu = 0u64;
            let mut merges = 0u64;
            let mut depth = 0u64;
            for node in t * ppt..(t + 1) * ppt {
                gu += self.gu_busy_per_node[node];
                let n = &self.nodes[node];
                depth += n.gu_queue.len() as u64;
                for buf in &n.out {
                    depth += buf.len() as u64;
                    merges += buf.merges();
                }
            }
            let dispatched: u64 = (t * p.rows_per_tile..(t + 1) * p.rows_per_tile)
                .map(|r| self.dispatched_per_row[r])
                .sum();
            let Some(tel) = self.tel.as_mut() else {
                return;
            };
            let sample = TileSample {
                gu_busy: gu - tel.gu_busy[t],
                queue_depth: depth,
                agg_merges: merges - tel.merges[t],
                dispatched_edges: dispatched - tel.dispatched[t],
            };
            tel.gu_busy[t] = gu;
            tel.merges[t] = merges;
            tel.dispatched[t] = dispatched;
            self.col.tile_sample(t, sample);
            for ch in 0..self.tiles[t].hbm.num_channels() {
                let ct = self.tiles[t].hbm.channel_telemetry(ch);
                let outstanding = self.tiles[t].hbm.outstanding(ch) as u64;
                let idx = t * channels + ch;
                let Some(tel) = self.tel.as_mut() else {
                    return;
                };
                let sample = HbmChannelSample {
                    bytes: ct.bytes - tel.hbm_bytes[idx],
                    stall_cycles: ct.stall_cycles - tel.hbm_stalls[idx],
                    outstanding,
                };
                tel.hbm_bytes[idx] = ct.bytes;
                tel.hbm_stalls[idx] = ct.stall_cycles;
                self.col.hbm_sample(t, ch, sample);
            }
        }
    }

    /// Final telemetry flush: close the last partial window and let the
    /// collector close its open spans. Runs on every exit path, success or
    /// error, so traces of failed runs still balance.
    fn tel_finish(&mut self) {
        if !C::ENABLED {
            return;
        }
        self.tel_sample_window();
        self.tel_flush_event_sample();
        self.col.roll_window(self.now);
        self.col.on_run_end(self.now);
    }

    /// Counters whose movement constitutes forward progress.
    fn progress_mark(&self) -> ProgressMark {
        let s = &self.stats;
        let mut hbm_reads = 0;
        let mut hbm_writes = 0;
        for t in &self.tiles {
            let m = t.hbm.stats();
            hbm_reads += m.reads;
            hbm_writes += m.writes;
        }
        ProgressMark {
            traversed_edges: s.traversed_edges,
            updates_produced: s.updates_produced,
            updates_delivered: s.updates_delivered,
            noc_hops: s.noc_hops,
            activations: s.activations,
            applies: s.applies,
            vpref_lines: s.vpref_lines,
            epref_lines: s.epref_lines,
            epref_piggybacks: s.epref_piggybacks,
            iterations: s.iterations,
            flits_dropped: s.flits_dropped,
            flits_delayed: s.flits_delayed,
            hbm_reads,
            hbm_writes,
            slice: self.slice,
            scatter_iter: self.scatter_iter,
            in_apply: self.phase == Phase::Apply,
        }
    }

    /// Quiet states that are legitimate bounded waits, not stalls: every
    /// one of these counts down (or releases) by itself. A permanently
    /// pinned HBM channel deliberately does *not* qualify — its requests
    /// stay in flight without any timer running.
    fn waiting_on_timer(&self) -> bool {
        self.fetch_stall > 0
            || self.broadcast_backlog > 0
            || self.delayed.iter().any(|d| d.release > self.now)
    }

    /// Cheap per-cycle activity fingerprint for the fast-forward gate: a
    /// sum of every counter that moves when a unit does real work, and of
    /// none that tick during an idle wait (`scatter_cycles`,
    /// `dispatch_starved_row_cycles`, ... are deliberately excluded). The
    /// gate is a heuristic only — [`try_fast_forward`](Self::try_fast_forward)
    /// re-checks full quiescence before any jump.
    fn activity_signature(&self) -> u64 {
        let s = &self.stats;
        s.traversed_edges
            .wrapping_add(s.updates_produced)
            .wrapping_add(s.updates_delivered)
            .wrapping_add(s.noc_hops)
            .wrapping_add(s.noc_conflicts)
            .wrapping_add(s.applies)
            .wrapping_add(s.activations)
            .wrapping_add(s.vpref_lines)
            .wrapping_add(s.epref_lines)
            .wrapping_add(s.epref_piggybacks)
            .wrapping_add(s.flits_dropped)
            .wrapping_add(s.flits_delayed)
            .wrapping_add(s.updates_corrupted)
            .wrapping_add(s.hbm_stalls_injected)
    }

    /// Idle-cycle fast-forward: when every unit is quiescent and the
    /// machine is only counting down timers (fetch stalls, broadcast
    /// drain, HBM latency, delayed flits), jump `now` to just before the
    /// earliest cycle on which anything can act and replay the skipped
    /// cycles' bookkeeping in closed form. Returns `true` if any cycles
    /// were skipped; the caller then re-enters the loop so the event
    /// cycle itself executes through the normal [`step`](Self::step).
    ///
    /// **Invariant: bit-identical results.** A skip is only taken when a
    /// cycle-by-cycle replay would provably touch nothing but the counters
    /// reproduced here; stats, properties, telemetry windows, injected
    /// faults, and watchdog/cycle-cap errors all land on the same cycle
    /// with the same values as a non-fast-forwarded run.
    fn try_fast_forward(&mut self, stalled_for: &mut u64) -> bool {
        // --- Quiescence: nothing but timers may act on the next cycle.
        if self.apply_inflight != 0 {
            return false;
        }
        // A parked flit with a due (or overdue) release retries next cycle.
        if self.delayed.iter().any(|d| d.release <= self.now + 1) {
            return false;
        }
        if self
            .nodes
            .iter()
            .any(|n| !n.gu_queue.is_empty() || !n.out.iter().all(AggregationBuffer::is_empty))
        {
            return false;
        }
        for t in &self.tiles {
            if !t.row_queues.iter().all(VecDeque::is_empty) {
                return false;
            }
            // With the fetch stall down, the prefetchers would act on (or
            // at least rotate state over) any pending frontend work.
            if self.fetch_stall == 0
                && (!t.vpref_pending.is_empty()
                    || !t.records_ready.is_empty()
                    || t.write_backlog >= 8)
            {
                return false;
            }
        }

        // --- Earliest cycle that must execute normally.
        let mut event = CYCLE_SAFETY_CAP;
        if let Some(limit) = self.cfg.cycle_limit {
            // The limit cycle itself must be stepped so DeadlineExceeded
            // fires on exactly that cycle with the same partial counters
            // and telemetry as a stepped run.
            event = event.min(limit);
        }
        if self.fetch_stall > 0 {
            // First cycle on which step_prefetch runs again.
            event = event.min(self.now + self.fetch_stall + 1);
        }
        if self.broadcast_backlog > 0 {
            // First cycle after the backlog fully drains, where
            // advance_phases may close the apply pass.
            event = event.min(self.now + self.broadcast_backlog + 1);
        }
        for d in &self.delayed {
            event = event.min(d.release);
        }
        for t in &self.tiles {
            if let Some(c) = t.hbm.next_event_cycle() {
                event = event.min(c);
            }
        }
        if let Some(inj) = &self.injector {
            if let Some(c) = inj.next_hbm_stall_cycle(self.now) {
                event = event.min(c);
            }
        }
        if C::ENABLED {
            // Window sampling must happen on the exact boundary cycle. A
            // collector that cannot name its deadline suppresses skipping.
            match self.col.window_deadline() {
                Some(c) => event = event.min(c),
                None => return false,
            }
        }
        // Watchdog emulation: the cycle on which it would fire must be
        // stepped normally so the error snapshot is identical. `wait` is
        // the number of upcoming cycles still covered by a timer.
        let threshold = self.cfg.watchdog_stall_cycles;
        let mut wait = self.fetch_stall.max(self.broadcast_backlog);
        for d in &self.delayed {
            wait = wait.max(d.release - self.now);
        }
        if threshold > 0 {
            let fire = if wait > 0 {
                // stalled_for is necessarily 0 here (the previous stepped
                // cycle saw waiting_on_timer); counting restarts once the
                // last timer expires.
                self.now + wait + (threshold - 1)
            } else {
                self.now + threshold.saturating_sub(*stalled_for)
            };
            event = event.min(fire);
        }

        let k = event.saturating_sub(self.now + 1);
        if k == 0 {
            return false;
        }

        // --- Replay k no-op cycles in closed form.
        if self.scatter_input_open || !self.scatter_machine_empty() {
            self.stats.scatter_cycles += k;
        }
        if self.phase == Phase::Apply {
            self.stats.apply_cycles += k;
        }
        let p = self.cfg.placement;
        self.stats.dispatch_starved_row_cycles += k * (p.tiles * p.rows_per_tile) as u64;
        self.now += k;
        self.fetch_stall -= self.fetch_stall.min(k);
        self.broadcast_backlog -= self.broadcast_backlog.min(k);
        for t in &mut self.tiles {
            t.hbm.advance(k);
        }
        if threshold > 0 {
            // Skipped cycle i (1-based) observed waiting_on_timer iff
            // i < wait, resetting the stall counter; afterwards it counts
            // back up one per cycle.
            if wait <= 1 {
                *stalled_for += k;
            } else if k < wait {
                *stalled_for = 0;
            } else {
                *stalled_for = k - wait + 1;
            }
        }
        true
    }

    /// Captures the machine state for a watchdog/deadlock/cap error.
    fn snapshot(&self, stalled_for: u64) -> StallSnapshot {
        let mut tiles = Vec::new();
        for (i, t) in self.tiles.iter().enumerate() {
            let hbm_channels: Vec<HbmChannelSnapshot> = (0..t.hbm.num_channels())
                .map(|ch| HbmChannelSnapshot {
                    channel: ch,
                    outstanding: t.hbm.outstanding(ch),
                    stalled: t.hbm.is_stalled(ch),
                })
                .collect();
            let snap = TileSnapshot {
                tile: i,
                vpref_pending: t.vpref_pending.len(),
                vpref_inflight: t.vpref_inflight.occupied(),
                records_ready: t.records_ready.len(),
                line_inflight: t.line_inflight.occupied(),
                write_backlog: t.write_backlog,
                row_queue_depths: t.row_queues.iter().map(VecDeque::len).collect(),
                hbm_channels,
                outstanding_tags: t.hbm.outstanding_tags(8),
            };
            if snap.has_work() || snap.hbm_channels.iter().any(|c| c.stalled) {
                tiles.push(snap);
            }
        }
        let mut busy_nodes = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let mut out_depths = [0usize; NUM_DIRS];
            for (d, buf) in n.out.iter().enumerate() {
                out_depths[d] = buf.len();
            }
            if !n.gu_queue.is_empty()
                || !n.apply_queue.is_empty()
                || out_depths.iter().any(|&d| d > 0)
            {
                busy_nodes.push(NodeSnapshot {
                    node: i,
                    gu_queue: n.gu_queue.len(),
                    out_depths,
                    apply_queue: n.apply_queue.len(),
                });
            }
        }
        let suspect = self.suspect(&tiles, &busy_nodes);
        StallSnapshot {
            cycle: self.now,
            stalled_for,
            phase: match self.phase {
                Phase::Scatter => "Scatter",
                Phase::Apply => "Apply",
            },
            suspect,
            tiles,
            busy_nodes,
            apply_inflight: self.apply_inflight,
            broadcast_backlog: self.broadcast_backlog,
            fetch_stall: self.fetch_stall,
            delayed_flits: self.delayed.len(),
        }
    }

    /// Blames the unit nearest the head of the stuck dependency chain:
    /// pinned memory first (everything downstream starves off it), then
    /// in-flight fetches, then the deepest backed-up router port, then the
    /// compute/dispatch/apply queues.
    fn suspect(&self, tiles: &[TileSnapshot], nodes: &[NodeSnapshot]) -> StalledUnit {
        for t in tiles {
            for ch in &t.hbm_channels {
                if ch.stalled && ch.outstanding > 0 {
                    return StalledUnit::HbmChannel {
                        tile: t.tile,
                        channel: ch.channel,
                    };
                }
            }
        }
        for t in tiles {
            if t.vpref_inflight > 0 || t.line_inflight > 0 {
                if let Some(ch) = t
                    .hbm_channels
                    .iter()
                    .filter(|c| c.outstanding > 0)
                    .max_by_key(|c| c.outstanding)
                {
                    return StalledUnit::HbmChannel {
                        tile: t.tile,
                        channel: ch.channel,
                    };
                }
                return StalledUnit::Prefetcher { tile: t.tile };
            }
        }
        let mut worst: Option<(usize, usize, usize)> = None; // (depth, node, dir)
        for n in nodes {
            for dir in [NORTH, SOUTH, WEST, EAST] {
                let depth = n.out_depths[dir];
                if depth > 0 && worst.is_none_or(|(d, _, _)| depth > d) {
                    worst = Some((depth, n.node, dir));
                }
            }
        }
        if let Some((_, node, dir)) = worst {
            return StalledUnit::RouterPort { node, dir };
        }
        if let Some(n) = nodes
            .iter()
            .filter(|n| n.gu_queue > 0)
            .max_by_key(|n| n.gu_queue)
        {
            return StalledUnit::GraphUnit { node: n.node };
        }
        for t in tiles {
            if let Some((row, _)) = t
                .row_queue_depths
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d > 0)
                .max_by_key(|&(_, &d)| d)
            {
                return StalledUnit::Dispatcher { tile: t.tile, row };
            }
        }
        for t in tiles {
            if t.vpref_pending > 0 || t.records_ready > 0 {
                return StalledUnit::Prefetcher { tile: t.tile };
            }
        }
        if let Some(n) = nodes
            .iter()
            .find(|n| n.apply_queue > 0 || n.out_depths[EJECT] > 0)
        {
            return StalledUnit::Scratchpad { node: n.node };
        }
        StalledUnit::Unknown
    }

    /// The error for an expired watchdog: a deadlock when work is stuck in
    /// the machine, a sequencer wedge otherwise.
    fn stall_error(&self, stalled_for: u64) -> SimError {
        let snapshot = Box::new(self.snapshot(stalled_for));
        if !self.scatter_machine_empty() || self.apply_inflight > 0 {
            SimError::DeadlockDetected { snapshot }
        } else {
            SimError::WatchdogStall { snapshot }
        }
    }

    /// The counters as they stand mid-run: the same aggregation
    /// [`finish`](Self::finish) performs, without consuming the engine.
    /// Attached to [`SimError::Cancelled`]/[`SimError::DeadlineExceeded`]
    /// so an interrupted job still leaves an accountable record.
    fn partial_stats(&self) -> SimStats {
        let mut stats = self.stats;
        for t in &self.tiles {
            let m = t.hbm.stats();
            stats.offchip_bytes_read += m.bytes_read;
            stats.offchip_bytes_written += m.bytes_written;
            stats.offchip_reads += m.reads;
        }
        for node in &self.nodes {
            for buf in &node.out {
                stats.agg_merges += buf.merges();
            }
        }
        stats.cycles = self.now;
        stats.pe_cycle_budget = self.now * self.cfg.placement.num_pes() as u64;
        stats
    }

    fn finish(mut self) -> SimResult<A::Prop> {
        self.tel_finish();
        if std::env::var_os("SCALAGRAPH_TRACE").is_some() {
            let mut busy: Vec<(u64, usize)> = self
                .gu_busy_per_node
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, i))
                .collect();
            busy.sort_unstable();
            busy.reverse();
            eprintln!(
                "[trace] top GU busy: {:?} | median {} | rows min/max {:?}/{:?}",
                &busy[..8.min(busy.len())],
                busy[busy.len() / 2].0,
                self.dispatched_per_row.iter().min(),
                self.dispatched_per_row.iter().max(),
            );
        }
        let stats = self.partial_stats();
        SimResult {
            properties: self.props,
            stats,
            frontier_sizes: self.frontier_sizes,
        }
    }

    /// Loads the current iteration's active list into the tile frontends
    /// for the current slice. Vertices with no edges in a tile's partition
    /// are skipped there.
    fn feed_scatter_inputs(&mut self) {
        for idx in 0..self.iter_active.len() {
            let av = self.iter_active[idx];
            for t in 0..self.cfg.placement.tiles {
                if self.dev.degree_in(self.slice, t, av.v) > 0 {
                    self.tiles[t].vpref_pending.push_back(av);
                }
            }
        }
    }

    /// Feeds one freshly applied active vertex into the pipelined next
    /// scatter wave.
    fn feed_pipelined_activation(&mut self, av: ActiveVertex<A::Prop>) {
        for t in 0..self.cfg.placement.tiles {
            if self.dev.degree_in(0, t, av.v) > 0 {
                self.tiles[t].vpref_pending.push_back(av);
            }
        }
    }

    /// Advances the clock and runs the work every executed cycle shares
    /// between stepped and event-driven execution: phase-cycle
    /// accounting, tracing, scheduled fault stalls, the HBM pump and the
    /// (fetch-stall gated) prefetchers. The frontends step in full every
    /// executed cycle in both modes — the HBM model draws its latency
    /// jitter once per unstalled channel per cycle, and preserving that
    /// draw count is part of the bit-identity contract.
    fn step_front_half(&mut self) -> Result<(), SimError> {
        self.now += 1;
        if !self.scatter_machine_empty() || self.scatter_input_open {
            self.stats.scatter_cycles += 1;
        }
        if self.phase == Phase::Apply {
            self.stats.apply_cycles += 1;
        }

        if self.now.is_multiple_of(8192) && std::env::var_os("SCALAGRAPH_TRACE").is_some() {
            for (i, tile) in self.tiles.iter().enumerate() {
                eprintln!(
                    "[trace] cyc {} tile {i}: vpend={} vinfl={} rec={} linfl={} rows={} gu={} idle_hbm={}",
                    self.now,
                    tile.vpref_pending.len(),
                    tile.vpref_inflight.occupied(),
                    tile.records_ready.len(),
                    tile.line_inflight.occupied(),
                    tile.row_queues.iter().map(|q| q.len()).sum::<usize>(),
                    self.nodes.iter().map(|n| n.gu_queue.len()).sum::<usize>(),
                    tile.hbm.is_idle(),
                );
            }
        }
        if self.injector.is_some() {
            self.apply_scheduled_hbm_stalls();
        }
        self.step_memory();
        if self.fetch_stall > 0 {
            self.fetch_stall -= 1;
        } else {
            self.step_prefetch()?;
        }
        Ok(())
    }

    /// One clock cycle for every hardware unit.
    fn step(&mut self) -> Result<(), SimError> {
        self.step_front_half()?;
        self.step_dispatch();
        if !self.delayed.is_empty() {
            self.step_delayed();
        }
        self.step_routing()?;
        self.step_gu();
        self.step_spd()?;
        if self.phase == Phase::Apply {
            self.step_apply();
        }
        if self.broadcast_backlog > 0 {
            self.broadcast_backlog -= 1;
        }
        Ok(())
    }

    /// One clock cycle visiting only the units whose activity bit is set.
    /// Stage order, per-unit work, and every counter match
    /// [`step`](Self::step) exactly: the masks merely skip units whose
    /// queues the bit invariant proves empty, for which the stepped loops
    /// would scan-and-continue.
    fn step_event(&mut self) -> Result<(), SimError> {
        self.step_front_half()?;
        let mut visited = self.step_dispatch_event();
        if self.delayed.is_empty() {
            debug_assert!(self.ev.cal.is_empty(), "wakeup without a parked flit");
            self.ev.delayed_retry = false;
        } else {
            // Parked flits wake through the calendar; a released flit
            // that a full buffer refused retries every cycle (it accrues
            // a NoC conflict each time, like any back-pressured unit).
            let due = {
                let ev = &mut self.ev;
                ev.cal_out.clear();
                ev.cal.pop_due(self.now, &mut ev.cal_out);
                !ev.cal_out.is_empty()
            };
            if due || self.ev.delayed_retry {
                self.step_delayed();
                self.ev.delayed_retry = self.delayed.iter().any(|d| d.release <= self.now);
            }
        }
        visited += self.step_routing_event()?;
        visited += self.step_gu_event();
        visited += self.step_spd_event()?;
        if self.phase == Phase::Apply {
            visited += self.step_apply_event();
        }
        if self.broadcast_backlog > 0 {
            self.broadcast_backlog -= 1;
        }
        self.ev.dispatched += visited as u64;
        self.ev.skipped += self.ev.units_total - visited as u64;
        Ok(())
    }

    /// Applies HBM pseudo-channel stalls whose schedule window has opened.
    fn apply_scheduled_hbm_stalls(&mut self) {
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        for (tile, ch, cycles) in inj.hbm_stalls_at(self.now) {
            if tile < self.tiles.len() && ch < self.tiles[tile].hbm.num_channels() {
                self.tiles[tile].hbm.stall_channel(ch, cycles);
                self.stats.hbm_stalls_injected += 1;
                if C::ENABLED {
                    self.col.instant(
                        self.now,
                        InstantKind::HbmStallInjected {
                            tile,
                            channel: ch,
                            cycles,
                        },
                    );
                }
            }
        }
    }

    // ----- memory + prefetch -------------------------------------------

    fn step_memory(&mut self) {
        let dev = self.dev;
        let placement = self.cfg.placement;
        let slice = self.slice;
        let ev_on = self.ev.on;
        let mut rows = std::mem::take(&mut self.ev.rows);
        for t in 0..self.tiles.len() {
            let tile = &mut self.tiles[t];
            tile.hbm.step();
            for ch in 0..tile.hbm.num_channels() {
                while let Some(resp) = tile.hbm.pop_ready(ch) {
                    // Only reads pop from the ready queue, and bit 0 of the
                    // tag names the issuing slab; the slot id is the rest.
                    let slot = tag_slot(resp.tag);
                    if resp.tag & TAG_KIND_LINE == 0 {
                        let Some(batch) = tile.vpref_inflight.release(slot) else {
                            continue;
                        };
                        let csr = dev.tile_csr(slice, t);
                        for av in batch {
                            let range = csr.edge_range(av.v);
                            // The vertex record carries the *global*
                            // out-degree (PageRank normalizes by it), not
                            // this tile partition's share. Read it from
                            // the device table: on a packed backing the
                            // graph's own `out_degree` is a block decode,
                            // and prefetch batches return in an order that
                            // thrashes the one-block scratch.
                            let degree = dev.out_degree(av.v) as u32;
                            tile.records_ready.push_back(EdgeCursor {
                                av,
                                cursor: range.start,
                                end: range.end,
                                degree,
                            });
                        }
                    } else {
                        let Some(segs) = tile.line_inflight.release(slot) else {
                            continue;
                        };
                        if tile.last_line.is_some_and(|(_, tag)| tag == resp.tag) {
                            tile.last_line = None;
                        }
                        for seg in segs {
                            let row = placement.row_of(seg.src);
                            tile.row_queues[row].push_back(seg);
                            if ev_on {
                                rows.set(t * placement.rows_per_tile + row);
                            }
                        }
                    }
                }
            }
        }
        self.ev.rows = rows;
    }

    fn step_prefetch(&mut self) -> Result<(), SimError> {
        let now = self.now;
        for t in 0..self.tiles.len() {
            let tile = &mut self.tiles[t];
            // Flush pending active-list write-backs: one 64-byte line per
            // eight activations.
            while tile.write_backlog >= 8 {
                let ch = tile.channel_rr;
                if !tile.hbm.can_accept(ch) {
                    break;
                }
                let tag = tile.fresh_write_tag();
                tile.hbm
                    .try_request(ch, MemRequest::write(tag, LINE_BYTES as u32));
                tile.write_backlog -= 8;
                tile.channel_rr = (ch + 1) % tile.hbm.num_channels();
            }

            // VPref: each prefetcher (one per pseudo-channel) can fetch a
            // record line of eight actives per cycle. The batch drains
            // straight into a recycled slab slot — no per-request Vec.
            for _ in 0..tile.hbm.num_channels() {
                if tile.vpref_pending.is_empty() {
                    break;
                }
                let ch = tile.channel_rr;
                if !tile.hbm.can_accept(ch) {
                    // This pseudo-channel is saturated; try the next one.
                    tile.channel_rr = (ch + 1) % tile.hbm.num_channels();
                    continue;
                }
                let take = tile.vpref_pending.len().min(8);
                let (slot, batch) = tile.vpref_inflight.acquire();
                batch.extend(tile.vpref_pending.drain(..take));
                tile.hbm
                    .try_request(ch, MemRequest::read(vpref_tag(slot), LINE_BYTES as u32));
                self.stats.vpref_lines += 1;
                tile.channel_rr = (ch + 1) % tile.hbm.num_channels();
            }

            // EPref: issue edge lines of record-ready vertices, up to one
            // request per pseudo-channel per cycle. A line shared with the
            // previous vertex piggybacks on the in-flight fetch (the
            // degree-aware scheduler's locality); segments move into the
            // slab either way, never cloning.
            let mut budget = tile.hbm.num_channels();
            while budget > 0 {
                let Some(head) = tile.records_ready.front().copied() else {
                    break;
                };
                if head.cursor >= head.end {
                    tile.records_ready.pop_front();
                    continue;
                }
                let line = head.cursor / EDGES_PER_LINE;
                let lo = head.cursor;
                let hi = head.end.min((line + 1) * EDGES_PER_LINE);
                let seg = Segment {
                    src: head.av.v,
                    prop: head.av.prop,
                    src_degree: head.degree,
                    edges: lo..hi,
                };
                match tile.last_line {
                    Some((ll, tag)) if ll == line => {
                        match tile.line_inflight.get_mut(tag_slot(tag)) {
                            Some(segs) => segs.push(seg),
                            None => {
                                return Err(SimError::protocol(
                                    format!("piggyback tag {tag} not in flight in tile {t}"),
                                    now,
                                ))
                            }
                        }
                        self.stats.epref_piggybacks += 1;
                    }
                    _ => {
                        let mut ch = tile.channel_rr;
                        let channels = tile.hbm.num_channels();
                        let mut scanned = 0;
                        while !tile.hbm.can_accept(ch) && scanned < channels {
                            ch = (ch + 1) % channels;
                            scanned += 1;
                        }
                        if scanned == channels {
                            break;
                        }
                        let (slot, segs) = tile.line_inflight.acquire();
                        segs.push(seg);
                        let tag = line_tag(slot);
                        tile.hbm
                            .try_request(ch, MemRequest::read(tag, LINE_BYTES as u32));
                        self.stats.epref_lines += 1;
                        tile.last_line = Some((line, tag));
                        tile.channel_rr = (ch + 1) % channels;
                        budget -= 1;
                    }
                }
                match tile.records_ready.front_mut() {
                    Some(head) => head.cursor = hi,
                    None => {
                        return Err(SimError::protocol(
                            format!("record cursor vanished during edge issue in tile {t}"),
                            now,
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    // ----- dispatch ------------------------------------------------------

    /// One dispatch cycle for one EDU row whose queue is non-empty.
    /// Returns whether the queue still holds segments afterwards.
    ///
    /// The EDU drives each of its row's PE lanes independently: per
    /// cycle a lane accepts one edge, so a congested lane (for example
    /// a hub vertex's column) must not stall the other lanes. Segments
    /// are scanned in order; a segment stopped by a busy or full lane
    /// rotates to the back so later segments can fill the free lanes.
    fn dispatch_row(
        &mut self,
        t: usize,
        row: usize,
        lane_owner: &mut Vec<u16>,
        srcs_used: &mut Vec<VertexId>,
    ) -> bool {
        let placement = self.cfg.placement;
        let cols = placement.cols;
        let scan_window = 2 * cols.max(16);
        // Lane ownership this cycle: a lane accepts edges of one
        // segment only (the line occupying that slot); residual
        // same-lane edges within one line are absorbed by the
        // dispatch skew buffer (Section IV-C), so they do not
        // block their own line.
        lane_owner.clear();
        lane_owner.resize(cols, u16::MAX);
        let mut edges_left = cols;
        // Distinct source vertices scheduled this cycle (Section
        // IV-C): a vertex may span several line segments; they all
        // count once.
        srcs_used.clear();
        let mut scanned = 0usize;
        while edges_left > 0 && scanned < scan_window {
            let Some(mut seg) = self.tiles[t].row_queues[row].pop_front() else {
                break;
            };
            scanned += 1;
            if !srcs_used.contains(&seg.src) {
                if srcs_used.len() >= self.cfg.max_scheduled_vertices {
                    // Vertex budget exhausted: this segment must
                    // wait for the next cycle.
                    self.tiles[t].row_queues[row].push_back(seg);
                    continue;
                }
                srcs_used.push(seg.src);
            }
            let csr = self.dev.tile_csr(self.slice, t);
            let seg_id = scanned as u16;
            while edges_left > 0 && !seg.edges.is_empty() {
                let idx = seg.edges.start;
                let dst = csr.neighbor_at(idx);
                let target = target_node(self.cfg, seg.src, dst);
                let lane = target % cols;
                if (lane_owner[lane] != u16::MAX && lane_owner[lane] != seg_id)
                    || self.nodes[target].gu_queue.len() >= self.cfg.gu_queue_capacity
                {
                    break;
                }
                self.nodes[target].gu_queue.push_back(EdgeWork {
                    src: seg.src,
                    dst,
                    weight: csr.weight_at(idx),
                    src_degree: seg.src_degree,
                    src_prop: seg.prop,
                });
                if self.ev.on {
                    self.ev.gu.set(target);
                }
                lane_owner[lane] = seg_id;
                edges_left -= 1;
                seg.edges.start += 1;
                self.dispatched_per_row[t * placement.rows_per_tile + row] += 1;
                self.stats.traversed_edges += 1;
            }
            if !seg.edges.is_empty() {
                // Rotate so the next scan reaches fresh segments
                // whose head edges may target free lanes.
                self.tiles[t].row_queues[row].push_back(seg);
            }
        }
        !self.tiles[t].row_queues[row].is_empty()
    }

    fn step_dispatch(&mut self) {
        let placement = self.cfg.placement;
        // Per-row scratch lives in the pooled engine buffers: cleared and
        // refilled each row, never reallocated in steady state.
        let mut lane_owner = std::mem::take(&mut self.scratch.lane_owner);
        let mut srcs_used = std::mem::take(&mut self.scratch.srcs_used);
        for t in 0..self.tiles.len() {
            for row in 0..placement.rows_per_tile {
                if self.tiles[t].row_queues[row].is_empty() {
                    self.stats.dispatch_starved_row_cycles += 1;
                    continue;
                }
                self.dispatch_row(t, row, &mut lane_owner, &mut srcs_used);
            }
        }
        self.scratch.lane_owner = lane_owner;
        self.scratch.srcs_used = srcs_used;
    }

    /// Masked dispatch: visits only rows whose activity bit is set. A
    /// visited row found empty clears its bit; every other row is starved
    /// this cycle — by the bit invariant an unvisited row's queue is
    /// empty, so the starved count lands exactly where the stepped scan
    /// puts it.
    fn step_dispatch_event(&mut self) -> usize {
        let placement = self.cfg.placement;
        let rows_per_tile = placement.rows_per_tile;
        let total_rows = self.tiles.len() * rows_per_tile;
        let mut lane_owner = std::mem::take(&mut self.scratch.lane_owner);
        let mut srcs_used = std::mem::take(&mut self.scratch.srcs_used);
        let mut rows = std::mem::take(&mut self.ev.rows);
        let mut fed = 0u64;
        let visited = rows.retain(|gr| {
            let (t, row) = (gr / rows_per_tile, gr % rows_per_tile);
            if self.tiles[t].row_queues[row].is_empty() {
                return false;
            }
            fed += 1;
            self.dispatch_row(t, row, &mut lane_owner, &mut srcs_used)
        });
        self.ev.rows = rows;
        self.scratch.lane_owner = lane_owner;
        self.scratch.srcs_used = srcs_used;
        self.stats.dispatch_starved_row_cycles += total_rows as u64 - fed;
        visited
    }

    // ----- compute -------------------------------------------------------

    /// One GU cycle for one node: processes the queue head if any.
    /// Returns whether the queue still holds work afterwards.
    fn gu_node(&mut self, node: usize) -> bool {
        let algo = self.algo;
        let cap = self.cfg.router_queue_capacity;
        let Some(work) = self.nodes[node].gu_queue.front().copied() else {
            return false;
        };
        let ctx = EdgeCtx {
            weight: work.weight,
            src: work.src,
            src_degree: work.src_degree,
        };
        let value = algo.process(&ctx, work.src_prop);
        let home = self.cfg.placement.home_node(work.dst);
        let dir = route_dir(self.cfg, node, home);
        let flit = Flit {
            value,
            inject: self.now,
        };
        let accepted = self.nodes[node].out[dir]
            .try_push(work.dst, flit, cap, |a, b| Flit {
                value: algo.reduce(a.value, b.value),
                inject: a.inject.min(b.inject),
            })
            .is_some();
        if accepted {
            self.nodes[node].gu_queue.pop_front();
            self.stats.gu_busy_cycles += 1;
            self.gu_busy_per_node[node] += 1;
            self.stats.updates_produced += 1;
            if dir != EJECT {
                self.stats.updates_injected += 1;
            }
            if self.ev.on {
                if dir == EJECT {
                    self.ev.spd.set(node);
                } else {
                    self.ev.route.set(node);
                }
            }
        } else {
            // A full output buffer is necessarily non-empty, so its
            // activity bit is already set; the GU retries next cycle.
            self.stats.noc_conflicts += 1;
        }
        !self.nodes[node].gu_queue.is_empty()
    }

    fn step_gu(&mut self) {
        for node in 0..self.nodes.len() {
            self.gu_node(node);
        }
    }

    fn step_gu_event(&mut self) -> usize {
        let mut mask = std::mem::take(&mut self.ev.gu);
        let visited = mask.retain(|node| self.gu_node(node));
        self.ev.gu = mask;
        visited
    }

    // ----- routing -------------------------------------------------------

    /// Re-injects fault-delayed flits whose hold has expired into the
    /// downstream router's input. Runs before [`step_routing`](Self::step_routing)
    /// so a released flit competes for buffer space like freshly arriving
    /// traffic. A flit refused by a full buffer stays parked and retries.
    fn step_delayed(&mut self) {
        let algo = self.algo;
        let cap = self.cfg.router_queue_capacity;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].release > self.now {
                i += 1;
                continue;
            }
            let d = &self.delayed[i];
            let (d_node, d_dir) = (d.node, d.dir);
            let to = neighbor(self.cfg, d.node, d.dir);
            let home = self.cfg.placement.home_node(d.update.dst);
            let to_dir = route_dir(self.cfg, to, home);
            let update = d.update;
            let accepted = self.nodes[to].out[to_dir]
                .try_push(update.dst, update.value, cap, |a, b| Flit {
                    value: algo.reduce(a.value, b.value),
                    inject: a.inject.min(b.inject),
                })
                .is_some();
            if accepted {
                self.stats.noc_hops += 1;
                if C::ENABLED {
                    self.col.link_traversal(d_node, d_dir, 1);
                }
                if self.ev.on {
                    if to_dir == EJECT {
                        self.ev.spd.set(to);
                    } else {
                        self.ev.route.set(to);
                    }
                }
                self.delayed.swap_remove(i);
            } else {
                self.stats.noc_conflicts += 1;
                i += 1;
            }
        }
    }

    /// Deterministically perturbs a corrupted destination id: stays within
    /// the vertex range, or escapes it when the fault says so.
    fn corrupt_dst(dst: VertexId, num_vertices: usize, out_of_range: bool) -> VertexId {
        if out_of_range {
            let n = num_vertices as u64;
            n.saturating_add(1 + u64::from(dst) % 97)
                .min(u64::from(u32::MAX)) as VertexId
        } else {
            (dst + 1) % (num_vertices.max(1) as VertexId)
        }
    }

    /// Decides this cycle's moves out of one router: up to `link_width`
    /// updates per link — links are 64-byte buses carrying several 8-byte
    /// updates. Reservations come out of `free` (the pre-mutation
    /// free-space snapshot shared by all routers this cycle); drained
    /// flits stage in `self.staged` keyed by `moves` order.
    fn route_decide_node(
        &mut self,
        node: usize,
        free: &mut [[usize; NUM_DIRS]],
        moves: &mut Vec<(usize, usize)>,
    ) -> Result<(), SimError> {
        let width = self.cfg.link_width;
        let faults_armed = self.injector.is_some();
        for dir in [NORTH, SOUTH, WEST, EAST] {
            if faults_armed
                && self
                    .injector
                    .as_ref()
                    .is_some_and(|inj| inj.link_blocked(self.now, node, dir))
            {
                // A downed link: zero credit, full back-pressure.
                if !self.nodes[node].out[dir].is_empty() {
                    self.stats.noc_conflicts += 1;
                    if C::ENABLED {
                        self.col.link_backpressure(node, dir);
                    }
                }
                continue;
            }
            let mut granted = 0usize;
            // All updates sharing this link this cycle head the same
            // way physically; per-update destination buffers may
            // differ, so reserve per update.
            while granted < width {
                let Some(update) = self.nodes[node].out[dir].peek_next() else {
                    break;
                };
                // peek_next is stable only until we drain, so resolve
                // the route for the head, reserve, and mark the move;
                // actual drains happen in order below.
                let dst = update.dst;
                if faults_armed {
                    let action = self
                        .injector
                        .as_mut()
                        .and_then(|inj| inj.flit_action(self.now, node, dir));
                    if let Some(action) = action {
                        let Some(mut update) = self.nodes[node].out[dir].drain_one() else {
                            return Err(SimError::protocol(
                                "peeked update vanished during faulty-link drain",
                                self.now,
                            ));
                        };
                        match action {
                            FlitAction::Drop => {
                                self.stats.flits_dropped += 1;
                                if C::ENABLED {
                                    self.col
                                        .instant(self.now, InstantKind::FlitDropped { node, dir });
                                }
                            }
                            FlitAction::Delay(cycles) => {
                                self.stats.flits_delayed += 1;
                                if C::ENABLED {
                                    self.col
                                        .instant(self.now, InstantKind::FlitDelayed { node, dir });
                                }
                                self.delayed.push(DelayedFlit {
                                    release: self.now + cycles.max(1),
                                    node,
                                    dir,
                                    update,
                                });
                                if self.ev.on {
                                    self.ev.cal.schedule(self.now + cycles.max(1), ());
                                }
                            }
                            FlitAction::Corrupt { out_of_range } => {
                                update.dst = Self::corrupt_dst(
                                    update.dst,
                                    self.graph.num_vertices(),
                                    out_of_range,
                                );
                                self.stats.updates_corrupted += 1;
                                if C::ENABLED {
                                    self.col.instant(
                                        self.now,
                                        InstantKind::FlitCorrupted { node, dir },
                                    );
                                }
                                // The corrupted id needs a fresh route;
                                // park it for immediate re-injection at
                                // the neighbor next cycle.
                                self.delayed.push(DelayedFlit {
                                    release: self.now,
                                    node,
                                    dir,
                                    update,
                                });
                                if self.ev.on {
                                    // The earliest retry is next cycle:
                                    // this cycle's re-injection pass has
                                    // already run.
                                    self.ev.cal.schedule(self.now + 1, ());
                                }
                            }
                        }
                        granted += 1;
                        continue;
                    }
                }
                let to = neighbor(self.cfg, node, dir);
                let home = self.cfg.placement.home_node(dst);
                let to_dir = route_dir(self.cfg, to, home);
                if free[to][to_dir] == 0 {
                    self.stats.noc_conflicts += 1;
                    if C::ENABLED {
                        self.col.link_backpressure(node, dir);
                    }
                    break;
                }
                free[to][to_dir] -= 1;
                // Drain immediately into a staging list so the next
                // peek sees the following update.
                let Some(update) = self.nodes[node].out[dir].drain_one() else {
                    return Err(SimError::protocol(
                        "peeked update vanished during routing drain",
                        self.now,
                    ));
                };
                self.stats.noc_hops += 1;
                if C::ENABLED {
                    self.col.link_traversal(node, dir, 1);
                }
                moves.push((to, to_dir));
                // Stash the flit out-of-band keyed by move order.
                self.staged.push(update);
                granted += 1;
            }
        }
        Ok(())
    }

    /// Lands the decided moves in their reserved destination slots and,
    /// in event-driven mode, schedules the receiving units.
    fn route_apply_moves(&mut self, moves: &[(usize, usize)]) {
        let algo = self.algo;
        let cap = self.cfg.router_queue_capacity;
        for (i, &(to, to_dir)) in moves.iter().enumerate() {
            let update = self.staged[i];
            let res =
                self.nodes[to].out[to_dir].try_push(update.dst, update.value, cap, |a, b| Flit {
                    value: algo.reduce(a.value, b.value),
                    inject: a.inject.min(b.inject),
                });
            debug_assert!(res.is_some(), "reserved slot must accept");
            if self.ev.on {
                if to_dir == EJECT {
                    self.ev.spd.set(to);
                } else {
                    self.ev.route.set(to);
                }
            }
        }
        self.staged.clear();
    }

    fn step_routing(&mut self) -> Result<(), SimError> {
        let n_nodes = self.nodes.len();
        // Snapshot free space per (node, buffer), reusing pooled scratch.
        let mut free = std::mem::take(&mut self.scratch.route_free);
        free.clear();
        for node in &self.nodes {
            let mut f = [0usize; NUM_DIRS];
            for (d, slot) in f.iter_mut().enumerate() {
                let b = &node.out[d];
                let cap = b.capacity() + self.cfg.router_queue_capacity;
                *slot = cap.saturating_sub(b.len());
            }
            free.push(f);
        }
        let mut moves = std::mem::take(&mut self.scratch.route_moves);
        moves.clear();
        for node in 0..n_nodes {
            self.route_decide_node(node, &mut free, &mut moves)?;
        }
        self.route_apply_moves(&moves);
        self.scratch.route_free = free;
        self.scratch.route_moves = moves;
        Ok(())
    }

    /// Masked routing: only nodes whose activity bit is set may move
    /// flits. The free-space snapshot must be pre-mutation exactly like
    /// the stepped all-node pass, so a sparse epoch-stamped fill covers
    /// every reachable destination *before* any drain; decisions then run
    /// in ascending node order, matching the stepped loop on the nodes it
    /// would not skip.
    fn step_routing_event(&mut self) -> Result<usize, SimError> {
        let mut active = std::mem::take(&mut self.ev.active_nodes);
        active.clear();
        self.ev.route.collect_into(&mut active);
        if active.is_empty() {
            self.ev.active_nodes = active;
            return Ok(0);
        }
        let mut free = std::mem::take(&mut self.ev.route_free);
        self.ev.epoch += 1;
        let epoch = self.ev.epoch;
        for &node in &active {
            for dir in [NORTH, SOUTH, WEST, EAST] {
                if self.nodes[node].out[dir].is_empty() {
                    continue;
                }
                let to = neighbor(self.cfg, node, dir);
                if self.ev.route_epoch[to] != epoch {
                    self.ev.route_epoch[to] = epoch;
                    let mut f = [0usize; NUM_DIRS];
                    for (d, slot) in f.iter_mut().enumerate() {
                        let b = &self.nodes[to].out[d];
                        let cap = b.capacity() + self.cfg.router_queue_capacity;
                        *slot = cap.saturating_sub(b.len());
                    }
                    free[to] = f;
                }
            }
        }
        let mut moves = std::mem::take(&mut self.scratch.route_moves);
        moves.clear();
        let mut result = Ok(());
        for &node in &active {
            if let Err(e) = self.route_decide_node(node, &mut free, &mut moves) {
                result = Err(e);
                break;
            }
        }
        if result.is_ok() {
            self.route_apply_moves(&moves);
            // Clear bits only after the pushes landed: a drained router
            // that just received fresh flits must stay scheduled.
            for &node in &active {
                let n = &self.nodes[node];
                if [NORTH, SOUTH, WEST, EAST]
                    .iter()
                    .all(|&d| n.out[d].is_empty())
                {
                    self.ev.route.clear(node);
                }
            }
        }
        let visited = active.len();
        self.ev.route_free = free;
        self.scratch.route_moves = moves;
        self.ev.active_nodes = active;
        result.map(|()| visited)
    }

    // ----- scratchpads ---------------------------------------------------

    /// One scratchpad-reduce cycle for one node: accepts the ejected
    /// update if any. Returns whether more ejected updates are waiting.
    fn spd_node(&mut self, node: usize) -> Result<bool, SimError> {
        let Some(update) = self.nodes[node].out[EJECT].drain_one() else {
            return Ok(false);
        };
        let v = update.dst as usize;
        if v >= self.temp.len() {
            // Only an injected corruption can manufacture an id outside
            // the vertex array; the scratchpad has nowhere to put it.
            return Err(SimError::FaultUnrecoverable {
                detail: format!(
                    "update ejected at PE {node} targets vertex {v} but the graph has {}",
                    self.temp.len()
                ),
                cycle: self.now,
            });
        }
        debug_assert_eq!(self.cfg.placement.home_node(update.dst), node);
        self.temp[v] = self.algo.reduce(self.temp[v], update.value.value);
        if !self.touched[v] {
            self.touched[v] = true;
            self.touched_list.push(update.dst);
        }
        self.stats.updates_delivered += 1;
        self.stats.routing_latency_sum += self.now.saturating_sub(update.value.inject);
        self.stats.routing_latency_count += 1;
        if C::ENABLED {
            self.col
                .routing_latency(self.now.saturating_sub(update.value.inject));
        }
        Ok(!self.nodes[node].out[EJECT].is_empty())
    }

    fn step_spd(&mut self) -> Result<(), SimError> {
        for node in 0..self.nodes.len() {
            self.spd_node(node)?;
        }
        Ok(())
    }

    fn step_spd_event(&mut self) -> Result<usize, SimError> {
        let mut mask = std::mem::take(&mut self.ev.spd);
        let mut result = Ok(());
        let visited = mask.retain(|node| {
            if result.is_err() {
                // The engine is unwinding; freeze the remaining bits
                // (stepped execution also stops mid-scan on error).
                return true;
            }
            match self.spd_node(node) {
                Ok(keep) => keep,
                Err(e) => {
                    result = Err(e);
                    true
                }
            }
        });
        self.ev.spd = mask;
        result.map(|()| visited)
    }

    // ----- apply ---------------------------------------------------------

    /// One apply cycle for one node: pops and applies the queue head if
    /// any. Returns whether more applies are queued.
    fn apply_node(&mut self, node: usize) -> bool {
        let k = self.cfg.placement.num_pes() as u64;
        let Some(v) = self.nodes[node].apply_queue.pop_front() else {
            return false;
        };
        self.apply_inflight -= 1;
        self.stats.applies += 1;
        let vi = v as usize;
        let old = self.props[vi];
        let new = self.algo.apply(v, old, self.temp[vi], self.graph);
        self.temp[vi] = self.algo.reduce_identity();
        self.touched[vi] = false;
        if new != old {
            self.props[vi] = new;
        }
        if self.algo.activates(old, new) {
            self.stats.activations += 1;
            let tile = self.cfg.placement.tile_of(v);
            self.tiles[tile].write_backlog += 1;
            if self.cfg.mapping == Mapping::DestinationOriented {
                // Replica refresh in every PE (Section IV-A).
                self.stats.noc_hops += k - 1;
                self.broadcast_backlog += 1;
            }
            let av = ActiveVertex { v, prop: new };
            if self.scatter_input_open {
                self.feed_pipelined_activation(av);
            }
            self.next_active.push(av);
        }
        !self.nodes[node].apply_queue.is_empty()
    }

    fn step_apply(&mut self) {
        for node in 0..self.nodes.len() {
            self.apply_node(node);
        }
    }

    fn step_apply_event(&mut self) -> usize {
        let mut mask = std::mem::take(&mut self.ev.apply);
        let visited = mask.retain(|node| self.apply_node(node));
        self.ev.apply = mask;
        visited
    }

    /// Starts the apply pass for the slice just scattered.
    fn begin_apply(&mut self) {
        debug_assert_eq!(self.apply_inflight, 0);
        if self.dense_apply() {
            // Fixed-schedule algorithms apply every resident vertex.
            self.touched_list.clear();
            let iv = self.dev.interval(self.slice);
            for v in iv.start..iv.end {
                let node = self.cfg.placement.home_node(v);
                self.nodes[node].apply_queue.push_back(v);
                self.apply_inflight += 1;
            }
        } else {
            let list = std::mem::take(&mut self.touched_list);
            for v in list {
                let node = self.cfg.placement.home_node(v);
                self.nodes[node].apply_queue.push_back(v);
                self.apply_inflight += 1;
            }
        }
        if self.ev.on {
            for node in 0..self.nodes.len() {
                if !self.nodes[node].apply_queue.is_empty() {
                    self.ev.apply.set(node);
                }
            }
        }
        if std::env::var_os("SCALAGRAPH_TRACE").is_some() {
            eprintln!(
                "[trace] cycle {}: begin_apply (inflight {})",
                self.now, self.apply_inflight
            );
        }
        self.phase = Phase::Apply;
    }

    fn dense_apply(&self) -> bool {
        !self.algo.is_monotonic()
    }

    // ----- phase sequencing ---------------------------------------------

    fn scatter_machine_empty(&self) -> bool {
        self.delayed.is_empty()
            && self.tiles.iter().all(TileFrontend::is_drained)
            && self
                .nodes
                .iter()
                .all(|n| n.gu_queue.is_empty() && n.out.iter().all(AggregationBuffer::is_empty))
    }

    fn apply_machine_empty(&self) -> bool {
        self.apply_inflight == 0 && self.broadcast_backlog == 0
    }

    /// Runs the phase state machine to quiescence; returns `true` when the
    /// whole run has completed.
    fn advance_phases(&mut self) -> bool {
        loop {
            match self.phase {
                Phase::Scatter => {
                    if self.scatter_input_open || !self.scatter_machine_empty() {
                        return false;
                    }
                    // The scatter wave (scatter_iter, slice) has drained.
                    if self.dense_apply() || !self.touched_list.is_empty() {
                        self.begin_apply();
                        if self.pipelined {
                            // Open the next wave: activations from this
                            // apply pass stream straight into it.
                            self.scatter_iter += 1;
                            self.scatter_input_open = self.scatter_iter < self.limit;
                        }
                        continue;
                    }
                    // No apply work from this wave.
                    if self.pipelined {
                        // Converged: nothing was updated, nothing pending.
                        // The wave still consumed a frontier; if that
                        // frontier was non-empty (e.g. every active vertex
                        // had zero out-degree) the reference engine counts
                        // it as an iteration, so we must too.
                        if !self.iter_active.is_empty() && self.scatter_iter < self.limit {
                            self.stats.iterations += 1;
                        }
                        return true;
                    }
                    if self.next_wave() {
                        continue;
                    }
                    return true;
                }
                Phase::Apply => {
                    if !self.apply_machine_empty() {
                        return false;
                    }
                    self.phase = Phase::Scatter;
                    if self.pipelined {
                        // Close the pipelined wave's input and record the
                        // iteration that just fully completed.
                        self.scatter_input_open = false;
                        self.stats.iterations += 1;
                        let next = std::mem::take(&mut self.next_active);
                        if !next.is_empty() {
                            self.frontier_sizes.push(next.len());
                        }
                        self.iter_active = next;
                        continue;
                    }
                    if self.next_wave() {
                        continue;
                    }
                    return true;
                }
            }
        }
    }

    /// Non-pipelined sequencing: start the next slice of this iteration,
    /// or wrap up the iteration and start the next one. Returns `false`
    /// when the run is complete.
    fn next_wave(&mut self) -> bool {
        if std::env::var_os("SCALAGRAPH_TRACE").is_some() {
            eprintln!(
                "[trace] cycle {}: wave done (iter {}, slice {})",
                self.now, self.scatter_iter, self.slice
            );
        }
        if self.slice + 1 < self.dev.num_slices() {
            self.slice += 1;
            self.feed_scatter_inputs();
            return true;
        }
        // Iteration complete.
        self.stats.iterations += 1;
        self.scatter_iter += 1;
        self.slice = 0;
        self.iter_active = std::mem::take(&mut self.next_active);
        if self.iter_active.is_empty() || self.scatter_iter >= self.limit {
            return false;
        }
        // Without inter-phase pipelining, "Scatter phase starts only when
        // Apply phase in the last iteration finishes writing back all
        // active vertices" (Section IV-D): charge the write-back flush and
        // the read-back latency of the new active list.
        let channels = self.cfg.tile_memory().channels.max(1) as u64;
        let writeback = self.iter_active.len() as u64 / (8 * channels);
        self.fetch_stall = writeback + self.cfg.tile_memory().latency_cycles as u64;
        self.frontier_sizes.push(self.iter_active.len());
        self.feed_scatter_inputs();
        true
    }
}

// ----- helpers ------------------------------------------------------------

/// The PE that executes an edge workload under the configured mapping.
fn target_node(cfg: &ScalaGraphConfig, src: VertexId, dst: VertexId) -> usize {
    let p = cfg.placement;
    match cfg.mapping {
        // ROM: the destination's tile and column, the source's row — all
        // NoC traffic becomes intra-column and intra-tile (Section IV-A).
        Mapping::RowOriented => p.node(p.tile_of(dst), p.row_of(src), p.col_of(dst)),
        // SOM: the source's home PE.
        Mapping::SourceOriented => p.home_node(src),
        // DOM: the destination's home PE (the source replica is local).
        Mapping::DestinationOriented => p.home_node(dst),
    }
}

/// Neighbor of `node` in direction `dir` on the global mesh.
fn neighbor(cfg: &ScalaGraphConfig, node: usize, dir: usize) -> usize {
    let cols = cfg.placement.cols;
    match dir {
        NORTH => node - cols,
        SOUTH => node + cols,
        WEST => node - 1,
        EAST => node + 1,
        _ => unreachable!("eject has no neighbor"),
    }
}

/// XY routing decision from `node` towards `home` (column first, then
/// row).
fn route_dir(cfg: &ScalaGraphConfig, node: usize, home: usize) -> usize {
    let cols = cfg.placement.cols;
    let (r, c) = (node / cols, node % cols);
    let (hr, hc) = (home / cols, home % cols);
    if hc > c {
        EAST
    } else if hc < c {
        WEST
    } else if hr > r {
        SOUTH
    } else if hr < r {
        NORTH
    } else {
        EJECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryPreset;
    use scalagraph_algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp, UNREACHED};
    use scalagraph_algo::ReferenceEngine;
    use scalagraph_graph::{generators, Dataset, EdgeList};

    fn cfg32() -> ScalaGraphConfig {
        ScalaGraphConfig::with_pes(32)
    }

    fn bfs_matches_reference(graph: &Csr, cfg: ScalaGraphConfig, root: VertexId) {
        let algo = Bfs::from_root(root);
        let golden = ReferenceEngine::new().run(&algo, graph);
        let sim = run_on(&algo, graph, cfg);
        assert_eq!(sim.properties, golden.properties);
    }

    #[test]
    fn bfs_on_tree_matches_reference() {
        let g = Csr::from_edges(127, &generators::binary_tree(127));
        bfs_matches_reference(&g, cfg32(), 0);
    }

    #[test]
    fn bfs_on_random_graph_matches_reference() {
        let g = Csr::from_edges(500, &generators::uniform(500, 4000, 7));
        bfs_matches_reference(&g, cfg32(), 3);
    }

    #[test]
    fn bfs_on_power_law_matches_reference() {
        let g = Csr::from_edges(400, &generators::power_law(400, 5000, 0.8, 9));
        let root = Dataset::pick_root(&g);
        bfs_matches_reference(&g, cfg32(), root);
    }

    #[test]
    fn bfs_without_pipelining_matches_reference() {
        let g = Csr::from_edges(300, &generators::uniform(300, 2500, 11));
        let mut cfg = cfg32();
        cfg.inter_phase_pipelining = false;
        bfs_matches_reference(&g, cfg, 0);
    }

    #[test]
    fn sssp_matches_reference() {
        let mut list = EdgeList::new(200);
        for e in generators::uniform(200, 1500, 13) {
            list.push(e);
        }
        list.randomize_weights(255, 5);
        let g = Csr::from_edge_list(&list);
        let algo = Sssp::from_root(0);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let sim = run_on(&algo, &g, cfg32());
        assert_eq!(sim.properties, golden.properties);
    }

    #[test]
    fn cc_matches_reference_on_symmetrized_graph() {
        let mut list = EdgeList::new(150);
        for e in generators::uniform(150, 600, 17) {
            list.push(e);
        }
        list.symmetrize();
        let g = Csr::from_edge_list(&list);
        let algo = ConnectedComponents::new();
        let golden = ReferenceEngine::new().run(&algo, &g);
        let sim = run_on(&algo, &g, cfg32());
        assert_eq!(sim.properties, golden.properties);
    }

    #[test]
    fn pagerank_matches_reference_within_float_tolerance() {
        let g = Csr::from_edges(120, &generators::power_law(120, 1200, 0.8, 21));
        let algo = PageRank::new(5);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let sim = run_on(&algo, &g, cfg32());
        assert!(!sim.stats.inter_phase_used, "PR must not pipeline");
        assert_eq!(sim.stats.iterations, 5);
        for (a, b) in sim.properties.iter().zip(&golden.properties) {
            assert!((a - b).abs() < 1e-4, "rank {a} vs {b}");
        }
    }

    #[test]
    fn all_mappings_agree_on_results() {
        let g = Csr::from_edges(256, &generators::uniform(256, 3000, 23));
        let algo = Bfs::from_root(1);
        let golden = ReferenceEngine::new().run(&algo, &g);
        for mapping in Mapping::ALL {
            let mut cfg = cfg32();
            cfg.mapping = mapping;
            let sim = run_on(&algo, &g, cfg);
            assert_eq!(sim.properties, golden.properties, "{mapping}");
        }
    }

    #[test]
    fn rom_produces_less_traffic_than_som() {
        let g = Csr::from_edges(512, &generators::uniform(512, 8000, 29));
        let algo = PageRank::new(2);
        let mut rom_cfg = ScalaGraphConfig::with_pes(64);
        rom_cfg.mapping = Mapping::RowOriented;
        let mut som_cfg = ScalaGraphConfig::with_pes(64);
        som_cfg.mapping = Mapping::SourceOriented;
        let rom = run_on(&algo, &g, rom_cfg);
        let som = run_on(&algo, &g, som_cfg);
        assert!(
            rom.stats.noc_hops < som.stats.noc_hops,
            "ROM {} vs SOM {}",
            rom.stats.noc_hops,
            som.stats.noc_hops
        );
    }

    #[test]
    fn aggregation_reduces_traffic() {
        let g = Csr::from_edges(256, &generators::power_law(256, 6000, 0.9, 31));
        let algo = PageRank::new(2);
        let mut with = cfg32();
        with.aggregation_registers = 16;
        let mut without = cfg32();
        without.aggregation_registers = 0;
        let w = run_on(&algo, &g, with);
        let wo = run_on(&algo, &g, without);
        assert!(w.stats.agg_merges > 0 || w.stats.noc_hops <= wo.stats.noc_hops);
        // Results must agree regardless.
        for (a, b) in w.properties.iter().zip(&wo.properties) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn sliced_execution_matches_reference() {
        let g = Csr::from_edges(300, &generators::uniform(300, 3000, 37));
        let mut cfg = cfg32();
        cfg.spd_capacity_vertices = 64; // forces ~5 slices
        let algo = Bfs::from_root(0);
        let golden = ReferenceEngine::new().run(&algo, &g);
        let sim = run_on(&algo, &g, cfg);
        assert!(sim.stats.slices >= 4);
        assert!(!sim.stats.inter_phase_used);
        assert_eq!(sim.properties, golden.properties);
    }

    #[test]
    fn pipelining_preserves_results_and_saves_cycles() {
        let g = Csr::from_edges(600, &generators::power_law(600, 8000, 0.8, 41));
        let algo = Bfs::from_root(Dataset::pick_root(&g));
        let mut on = cfg32();
        on.inter_phase_pipelining = true;
        let mut off = cfg32();
        off.inter_phase_pipelining = false;
        let a = run_on(&algo, &g, on);
        let b = run_on(&algo, &g, off);
        assert_eq!(a.properties, b.properties);
        assert!(a.stats.inter_phase_used);
        assert!(
            a.stats.cycles < b.stats.cycles,
            "pipelined {} !< serial {}",
            a.stats.cycles,
            b.stats.cycles
        );
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = Csr::from_edges(64, &generators::path(32));
        let sim = run_on(&Bfs::from_root(0), &g, cfg32());
        assert_eq!(sim.properties[31], 31);
        assert_eq!(sim.properties[40], UNREACHED);
    }

    #[test]
    fn empty_graph_and_empty_frontier_terminate() {
        let g = Csr::from_edges(10, &[]);
        let sim = run_on(&Bfs::from_root(0), &g, cfg32());
        assert_eq!(sim.properties[0], 0);
        assert_eq!(sim.properties[5], UNREACHED);
    }

    #[test]
    fn stats_are_consistent() {
        let g = Csr::from_edges(256, &generators::uniform(256, 4000, 43));
        let sim = run_on(&PageRank::new(3), &g, cfg32());
        let s = sim.stats;
        assert_eq!(s.traversed_edges, 3 * 4000);
        assert_eq!(s.updates_produced, s.traversed_edges);
        // Deliveries + merges == produced (each update either merges into
        // another or eventually reaches an SPD).
        assert_eq!(s.updates_delivered + s.agg_merges, s.updates_produced);
        assert!(s.offchip_bytes_read > 0);
        assert!(s.pe_utilization() > 0.0 && s.pe_utilization() <= 1.0);
        assert!(s.cycles > 0);
    }

    #[test]
    fn unlimited_memory_is_not_slower() {
        let g = Csr::from_edges(512, &generators::uniform(512, 10_000, 47));
        let algo = PageRank::new(2);
        let mut fast = cfg32();
        fast.memory = MemoryPreset::Unlimited;
        let limited = run_on(&algo, &g, cfg32());
        let unlimited = run_on(&algo, &g, fast);
        assert!(unlimited.stats.cycles <= limited.stats.cycles);
    }

    #[test]
    fn more_pes_do_not_slow_down_pagerank() {
        let g = Csr::from_edges(1024, &generators::uniform(1024, 30_000, 53));
        let algo = PageRank::new(2);
        let small = run_on(&algo, &g, ScalaGraphConfig::with_pes(32));
        let large = run_on(&algo, &g, ScalaGraphConfig::with_pes(128));
        assert!(
            large.stats.cycles < small.stats.cycles,
            "128 PEs {} !< 32 PEs {}",
            large.stats.cycles,
            small.stats.cycles
        );
    }

    #[test]
    fn dom_counts_broadcast_traffic() {
        let g = Csr::from_edges(128, &generators::uniform(128, 1000, 59));
        let mut cfg = cfg32();
        cfg.mapping = Mapping::DestinationOriented;
        let sim = run_on(&Bfs::from_root(0), &g, cfg);
        // DOM has no scatter routing, so hops come only from broadcasts.
        assert!(sim.stats.noc_hops >= sim.stats.activations * 31);
    }

    // ----- idle-cycle fast-forward ----------------------------------------

    /// The fast-forward contract: not "close enough", but the same machine.
    /// Every counter in `SimStats`, every frontier size, every property
    /// must match a cycle-by-cycle run exactly.
    fn assert_ff_identical<A: Algorithm>(algo: &A, graph: &Csr, cfg: &ScalaGraphConfig) {
        let mut off = cfg.clone();
        off.fast_forward = false;
        let mut on = cfg.clone();
        on.fast_forward = true;
        let a = run_on(algo, graph, off);
        let b = run_on(algo, graph, on);
        assert_eq!(a.properties, b.properties, "properties diverge");
        assert_eq!(a.frontier_sizes, b.frontier_sizes, "frontiers diverge");
        assert_eq!(a.stats, b.stats, "stats diverge");
    }

    #[test]
    fn fast_forward_is_bit_identical_for_pipelined_bfs() {
        let g = Csr::from_edges(600, &generators::power_law(600, 8000, 0.8, 41));
        assert_ff_identical(&Bfs::from_root(Dataset::pick_root(&g)), &g, &cfg32());
    }

    #[test]
    fn fast_forward_is_bit_identical_without_pipelining() {
        // Non-pipelined runs spend long stretches in the inter-iteration
        // fetch stall — the main idle window the jump exists for.
        let g = Csr::from_edges(500, &generators::uniform(500, 4000, 7));
        let mut cfg = cfg32();
        cfg.inter_phase_pipelining = false;
        assert_ff_identical(&Bfs::from_root(3), &g, &cfg);
    }

    #[test]
    fn fast_forward_is_bit_identical_for_sssp_and_cc() {
        let mut list = EdgeList::new(200);
        for e in generators::uniform(200, 1500, 13) {
            list.push(e);
        }
        list.randomize_weights(255, 5);
        let g = Csr::from_edge_list(&list);
        assert_ff_identical(&Sssp::from_root(0), &g, &cfg32());

        let mut list = EdgeList::new(150);
        for e in generators::uniform(150, 600, 17) {
            list.push(e);
        }
        list.symmetrize();
        let g = Csr::from_edge_list(&list);
        assert_ff_identical(&ConnectedComponents::new(), &g, &cfg32());
    }

    #[test]
    fn fast_forward_is_bit_identical_for_pagerank_and_dom_broadcasts() {
        let g = Csr::from_edges(120, &generators::power_law(120, 1200, 0.8, 21));
        assert_ff_identical(&PageRank::new(5), &g, &cfg32());

        // DOM exercises the broadcast-backlog drain timer.
        let g = Csr::from_edges(128, &generators::uniform(128, 1000, 59));
        let mut cfg = cfg32();
        cfg.mapping = Mapping::DestinationOriented;
        assert_ff_identical(&Bfs::from_root(0), &g, &cfg);
    }

    #[test]
    fn fast_forward_is_bit_identical_across_slices() {
        let g = Csr::from_edges(300, &generators::uniform(300, 3000, 37));
        let mut cfg = cfg32();
        cfg.spd_capacity_vertices = 64; // forces ~5 slices
        assert_ff_identical(&Bfs::from_root(0), &g, &cfg);
    }

    #[test]
    fn fast_forward_trips_the_watchdog_on_the_same_cycle() {
        use crate::fault::{Fault, FaultKind, FaultPlan};
        // Permanently pin a channel mid-run: the watchdog must fire on the
        // identical cycle with the identical stall count either way.
        let g = Csr::from_edges(400, &generators::uniform(400, 3000, 11));
        let algo = Bfs::from_root(0);
        let mut cfg = cfg32();
        cfg.watchdog_stall_cycles = 2_000;
        cfg.fault_plan = Some(
            FaultPlan::seeded(11).with(
                Fault::new(FaultKind::HbmStall {
                    tile: 0,
                    channel: 0,
                    cycles: u64::MAX,
                })
                .window(20, 21),
            ),
        );
        let run = |ff: bool| {
            let mut c = cfg.clone();
            c.fast_forward = ff;
            try_run_on(&algo, &g, c)
        };
        match (run(false), run(true)) {
            (Err(ea), Err(eb)) => {
                let sa = ea.snapshot().expect("stall errors carry a snapshot");
                let sb = eb.snapshot().expect("stall errors carry a snapshot");
                assert_eq!(sa.cycle, sb.cycle, "watchdog cycle diverges");
                assert_eq!(sa.stalled_for, sb.stalled_for);
                assert!(sa.stalled_for >= 2_000);
            }
            (a, b) => panic!("expected identical stalls, got {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn cycle_limit_fires_identically_with_fast_forward() {
        let g = Csr::from_edges(200, &generators::uniform(200, 1500, 3));
        let algo = Bfs::from_root(0);
        let full = try_run_on(&algo, &g, cfg32()).expect("full run converges");
        assert!(full.stats.cycles > 16, "graph too small to interrupt");
        let limit = full.stats.cycles / 2;
        let run = |ff: bool| {
            let mut c = cfg32();
            c.cycle_limit = Some(limit);
            c.fast_forward = ff;
            try_run_on(&algo, &g, c)
        };
        match (run(false), run(true)) {
            (
                Err(SimError::DeadlineExceeded {
                    cycle: ca,
                    partial: pa,
                }),
                Err(SimError::DeadlineExceeded {
                    cycle: cb,
                    partial: pb,
                }),
            ) => {
                assert_eq!(ca, limit, "deadline lands on exactly the limit cycle");
                assert_eq!(cb, limit);
                assert_eq!(pa, pb, "partial counters diverge between modes");
                assert_eq!(pa.cycles, limit);
            }
            (a, b) => panic!("expected identical deadlines, got {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn cancel_token_signals_map_to_typed_errors() {
        let g = Csr::from_edges(100, &generators::uniform(100, 600, 9));
        let algo = Bfs::from_root(0);
        let cancelled = CancelToken::new();
        cancelled.cancel();
        match Simulator::try_new(&algo, &g, cfg32())
            .and_then(|mut s| s.try_run_cancellable(&cancelled))
        {
            Err(SimError::Cancelled { cycle, partial }) => {
                assert!(cycle >= 1);
                assert_eq!(partial.cycles, cycle);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let expired = CancelToken::new();
        expired.expire();
        match Simulator::try_new(&algo, &g, cfg32())
            .and_then(|mut s| s.try_run_cancellable(&expired))
        {
            Err(SimError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unsignalled_token_leaves_the_run_bit_identical() {
        let g = Csr::from_edges(150, &generators::uniform(150, 900, 5));
        let algo = Bfs::from_root(0);
        let plain = try_run_on(&algo, &g, cfg32()).expect("plain run converges");
        let token = CancelToken::new();
        let controlled = Simulator::try_new(&algo, &g, cfg32())
            .and_then(|mut s| s.try_run_cancellable(&token))
            .expect("controlled run converges");
        assert_eq!(plain.stats, controlled.stats);
        assert_eq!(plain.properties, controlled.properties);
        assert_eq!(plain.frontier_sizes, controlled.frontier_sizes);
    }

    // ----- event-driven stepping core -------------------------------------

    /// The event-driven contract extends the fast-forward one: stepped and
    /// event-driven execution are the same machine, counter for counter.
    fn assert_ev_identical<A: Algorithm>(algo: &A, graph: &Csr, cfg: &ScalaGraphConfig) {
        let mut stepped = cfg.clone();
        stepped.fast_forward = false;
        stepped.event_driven = false;
        let mut event = cfg.clone();
        event.fast_forward = true;
        event.event_driven = true;
        let a = run_on(algo, graph, stepped);
        let b = run_on(algo, graph, event);
        assert_eq!(a.properties, b.properties, "properties diverge");
        assert_eq!(a.frontier_sizes, b.frontier_sizes, "frontiers diverge");
        assert_eq!(a.stats, b.stats, "stats diverge");
    }

    #[test]
    fn event_driven_is_bit_identical_for_pipelined_bfs() {
        let g = Csr::from_edges(600, &generators::power_law(600, 8000, 0.8, 41));
        let algo = Bfs::from_root(Dataset::pick_root(&g));
        assert_ev_identical(&algo, &g, &cfg32());
        // Three-way: the intermediate fast-forward-only mode must also
        // land on the same machine state.
        let mut ff = cfg32();
        ff.fast_forward = true;
        let mut ev = cfg32();
        ev.fast_forward = true;
        ev.event_driven = true;
        let a = run_on(&algo, &g, ff);
        let b = run_on(&algo, &g, ev);
        assert_eq!(a.stats, b.stats, "fast-forward vs event-driven diverge");
    }

    #[test]
    fn event_driven_is_bit_identical_without_pipelining() {
        // Non-pipelined runs alternate busy bursts with long fetch stalls:
        // both the sparse stepping and the whole-device skip paths fire.
        let g = Csr::from_edges(500, &generators::uniform(500, 4000, 7));
        let mut cfg = cfg32();
        cfg.inter_phase_pipelining = false;
        assert_ev_identical(&Bfs::from_root(3), &g, &cfg);
    }

    #[test]
    fn event_driven_is_bit_identical_for_sssp_and_cc() {
        let mut list = EdgeList::new(200);
        for e in generators::uniform(200, 1500, 13) {
            list.push(e);
        }
        list.randomize_weights(255, 5);
        let g = Csr::from_edge_list(&list);
        assert_ev_identical(&Sssp::from_root(0), &g, &cfg32());

        let mut list = EdgeList::new(150);
        for e in generators::uniform(150, 600, 17) {
            list.push(e);
        }
        list.symmetrize();
        let g = Csr::from_edge_list(&list);
        assert_ev_identical(&ConnectedComponents::new(), &g, &cfg32());
    }

    #[test]
    fn event_driven_is_bit_identical_for_pagerank_and_dom_broadcasts() {
        let g = Csr::from_edges(120, &generators::power_law(120, 1200, 0.8, 21));
        assert_ev_identical(&PageRank::new(5), &g, &cfg32());

        // DOM exercises the apply-mask seeding and broadcast drain timer.
        let g = Csr::from_edges(128, &generators::uniform(128, 1000, 59));
        let mut cfg = cfg32();
        cfg.mapping = Mapping::DestinationOriented;
        assert_ev_identical(&Bfs::from_root(0), &g, &cfg);
    }

    #[test]
    fn event_driven_is_bit_identical_across_slices() {
        let g = Csr::from_edges(300, &generators::uniform(300, 3000, 37));
        let mut cfg = cfg32();
        cfg.spd_capacity_vertices = 64; // forces ~5 slices
        assert_ev_identical(&Bfs::from_root(0), &g, &cfg);
    }

    #[test]
    fn event_driven_is_bit_identical_under_link_faults() {
        use crate::fault::{Fault, FaultKind, FaultPlan, LinkDir};
        // Delayed and corrupted flits park in the side pool and wake via
        // the calendar; drops perturb the fault RNG stream. All of it must
        // replay identically when only active units are stepped.
        let g = Csr::from_edges(400, &generators::power_law(400, 4000, 0.8, 23));
        let algo = Bfs::from_root(Dataset::pick_root(&g));
        let mut cfg = cfg32();
        cfg.fault_plan = Some(
            FaultPlan::seeded(29)
                .with(
                    Fault::new(FaultKind::LinkDelay {
                        node: 5,
                        dir: LinkDir::South,
                        cycles: 7,
                    })
                    .window(0, 400),
                )
                .with(
                    Fault::new(FaultKind::LinkDrop {
                        node: 3,
                        dir: LinkDir::South,
                        one_in: 5,
                    })
                    .window(0, 300),
                )
                .with(
                    Fault::new(FaultKind::CorruptPayload {
                        node: 7,
                        dir: LinkDir::South,
                        one_in: 9,
                        out_of_range: false,
                    })
                    .window(50, 500),
                )
                .with(
                    Fault::new(FaultKind::HbmStall {
                        tile: 0,
                        channel: 1,
                        cycles: 40,
                    })
                    .window(30, 31),
                ),
        );
        assert_ev_identical(&algo, &g, &cfg);
    }

    #[test]
    fn event_driven_trips_the_watchdog_on_the_same_cycle() {
        use crate::fault::{Fault, FaultKind, FaultPlan};
        let g = Csr::from_edges(400, &generators::uniform(400, 3000, 11));
        let algo = Bfs::from_root(0);
        let mut cfg = cfg32();
        cfg.watchdog_stall_cycles = 2_000;
        cfg.fault_plan = Some(
            FaultPlan::seeded(11).with(
                Fault::new(FaultKind::HbmStall {
                    tile: 0,
                    channel: 0,
                    cycles: u64::MAX,
                })
                .window(20, 21),
            ),
        );
        let run = |ff: bool, ev: bool| {
            let mut c = cfg.clone();
            c.fast_forward = ff;
            c.event_driven = ev;
            try_run_on(&algo, &g, c)
        };
        match (run(false, false), run(true, false), run(true, true)) {
            (Err(ea), Err(eb), Err(ec)) => {
                let sa = ea.snapshot().expect("stall errors carry a snapshot");
                let sb = eb.snapshot().expect("stall errors carry a snapshot");
                let sc = ec.snapshot().expect("stall errors carry a snapshot");
                assert_eq!(sa.cycle, sc.cycle, "watchdog cycle diverges");
                assert_eq!(sb.cycle, sc.cycle);
                assert_eq!(sa.stalled_for, sc.stalled_for);
                assert!(sc.stalled_for >= 2_000);
            }
            (a, b, c) => panic!("expected identical stalls, got {a:?} / {b:?} / {c:?}"),
        }
    }

    #[test]
    fn cycle_limit_fires_identically_with_event_driven() {
        let g = Csr::from_edges(200, &generators::uniform(200, 1500, 3));
        let algo = Bfs::from_root(0);
        let full = try_run_on(&algo, &g, cfg32()).expect("full run converges");
        let limit = full.stats.cycles / 2;
        let run = |ev: bool| {
            let mut c = cfg32();
            c.cycle_limit = Some(limit);
            c.fast_forward = ev;
            c.event_driven = ev;
            try_run_on(&algo, &g, c)
        };
        match (run(false), run(true)) {
            (
                Err(SimError::DeadlineExceeded {
                    cycle: ca,
                    partial: pa,
                }),
                Err(SimError::DeadlineExceeded {
                    cycle: cb,
                    partial: pb,
                }),
            ) => {
                assert_eq!(ca, limit);
                assert_eq!(cb, limit, "deadline lands on exactly the limit cycle");
                assert_eq!(pa, pb, "partial counters diverge between modes");
            }
            (a, b) => panic!("expected identical deadlines, got {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn event_driven_telemetry_matches_stepped_and_adds_diagnostics() {
        use crate::telemetry::Recorder;
        let g = Csr::from_edges(500, &generators::power_law(500, 5000, 0.8, 19));
        let algo = Bfs::from_root(Dataset::pick_root(&g));
        let run = |ev: bool| {
            let mut c = cfg32();
            c.fast_forward = ev;
            c.event_driven = ev;
            let mut rec = Recorder::new(64);
            let r = Simulator::try_new(&algo, &g, c)
                .and_then(|mut s| s.try_run_with(&mut rec))
                .expect("run converges");
            (r, rec)
        };
        let (ra, rec_a) = run(false);
        let (rb, rec_b) = run(true);
        assert_eq!(ra.stats, rb.stats, "stats diverge under recording");
        assert_eq!(
            rec_a.summary(),
            rec_b.summary(),
            "telemetry summary must be mode-invariant"
        );
        // Per-cycle runs emit no event-core rows at all.
        assert!(rec_a.event_windows().is_empty());
        assert_eq!(rec_a.event_core_totals(), (0, 0));
        assert_eq!(rec_a.event_busy_fraction(), None);
        // Event-driven runs account for every unit on every cycle: a unit
        // is either dispatched or skipped, and skipped whole-device jumps
        // charge all units for all jumped cycles.
        assert!(!rec_b.event_windows().is_empty());
        let (dispatched, skipped) = rec_b.event_core_totals();
        let p = &cfg32().placement;
        let units_total = (p.tiles * p.rows_per_tile + 4 * p.num_pes()) as u64;
        assert_eq!(dispatched + skipped, units_total * rb.stats.cycles);
        let busy = rec_b.event_busy_fraction().expect("rows were recorded");
        assert!(
            busy > 0.0 && busy < 1.0,
            "busy fraction {busy} out of range"
        );
    }

    #[test]
    fn unit_mask_visits_ascending_and_tracks_emptiness() {
        let mut m = UnitMask::sized(130);
        assert!(m.is_empty());
        for u in [129, 64, 0, 63, 65] {
            m.set(u);
        }
        let mut seen = Vec::new();
        let visited = m.retain(|u| {
            seen.push(u);
            u == 64 // keep only unit 64
        });
        assert_eq!(visited, 5);
        assert_eq!(seen, [0, 63, 64, 65, 129], "visit order is ascending");
        let mut left = Vec::new();
        m.collect_into(&mut left);
        assert_eq!(left, [64]);
        m.clear(64);
        assert!(m.is_empty());
    }
}
