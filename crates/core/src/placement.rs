//! Vertex-to-PE placement.
//!
//! "The vertex properties are evenly partitioned to all SPDs via a simple
//! hashing upon vertex IDs" (Section III-A). The accelerator is a set of
//! tiles, each an `rows × cols` PE matrix; tiles are stacked vertically in
//! the global mesh (a T-tile machine is a `(T·rows) × cols` grid whose row
//! bands are tiles, joined by the inter-tile NoC links of Figure 7).

use scalagraph_graph::VertexId;

/// Geometry of the PE array and the derived vertex placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Number of tiles (each with a private HBM stack).
    pub tiles: usize,
    /// PE rows per tile (16 in the paper).
    pub rows_per_tile: usize,
    /// PE columns per tile.
    pub cols: usize,
}

impl Placement {
    /// Creates a placement.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(tiles: usize, rows_per_tile: usize, cols: usize) -> Self {
        assert!(tiles > 0 && rows_per_tile > 0 && cols > 0);
        Placement {
            tiles,
            rows_per_tile,
            cols,
        }
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.tiles * self.rows_per_tile * self.cols
    }

    /// PEs per tile.
    pub fn pes_per_tile(&self) -> usize {
        self.rows_per_tile * self.cols
    }

    /// Rows of the global mesh (tiles stacked vertically).
    pub fn global_rows(&self) -> usize {
        self.tiles * self.rows_per_tile
    }

    /// Home PE of vertex `v` as a flat index in `0..num_pes()` — the
    /// round-robin hash of the paper.
    pub fn home_pe(&self, v: VertexId) -> usize {
        v as usize % self.num_pes()
    }

    /// Tile holding `v`'s property.
    pub fn tile_of(&self, v: VertexId) -> usize {
        self.home_pe(v) / self.pes_per_tile()
    }

    /// Row of `v`'s home PE *within its tile*.
    pub fn row_of(&self, v: VertexId) -> usize {
        (self.home_pe(v) % self.pes_per_tile()) / self.cols
    }

    /// Column of `v`'s home PE (columns are global across tiles).
    pub fn col_of(&self, v: VertexId) -> usize {
        self.home_pe(v) % self.cols
    }

    /// The dispatch lane of a destination vertex: its column. The offline
    /// edge re-layout targets this function.
    pub fn lane_of(&self, v: VertexId) -> usize {
        self.col_of(v)
    }

    /// Global mesh node index of a (tile, row-in-tile, col) coordinate.
    pub fn node(&self, tile: usize, row: usize, col: usize) -> usize {
        debug_assert!(tile < self.tiles && row < self.rows_per_tile && col < self.cols);
        (tile * self.rows_per_tile + row) * self.cols + col
    }

    /// Global mesh node of `v`'s home PE.
    pub fn home_node(&self, v: VertexId) -> usize {
        let pe = self.home_pe(v);
        let tile = pe / self.pes_per_tile();
        let rem = pe % self.pes_per_tile();
        self.node(tile, rem / self.cols, rem % self.cols)
    }

    /// Decomposes a global node index into (tile, row-in-tile, col).
    pub fn decompose(&self, node: usize) -> (usize, usize, usize) {
        let col = node % self.cols;
        let grow = node / self.cols;
        (grow / self.rows_per_tile, grow % self.rows_per_tile, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let p = Placement::new(2, 16, 16);
        assert_eq!(p.num_pes(), 512);
        assert_eq!(p.global_rows(), 32);
        assert_eq!(p.pes_per_tile(), 256);
    }

    #[test]
    fn home_is_round_robin_and_even() {
        let p = Placement::new(2, 4, 4);
        let mut counts = vec![0usize; p.num_pes()];
        for v in 0..320u32 {
            counts[p.home_pe(v)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn node_roundtrip() {
        let p = Placement::new(2, 3, 5);
        for tile in 0..2 {
            for row in 0..3 {
                for col in 0..5 {
                    let n = p.node(tile, row, col);
                    assert_eq!(p.decompose(n), (tile, row, col));
                }
            }
        }
    }

    #[test]
    fn home_node_consistent_with_parts() {
        let p = Placement::new(2, 16, 16);
        for v in [0u32, 1, 17, 255, 256, 511, 512, 1000] {
            let n = p.home_node(v);
            let (t, r, c) = p.decompose(n);
            assert_eq!(t, p.tile_of(v));
            assert_eq!(r, p.row_of(v));
            assert_eq!(c, p.col_of(v));
        }
    }

    #[test]
    fn lane_is_column() {
        let p = Placement::new(2, 16, 16);
        assert_eq!(p.lane_of(35), 35 % 16);
    }
}
