//! Cooperative cancellation for in-flight simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a running
//! [`Simulator`](crate::Simulator) and whoever supervises it (a batch
//! runtime's deadline watcher, a Ctrl-C handler, a test). The engine polls
//! the token on every *stepped* cycle — fast-forwarded spans wake at their
//! next event cycle, so a signal is always observed within one stepped
//! cycle of simulated time — and unwinds cooperatively through the normal
//! error path: telemetry is flushed, partial counters are attached to the
//! error, and no state is torn down mid-cycle.
//!
//! Signalling is one-shot and racy-by-design: the *first* signal wins, so
//! a supervisor expiring a deadline and an operator cancelling the same
//! job cannot produce two different outcomes for one run.
//!
//! Wall-clock cancellation is inherently asynchronous — *when* the signal
//! lands in simulated time depends on host scheduling. For a deterministic
//! cutoff use [`ScalaGraphConfig::cycle_limit`](crate::ScalaGraphConfig::cycle_limit)
//! instead, which is measured in simulated cycles and bit-identical
//! between stepped and fast-forward execution.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const RUNNING: u8 = 0;
const CANCELLED: u8 = 1;
const EXPIRED: u8 = 2;

/// Why a [`CancelToken`] was signalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelSignal {
    /// Explicit cancellation ([`CancelToken::cancel`]): the run ends with
    /// [`SimError::Cancelled`](crate::SimError::Cancelled).
    Cancelled,
    /// A wall-clock deadline expired ([`CancelToken::expire`]): the run
    /// ends with [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded).
    DeadlineExpired,
}

/// A shared one-shot cancellation flag, polled by the engine hot loop.
///
/// Cloning shares the underlying flag; signalling any clone signals the
/// run. The fresh (`Default`) state is "running".
///
/// # Example
///
/// ```
/// use scalagraph::{CancelSignal, CancelToken};
///
/// let token = CancelToken::new();
/// assert!(token.signal().is_none());
/// token.cancel();
/// assert_eq!(token.signal(), Some(CancelSignal::Cancelled));
/// // First signal wins: a later deadline expiry cannot override it.
/// token.expire();
/// assert_eq!(token.signal(), Some(CancelSignal::Cancelled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, unsignalled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative cancellation. No-op if the token was already
    /// signalled (first signal wins).
    pub fn cancel(&self) {
        let _ =
            self.state
                .compare_exchange(RUNNING, CANCELLED, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Marks the token's wall-clock deadline as expired. No-op if the
    /// token was already signalled (first signal wins).
    pub fn expire(&self) {
        let _ = self
            .state
            .compare_exchange(RUNNING, EXPIRED, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// The pending signal, if any. This is the poll the engine performs
    /// once per stepped cycle: one relaxed atomic load.
    #[inline]
    pub fn signal(&self) -> Option<CancelSignal> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => Some(CancelSignal::Cancelled),
            EXPIRED => Some(CancelSignal::DeadlineExpired),
            _ => None,
        }
    }

    /// Whether the token has been signalled (by either path).
    pub fn is_signalled(&self) -> bool {
        self.signal().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_unsignalled() {
        let t = CancelToken::new();
        assert!(t.signal().is_none());
        assert!(!t.is_signalled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        u.expire();
        assert_eq!(t.signal(), Some(CancelSignal::DeadlineExpired));
        assert!(t.is_signalled());
    }

    #[test]
    fn first_signal_wins() {
        let t = CancelToken::new();
        t.expire();
        t.cancel();
        assert_eq!(t.signal(), Some(CancelSignal::DeadlineExpired));
        let u = CancelToken::new();
        u.cancel();
        u.expire();
        assert_eq!(u.signal(), Some(CancelSignal::Cancelled));
    }

    #[test]
    fn signalling_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert_eq!(t.signal(), Some(CancelSignal::Cancelled));
    }
}
