//! Device-resident graph layout: per-tile (and per-slice) edge partitions.
//!
//! Each ScalaGraph tile "processes disjoint graph partitions in its private
//! HBM stack" (Section III-A). Under the row- and destination-oriented
//! mappings the partition key is the *destination* tile (the update must
//! land in the destination tile's scratchpads, so keeping its edges there
//! makes all routing intra-tile); under the source-oriented mapping it is
//! the *source* tile. When the vertex properties exceed the on-chip
//! capacity, each tile partition is further sliced by destination interval
//! as in Graphicionado, and slices are processed round-robin.

use crate::config::ScalaGraphConfig;
use crate::mapping::Mapping;
use scalagraph_graph::relayout::degree_aware_relayout;
use scalagraph_graph::{Csr, Edge, GraphRead, Partitioner, VertexId, VertexInterval};

/// The graph as laid out in device memory for a given configuration.
#[derive(Debug, Clone)]
pub struct DeviceGraph {
    /// `slice_tiles[s][t]` is the CSR holding the edges of slice `s` stored
    /// in tile `t` (full vertex id space, subset of edges).
    slice_tiles: Vec<Vec<Csr>>,
    /// Destination intervals of the slices.
    intervals: Vec<VertexInterval>,
    /// Global out-degree per vertex. The engine needs this once per
    /// scheduled vertex (PageRank normalizes by the *global* degree, not
    /// the tile partition's share); resolving it here keeps the hot loop
    /// off the input backing, whose `out_degree` may be a block decode
    /// rather than an offset subtraction (the packed on-disk reader).
    out_degrees: Vec<u32>,
    /// Total edges across all partitions.
    total_edges: usize,
    /// Fraction of edges lane-aligned after the degree-aware re-layout
    /// (1.0 when the re-layout was not applied).
    lane_alignment: f64,
}

impl DeviceGraph {
    /// Partitions and lays out `graph` for `config`.
    ///
    /// Generic over the input backing ([`Csr`] in memory or the packed
    /// on-disk reader): the layout depends only on the edge multiset and
    /// its CSR visitation order, so any two [`GraphRead`] backings holding
    /// the same graph produce bit-identical device layouts — and therefore
    /// bit-identical simulations.
    pub fn prepare<G: GraphRead + ?Sized>(graph: &G, config: &ScalaGraphConfig) -> Self {
        let placement = config.placement;
        // ROM and DOM keep an edge with its *destination's* tile so the
        // update lands in a local scratchpad after intra-tile routing only
        // (routing latency ~6 cycles, matching the paper's 5.9); SOM keeps
        // the natural source-major split.
        let by_destination = config.mapping != Mapping::SourceOriented;

        let partitioner = match Partitioner::new(config.spd_capacity_vertices) {
            Ok(p) => p,
            // Entry points run `ScalaGraphConfig::validate` first, which
            // rejects a zero SPD capacity before we get here.
            Err(e) => panic!("config validated a positive SPD capacity: {e}"),
        };
        let intervals = if graph.num_vertices() == 0 {
            vec![VertexInterval { start: 0, end: 0 }]
        } else {
            partitioner.intervals(graph.num_vertices())
        };

        let tiles = placement.tiles;
        // Bucket edges into (slice, tile).
        let mut buckets: Vec<Vec<Vec<Edge>>> = vec![vec![Vec::new(); tiles]; intervals.len()];
        let slice_of = |dst: VertexId| -> usize {
            // Intervals are sorted and contiguous; binary search by end.
            intervals.partition_point(|iv| iv.end <= dst)
        };
        let mut out_degrees = vec![0u32; graph.num_vertices()];
        graph.for_each_edge(&mut |e| {
            let tile = if by_destination {
                placement.tile_of(e.dst)
            } else {
                placement.tile_of(e.src)
            };
            let slice = slice_of(e.dst);
            out_degrees[e.src as usize] += 1;
            buckets[slice][tile].push(e);
        });

        let mut lane_aligned_edges = 0usize;
        let mut slice_tiles = Vec::with_capacity(intervals.len());
        for per_tile in buckets {
            let mut row = Vec::with_capacity(tiles);
            for edges in per_tile {
                let mut csr = Csr::from_edges(graph.num_vertices(), &edges);
                if config.mapping == Mapping::RowOriented {
                    let stats =
                        degree_aware_relayout(&mut csr, placement.cols, |v| placement.lane_of(v));
                    lane_aligned_edges += stats.lane_aligned;
                }
                row.push(csr);
            }
            slice_tiles.push(row);
        }

        DeviceGraph {
            slice_tiles,
            intervals,
            out_degrees,
            total_edges: graph.num_edges(),
            lane_alignment: if graph.num_edges() == 0 {
                1.0
            } else if config.mapping == Mapping::RowOriented {
                lane_aligned_edges as f64 / graph.num_edges() as f64
            } else {
                1.0
            },
        }
    }

    /// Number of destination slices.
    pub fn num_slices(&self) -> usize {
        self.slice_tiles.len()
    }

    /// Destination interval of slice `s`.
    pub fn interval(&self, s: usize) -> VertexInterval {
        self.intervals[s]
    }

    /// CSR of the edges in slice `s` stored by tile `t`.
    pub fn tile_csr(&self, s: usize, t: usize) -> &Csr {
        &self.slice_tiles[s][t]
    }

    /// Out-degree of `v` within slice `s`, tile `t`.
    pub fn degree_in(&self, s: usize, t: usize, v: VertexId) -> usize {
        self.slice_tiles[s][t].out_degree(v)
    }

    /// Global out-degree of `v` (across all slices and tiles) — equal to
    /// the input graph's `out_degree(v)`, resolved from the device-side
    /// table.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_degrees[v as usize] as usize
    }

    /// Total edge count across all partitions (equals the input graph's).
    pub fn total_edges(&self) -> usize {
        self.total_edges
    }

    /// Lane-alignment fraction achieved by the offline re-layout.
    pub fn lane_alignment(&self) -> f64 {
        self.lane_alignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScalaGraphConfig;
    use scalagraph_graph::generators;

    fn small_config() -> ScalaGraphConfig {
        let mut c = ScalaGraphConfig::with_pes(32);
        c.spd_capacity_vertices = 1_000_000;
        c
    }

    #[test]
    fn partitions_cover_all_edges() {
        let g = Csr::from_edges(300, &generators::uniform(300, 4000, 1));
        let cfg = small_config();
        let d = DeviceGraph::prepare(&g, &cfg);
        assert_eq!(d.num_slices(), 1);
        let sum: usize = (0..cfg.placement.tiles)
            .map(|t| d.tile_csr(0, t).num_edges())
            .sum();
        assert_eq!(sum, g.num_edges());
        assert_eq!(d.total_edges(), g.num_edges());
    }

    #[test]
    fn rom_partitions_by_destination_tile() {
        let g = Csr::from_edges(100, &generators::uniform(100, 1000, 2));
        let cfg = small_config();
        let d = DeviceGraph::prepare(&g, &cfg);
        for t in 0..cfg.placement.tiles {
            for e in d.tile_csr(0, t).edges() {
                assert_eq!(cfg.placement.tile_of(e.dst), t);
            }
        }
        assert!(d.lane_alignment() > 0.0);
    }

    #[test]
    fn dom_partitions_by_destination_tile() {
        let g = Csr::from_edges(100, &generators::uniform(100, 1000, 2));
        let mut cfg = small_config();
        cfg.mapping = Mapping::DestinationOriented;
        let d = DeviceGraph::prepare(&g, &cfg);
        for t in 0..cfg.placement.tiles {
            for e in d.tile_csr(0, t).edges() {
                assert_eq!(cfg.placement.tile_of(e.dst), t);
            }
        }
    }

    #[test]
    fn som_partitions_by_source_tile() {
        let g = Csr::from_edges(100, &generators::uniform(100, 1000, 3));
        let mut cfg = small_config();
        cfg.mapping = Mapping::SourceOriented;
        let d = DeviceGraph::prepare(&g, &cfg);
        for t in 0..cfg.placement.tiles {
            for e in d.tile_csr(0, t).edges() {
                assert_eq!(cfg.placement.tile_of(e.src), t);
            }
        }
        assert_eq!(d.lane_alignment(), 1.0, "no re-layout outside ROM");
    }

    #[test]
    fn slicing_respects_intervals() {
        let g = Csr::from_edges(100, &generators::uniform(100, 2000, 4));
        let mut cfg = small_config();
        cfg.spd_capacity_vertices = 30;
        let d = DeviceGraph::prepare(&g, &cfg);
        assert!(d.num_slices() >= 4);
        let mut total = 0;
        for s in 0..d.num_slices() {
            let iv = d.interval(s);
            for t in 0..cfg.placement.tiles {
                for e in d.tile_csr(s, t).edges() {
                    assert!(iv.contains(e.dst));
                }
                total += d.tile_csr(s, t).num_edges();
            }
        }
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn empty_graph_prepares() {
        let g = Csr::from_edges(0, &[]);
        let d = DeviceGraph::prepare(&g, &small_config());
        assert_eq!(d.total_edges(), 0);
        assert_eq!(d.lane_alignment(), 1.0);
    }

    #[test]
    fn weights_survive_partitioning() {
        let mut list = scalagraph_graph::EdgeList::new(50);
        for i in 0..49u32 {
            list.push(Edge::weighted(i, i + 1, i + 7));
        }
        let g = Csr::from_edge_list(&list);
        let d = DeviceGraph::prepare(&g, &small_config());
        let mut seen = 0;
        for t in 0..2 {
            for e in d.tile_csr(0, t).edges() {
                assert_eq!(e.weight, e.src + 7);
                seen += 1;
            }
        }
        assert_eq!(seen, 49);
    }
}
