//! Cycle-accurate simulator of **ScalaGraph**, the scalable graph
//! accelerator with a distributed on-chip memory hierarchy (HPCA 2022).
//!
//! ScalaGraph replaces the centralized crossbar of earlier graph
//! accelerators — whose hardware cost grows as O(N²) in the PE count —
//! with per-PE scratchpad slices connected by a 2D-mesh NoC (O(N)),
//! plus four co-designs that claw back the efficiency a crossbar provides
//! for free:
//!
//! 1. **Row-oriented mapping** ([`Mapping::RowOriented`]) places each edge
//!    workload in the destination's column so all update routing is
//!    intra-column (Section IV-A).
//! 2. **Update aggregation** ([`aggregate::AggregationBuffer`]) coalesces
//!    same-destination updates inside the routers (Section IV-B).
//! 3. **Degree-aware scheduling** dispatches several low-degree vertices
//!    per cycle so short adjacency lists cannot starve a PE row (Section
//!    IV-C).
//! 4. **Inter-phase pipelining** overlaps the Apply phase with the next
//!    iteration's Scatter for monotonic algorithms (Section IV-D).
//!
//! # Quickstart
//!
//! Prefer [`Simulator::try_run`] in batch settings: it returns a
//! [`SimError`] (with a stall diagnosis from the progress watchdog) instead
//! of panicking, so one wedged configuration cannot kill a sweep. See the
//! [`error`] and [`fault`] modules for the error taxonomy and the seeded
//! fault-injection subsystem.
//!
//! ```
//! use scalagraph::{ScalaGraphConfig, Simulator};
//! use scalagraph_algo::algorithms::PageRank;
//! use scalagraph_graph::{generators, Csr};
//!
//! let graph = Csr::from_edges(1000, &generators::power_law(1000, 8000, 0.8, 42));
//! let config = ScalaGraphConfig::with_pes(64);
//! let clock = config.effective_clock_mhz();
//! let result = Simulator::new(&PageRank::new(3), &graph, config).run();
//! println!("{} cycles, {:.2} GTEPS", result.stats.cycles, result.stats.gteps(clock));
//! ```

// Hot-path code must stay panic-free: recoverable failures are SimError.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod calendar;
pub mod cancel;
pub mod config;
pub mod device;
pub mod error;
pub mod fault;
pub mod mapping;
pub mod placement;
pub mod sim;
pub mod slab;
pub mod stats;

pub use calendar::{Calendar, NextActivity};
pub use cancel::{CancelSignal, CancelToken};
pub use config::{MemoryPreset, ScalaGraphConfig};
pub use device::DeviceGraph;
pub use error::{
    dir_name, HbmChannelSnapshot, NodeSnapshot, SimError, StallSnapshot, StalledUnit, TileSnapshot,
};
pub use fault::{Fault, FaultKind, FaultPlan, LinkDir};
pub use mapping::{CommunicationEstimate, Mapping};
pub use placement::Placement;
pub use sim::{run_on, try_run_on, Simulator, CYCLE_SAFETY_CAP};
pub use stats::{SimResult, SimStats};

/// Time-resolved telemetry: the [`telemetry::Collector`] hook trait the
/// engine emits into, the recording [`telemetry::Recorder`], and its
/// Chrome-trace/CSV/heatmap exporters. Re-exported so downstream crates
/// need no direct dependency on `scalagraph-telemetry`.
pub use scalagraph_telemetry as telemetry;
