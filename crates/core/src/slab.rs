//! Tag-indexed slab for in-flight memory requests.
//!
//! The engine tracks every outstanding fetch by an opaque tag it hands the
//! memory model. The original implementation kept a `HashMap<u64, Vec<…>>`
//! per tile, which hashed on every issue/retire and allocated a fresh
//! payload `Vec` per request — both on the hottest loop in the simulator.
//! [`TagSlab`] replaces that with a free-list of recycled slots: tags are
//! slot indices, lookup is a bounds check, and each slot's buffer survives
//! release so the steady state allocates nothing.

/// A slab of payload buffers indexed by recycled slot ids.
///
/// `acquire` hands out a slot (reusing the lowest-overhead free one) whose
/// buffer is empty but retains its previous capacity; `release` empties the
/// slot and recycles it. Slot ids are dense and stable while live, so they
/// embed directly into memory-request tags.
#[derive(Debug)]
pub struct TagSlab<T> {
    slots: Vec<Vec<T>>,
    live: Vec<bool>,
    free: Vec<u32>,
    occupied: usize,
}

impl<T> Default for TagSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TagSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        TagSlab {
            slots: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            occupied: 0,
        }
    }

    /// Claims a slot and returns its id plus the (empty) payload buffer.
    /// Recycled buffers keep their capacity, so a warmed-up slab acquires
    /// without allocating.
    pub fn acquire(&mut self) -> (u32, &mut Vec<T>) {
        self.occupied += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.live[slot as usize] = true;
                slot
            }
            None => {
                self.slots.push(Vec::new());
                self.live.push(true);
                (self.slots.len() - 1) as u32
            }
        };
        (slot, &mut self.slots[slot as usize])
    }

    /// The payload buffer of a live slot, or `None` for a stale id.
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut Vec<T>> {
        if *self.live.get(slot as usize)? {
            Some(&mut self.slots[slot as usize])
        } else {
            None
        }
    }

    /// Releases a live slot, draining its payload to the caller. The
    /// buffer's allocation stays with the slot for reuse. Returns `None`
    /// for a stale id.
    pub fn release(&mut self, slot: u32) -> Option<std::vec::Drain<'_, T>> {
        let s = slot as usize;
        if !*self.live.get(s)? {
            return None;
        }
        self.live[s] = false;
        self.free.push(slot);
        self.occupied -= 1;
        Some(self.slots[s].drain(..))
    }

    /// Number of live slots.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Whether no slot is live.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles_slots_and_capacity() {
        let mut slab: TagSlab<u64> = TagSlab::new();
        let (a, buf) = slab.acquire();
        buf.extend([1, 2, 3]);
        let (b, _) = slab.acquire();
        assert_ne!(a, b);
        assert_eq!(slab.occupied(), 2);
        let drained: Vec<u64> = slab.release(a).unwrap().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(slab.occupied(), 1);
        // The freed slot id comes back, with its buffer empty but capacity
        // retained.
        let (c, buf) = slab.acquire();
        assert_eq!(c, a);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 3);
        assert!(!slab.is_empty());
    }

    #[test]
    fn stale_ids_are_rejected() {
        let mut slab: TagSlab<u32> = TagSlab::new();
        let (a, _) = slab.acquire();
        assert!(slab.get_mut(a).is_some());
        assert!(slab.release(a).is_some());
        assert!(slab.get_mut(a).is_none(), "released slot is not live");
        assert!(slab.release(a).is_none(), "double release is refused");
        assert!(slab.get_mut(999).is_none(), "out-of-range id is refused");
        assert!(slab.is_empty());
    }

    #[test]
    fn interleaved_traffic_stays_consistent() {
        let mut slab: TagSlab<usize> = TagSlab::new();
        let mut livemap = std::collections::HashMap::new();
        for round in 0..50usize {
            let (slot, buf) = slab.acquire();
            buf.push(round);
            livemap.insert(slot, round);
            if round % 3 == 0 {
                let victim = *livemap.keys().next().unwrap();
                let payload: Vec<usize> = slab.release(victim).unwrap().collect();
                assert_eq!(payload, vec![livemap.remove(&victim).unwrap()]);
            }
        }
        assert_eq!(slab.occupied(), livemap.len());
        for (slot, round) in livemap {
            assert_eq!(slab.get_mut(slot).unwrap().as_slice(), &[round]);
        }
    }
}
