//! Calendar queue for the event-driven stepping core.
//!
//! A [`Calendar`] is a bucketed timer wheel keyed by absolute cycle: each
//! unit posts the cycle of its next possible activity and the engine pops
//! exactly the work due at the current cycle, advancing time
//! event-to-event instead of cycle-by-cycle. The whole-device idle-cycle
//! fast-forward of PR 3 is the degenerate case — "no unit has anything to
//! do until cycle K, and the earliest posted event *is* K".
//!
//! Units announce their wakeup cycles through [`NextActivity`]. Two kinds
//! of unit exist in the machine:
//!
//! * **Pipeline units** (GUs, routers, scratchpads, apply units, EDU
//!   rows): whenever they hold work, their next activity is always the
//!   very next cycle, so the wheel degenerates to a two-slot "active now /
//!   active next cycle" set — the engine keeps those in dense bitmaps (see
//!   `EventCore` in [`crate::sim`]) and reserves the calendar for timers.
//! * **Timer units** (HBM latency queues, delayed/corrupted flits, fetch
//!   stalls, broadcast drains, watchdog and telemetry-window deadlines):
//!   their wakeups land arbitrarily far in the future and go through the
//!   wheel proper.
//!
//! Determinism contract: [`Calendar::pop_due`] yields events in ascending
//! cycle order and FIFO within a cycle, so replaying the same schedule
//! always produces the same visit order — a precondition for the
//! bit-identity gate ("identical `SimStats`, telemetry, and error cycles
//! across stepped / fast-forward / event-driven execution, or it doesn't
//! ship").

use scalagraph_mem::Hbm;
use scalagraph_noc::Mesh;

/// A unit that can announce the next cycle it may do work.
///
/// `now` is the caller's current cycle; implementations return the
/// earliest cycle **strictly after** `now` at which stepping the unit
/// could have any observable effect, or `None` if the unit is fully
/// drained and will never act again without new input. Returning a cycle
/// that is *earlier* than the unit's true next action is allowed (the
/// engine just visits it idly); returning one that is *later* is a
/// correctness bug — the bit-identity suite exists to catch exactly that.
pub trait NextActivity {
    /// Earliest cycle `> now` with possible activity, or `None` if idle
    /// forever.
    fn next_activity(&self, now: u64) -> Option<u64>;
}

/// The HBM model wakes when a queued request can be serviced, an
/// in-flight one retires, a pinned channel unpins, or an unconsumed
/// response is waiting for the frontend.
impl NextActivity for Hbm {
    fn next_activity(&self, now: u64) -> Option<u64> {
        self.next_activity_cycle(now)
    }
}

/// A mesh router network wakes on the next cycle whenever any router
/// pipeline holds a packet; routers have no internal timers.
impl NextActivity for Mesh {
    fn next_activity(&self, now: u64) -> Option<u64> {
        self.next_activity_cycle().map(|c| c.max(now + 1))
    }
}

/// A bucketed timer wheel keyed by absolute cycle.
///
/// Events within `capacity` cycles of the wheel's anchor live in their
/// `cycle % capacity` slot; farther events wait in an overflow list and
/// migrate into the wheel as the anchor advances. All operations are
/// deterministic; nothing in the structure depends on hashing or
/// allocation addresses.
#[derive(Debug, Clone)]
pub struct Calendar<T> {
    /// `wheel[cycle % capacity]` holds the events scheduled within the
    /// horizon, each tagged with its absolute cycle.
    wheel: Vec<Vec<(u64, T)>>,
    /// Events at or beyond `anchor + capacity`.
    overflow: Vec<(u64, T)>,
    /// Every event not yet popped is at a cycle `>= anchor`.
    anchor: u64,
    len: usize,
}

impl<T> Calendar<T> {
    /// A wheel spanning `capacity` cycles ahead of its anchor (clamped to
    /// at least 1). Events beyond the horizon overflow gracefully; the
    /// capacity only tunes how much does.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Calendar {
            wheel: (0..capacity).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            anchor: 0,
            len: 0,
        }
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` for `cycle`. A cycle in the wheel's past is
    /// clamped to the anchor, i.e. "due at the next pop".
    pub fn schedule(&mut self, cycle: u64, item: T) {
        let cycle = cycle.max(self.anchor);
        let capacity = self.wheel.len() as u64;
        if cycle < self.anchor + capacity {
            self.wheel[(cycle % capacity) as usize].push((cycle, item));
        } else {
            self.overflow.push((cycle, item));
        }
        self.len += 1;
    }

    /// The earliest scheduled cycle, or `None` when empty. The engine
    /// uses this as the skip-ahead target once every pipeline unit is
    /// quiescent.
    pub fn next_due(&self) -> Option<u64> {
        let wheel_min = self
            .wheel
            .iter()
            .flat_map(|slot| slot.iter().map(|&(c, _)| c))
            .min();
        let overflow_min = self.overflow.iter().map(|&(c, _)| c).min();
        match (wheel_min, overflow_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops every event due at or before `now` into `out`, in ascending
    /// cycle order and FIFO within a cycle, and advances the anchor to
    /// `now + 1`.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<T>) {
        if now < self.anchor || self.len == 0 {
            self.anchor = self.anchor.max(now + 1);
            self.migrate(now);
            return;
        }
        let capacity = self.wheel.len() as u64;
        let span = now - self.anchor + 1;
        if span < capacity {
            // Walk only the slots the window touches.
            for cycle in self.anchor..=now {
                let slot = &mut self.wheel[(cycle % capacity) as usize];
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].0 == cycle {
                        let (_, item) = slot.remove(i);
                        out.push(item);
                        self.len -= 1;
                    } else {
                        i += 1;
                    }
                }
            }
        } else {
            // A jump past the whole horizon: drain globally. Same-cycle
            // events share a slot, so a stable sort by cycle preserves
            // their FIFO order.
            let mut due: Vec<(u64, T)> = Vec::new();
            for slot in &mut self.wheel {
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].0 <= now {
                        due.push(slot.remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            due.sort_by_key(|&(c, _)| c);
            self.len -= due.len();
            out.extend(due.into_iter().map(|(_, item)| item));
        }
        self.anchor = now + 1;
        self.migrate(now);
        // Overflow events can themselves be due after a huge jump.
        let mut i = 0;
        let mut late: Vec<(u64, T)> = Vec::new();
        while i < self.overflow.len() {
            if self.overflow[i].0 <= now {
                late.push(self.overflow.remove(i));
            } else {
                i += 1;
            }
        }
        if !late.is_empty() {
            late.sort_by_key(|&(c, _)| c);
            self.len -= late.len();
            out.extend(late.into_iter().map(|(_, item)| item));
        }
    }

    /// Moves overflow events that the advanced anchor brought within the
    /// horizon into their wheel slots.
    fn migrate(&mut self, now: u64) {
        let capacity = self.wheel.len() as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let (cycle, _) = self.overflow[i];
            if cycle > now && cycle < self.anchor + capacity {
                let (cycle, item) = self.overflow.remove(i);
                self.wheel[(cycle % capacity) as usize].push((cycle, item));
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalagraph_mem::{HbmConfig, MemRequest};
    use scalagraph_noc::{MeshConfig, Packet};

    #[test]
    fn pops_in_cycle_order_fifo_within_a_cycle() {
        let mut cal = Calendar::new(8);
        cal.schedule(5, "b1");
        cal.schedule(3, "a");
        cal.schedule(5, "b2");
        cal.schedule(9, "c");
        assert_eq!(cal.len(), 4);
        assert_eq!(cal.next_due(), Some(3));
        let mut out = Vec::new();
        cal.pop_due(5, &mut out);
        assert_eq!(out, ["a", "b1", "b2"]);
        assert_eq!(cal.next_due(), Some(9));
        out.clear();
        cal.pop_due(8, &mut out);
        assert!(out.is_empty());
        cal.pop_due(9, &mut out);
        assert_eq!(out, ["c"]);
        assert!(cal.is_empty());
    }

    #[test]
    fn past_schedules_clamp_to_the_anchor() {
        let mut cal = Calendar::new(4);
        let mut out = Vec::new();
        cal.pop_due(10, &mut out);
        cal.schedule(2, "late");
        assert_eq!(cal.next_due(), Some(11), "past event is due at the anchor");
        cal.pop_due(11, &mut out);
        assert_eq!(out, ["late"]);
    }

    #[test]
    fn overflow_migrates_and_survives_giant_jumps() {
        let mut cal = Calendar::new(4);
        cal.schedule(2, 'n');
        cal.schedule(100, 'f');
        cal.schedule(1_000_000, 'g');
        assert_eq!(cal.next_due(), Some(2));
        let mut out = Vec::new();
        // Jump far past the horizon: near and far events drain in order.
        cal.pop_due(500, &mut out);
        assert_eq!(out, ['n', 'f']);
        assert_eq!(cal.next_due(), Some(1_000_000));
        out.clear();
        cal.pop_due(2_000_000, &mut out);
        assert_eq!(out, ['g']);
        assert!(cal.is_empty());
    }

    #[test]
    fn wheel_slots_separate_same_slot_different_lap() {
        // Cycle 1 and cycle 5 share slot 1 in a 4-wide wheel; popping
        // cycle 1 must not release the cycle-5 event.
        let mut cal = Calendar::new(4);
        cal.schedule(1, "lap0");
        cal.schedule(5, "lap1");
        let mut out = Vec::new();
        cal.pop_due(1, &mut out);
        assert_eq!(out, ["lap0"]);
        assert_eq!(cal.next_due(), Some(5));
    }

    #[test]
    fn hbm_posts_its_retirement_cycle() {
        let mut hbm = Hbm::new(HbmConfig {
            channels: 1,
            bytes_per_cycle_per_channel: 64.0,
            latency_cycles: 4,
            queue_depth: 4,
            latency_jitter: 0,
        });
        assert!(hbm.try_request(0, MemRequest::read(1, 64)));
        hbm.step(); // serviced at cycle 1, retires at 5
        let mut cal: Calendar<&str> = Calendar::new(16);
        if let Some(cycle) = hbm.next_activity(hbm.now()) {
            cal.schedule(cycle, "hbm");
        }
        assert_eq!(cal.next_due(), Some(5));
        let mut out = Vec::new();
        cal.pop_due(4, &mut out);
        assert!(out.is_empty(), "nothing due before the retirement");
        cal.pop_due(5, &mut out);
        assert_eq!(out, ["hbm"]);
    }

    #[test]
    fn mesh_posts_next_cycle_while_loaded_and_nothing_when_drained() {
        let mut mesh = Mesh::new(MeshConfig::new(2, 2));
        assert_eq!(mesh.next_activity(7), None);
        mesh.try_inject(
            0,
            Packet {
                dst: 3,
                payload: 1,
                inject_cycle: 0,
            },
        );
        assert_eq!(mesh.next_activity(mesh.now()), Some(mesh.now() + 1));
        while mesh.next_activity(mesh.now()).is_some() {
            mesh.step();
            assert!(mesh.now() < 20, "packet must drain");
        }
        assert!(mesh.pop_delivered(3).is_some());
    }
}
