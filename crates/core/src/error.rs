//! Structured simulation errors and stall diagnostics.
//!
//! Every failure mode the engine can hit — an invalid configuration, a
//! violated bookkeeping invariant, an injected fault the machine cannot
//! absorb, or a wedged pipeline caught by the watchdog — surfaces as a
//! [`SimError`] from [`Simulator::try_run`](crate::Simulator::try_run)
//! instead of a process abort. Watchdog errors embed a [`StallSnapshot`]:
//! the queue depths, outstanding memory tags, and suspected culprit unit at
//! the moment progress stopped, so a failed configuration in a sweep leaves
//! an actionable record rather than a dead batch.

use crate::stats::SimStats;
use std::fmt;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration is internally inconsistent (zero queues, empty PE
    /// array, out-of-range scheduler width, ...).
    ConfigInvalid {
        /// Which constraint failed.
        detail: String,
    },
    /// An internal bookkeeping invariant was violated — a simulator bug,
    /// reported instead of panicking so sweeps can continue.
    ProtocolViolation {
        /// Which invariant broke.
        detail: String,
        /// Cycle at which the violation was detected.
        cycle: u64,
    },
    /// An injected fault produced a state the machine cannot recover from
    /// (for example an update corrupted to an out-of-range vertex id).
    FaultUnrecoverable {
        /// What the fault did.
        detail: String,
        /// Cycle at which the damage was detected.
        cycle: u64,
    },
    /// The watchdog saw no forward progress for the configured window and
    /// found work stuck in the machine: a deadlock (or livelock) between
    /// units.
    DeadlockDetected {
        /// Machine state at expiry.
        snapshot: Box<StallSnapshot>,
    },
    /// The watchdog saw no forward progress for the configured window but
    /// no unit holds stuck work — the phase sequencer itself is wedged.
    WatchdogStall {
        /// Machine state at expiry.
        snapshot: Box<StallSnapshot>,
    },
    /// The run exceeded the global cycle safety cap without converging.
    CycleCapExceeded {
        /// Machine state when the cap was hit.
        snapshot: Box<StallSnapshot>,
    },
    /// The run was cancelled cooperatively via a
    /// [`CancelToken`](crate::CancelToken). The machine unwound cleanly at
    /// a cycle boundary; `partial` holds the counters accumulated so far.
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
        /// Counters accumulated up to (and including) `cycle`.
        partial: Box<SimStats>,
    },
    /// The run hit a deadline before converging: either the deterministic
    /// [`cycle_limit`](crate::ScalaGraphConfig::cycle_limit) (always
    /// observed on exactly that cycle, bit-identically between stepped and
    /// fast-forward execution) or a wall-clock deadline expiring the run's
    /// [`CancelToken`](crate::CancelToken).
    DeadlineExceeded {
        /// Cycle at which the deadline was observed.
        cycle: u64,
        /// Counters accumulated up to (and including) `cycle`.
        partial: Box<SimStats>,
    },
}

impl SimError {
    /// The diagnostic snapshot, for the watchdog/deadlock/cap variants.
    pub fn snapshot(&self) -> Option<&StallSnapshot> {
        match self {
            SimError::DeadlockDetected { snapshot }
            | SimError::WatchdogStall { snapshot }
            | SimError::CycleCapExceeded { snapshot } => Some(snapshot),
            _ => None,
        }
    }

    /// The counters an interrupted run accumulated before it was cancelled
    /// or hit its deadline; `None` for every other variant.
    pub fn partial_stats(&self) -> Option<&SimStats> {
        match self {
            SimError::Cancelled { partial, .. } | SimError::DeadlineExceeded { partial, .. } => {
                Some(partial)
            }
            _ => None,
        }
    }

    pub(crate) fn config(detail: impl Into<String>) -> Self {
        SimError::ConfigInvalid {
            detail: detail.into(),
        }
    }

    pub(crate) fn protocol(detail: impl Into<String>, cycle: u64) -> Self {
        SimError::ProtocolViolation {
            detail: detail.into(),
            cycle,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ConfigInvalid { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            SimError::ProtocolViolation { detail, cycle } => {
                write!(f, "protocol violation at cycle {cycle}: {detail}")
            }
            SimError::FaultUnrecoverable { detail, cycle } => {
                write!(f, "unrecoverable fault at cycle {cycle}: {detail}")
            }
            SimError::DeadlockDetected { snapshot } => {
                write!(
                    f,
                    "deadlock detected at cycle {}: no forward progress for {} cycles, suspect {}",
                    snapshot.cycle, snapshot.stalled_for, snapshot.suspect
                )
            }
            SimError::WatchdogStall { snapshot } => {
                write!(
                    f,
                    "watchdog stall at cycle {}: no forward progress for {} cycles, suspect {}",
                    snapshot.cycle, snapshot.stalled_for, snapshot.suspect
                )
            }
            SimError::CycleCapExceeded { snapshot } => {
                write!(
                    f,
                    "simulation exceeded the cycle safety cap at cycle {}",
                    snapshot.cycle
                )
            }
            SimError::Cancelled { cycle, .. } => {
                write!(f, "simulation cancelled at cycle {cycle}")
            }
            SimError::DeadlineExceeded { cycle, .. } => {
                write!(f, "simulation deadline exceeded at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The hardware unit the watchdog blames for a stall: the unit nearest the
/// head of the stuck dependency chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StalledUnit {
    /// An HBM pseudo-channel holding outstanding requests that never
    /// complete.
    HbmChannel {
        /// Tile owning the channel.
        tile: usize,
        /// Pseudo-channel index within the tile.
        channel: usize,
    },
    /// A tile frontend (VPref/EPref) with fetches pending or in flight.
    Prefetcher {
        /// Tile index.
        tile: usize,
    },
    /// A per-row dispatching unit with fetched segments it cannot issue.
    Dispatcher {
        /// Tile index.
        tile: usize,
        /// Row within the tile.
        row: usize,
    },
    /// A graph unit whose input queue cannot drain.
    GraphUnit {
        /// Global PE index.
        node: usize,
    },
    /// A router output port whose buffer cannot drain (a blocked or
    /// zero-credit link).
    RouterPort {
        /// Global PE index.
        node: usize,
        /// Output direction (see [`dir_name`]).
        dir: usize,
    },
    /// A scratchpad with an apply queue that cannot drain.
    Scratchpad {
        /// Global PE index.
        node: usize,
    },
    /// No unit holds visible work; the sequencer itself is wedged.
    Unknown,
}

/// Human-readable name of a router output direction index.
pub fn dir_name(dir: usize) -> &'static str {
    match dir {
        0 => "eject",
        1 => "north",
        2 => "south",
        3 => "west",
        4 => "east",
        _ => "?",
    }
}

impl fmt::Display for StalledUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StalledUnit::HbmChannel { tile, channel } => {
                write!(f, "HBM pseudo-channel {channel} of tile {tile}")
            }
            StalledUnit::Prefetcher { tile } => write!(f, "prefetcher of tile {tile}"),
            StalledUnit::Dispatcher { tile, row } => {
                write!(f, "dispatcher row {row} of tile {tile}")
            }
            StalledUnit::GraphUnit { node } => write!(f, "graph unit of PE {node}"),
            StalledUnit::RouterPort { node, dir } => {
                write!(f, "router port {} of PE {node}", dir_name(dir))
            }
            StalledUnit::Scratchpad { node } => write!(f, "scratchpad of PE {node}"),
            StalledUnit::Unknown => write!(f, "no unit (sequencer wedge)"),
        }
    }
}

/// One HBM pseudo-channel's state inside a [`TileSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmChannelSnapshot {
    /// Pseudo-channel index.
    pub channel: usize,
    /// Requests pending or in flight on the channel.
    pub outstanding: usize,
    /// Whether an injected stall is currently pinning the channel.
    pub stalled: bool,
}

/// One tile frontend's queue depths at stall time.
#[derive(Debug, Clone, PartialEq)]
pub struct TileSnapshot {
    /// Tile index.
    pub tile: usize,
    /// Actives awaiting a vertex-record fetch.
    pub vpref_pending: usize,
    /// Record-line fetches in flight.
    pub vpref_inflight: usize,
    /// Record-ready vertices whose edge lines are being issued.
    pub records_ready: usize,
    /// Edge-line fetches in flight.
    pub line_inflight: usize,
    /// Activations awaiting active-list write-back.
    pub write_backlog: u64,
    /// Per-row dispatch queue depths.
    pub row_queue_depths: Vec<usize>,
    /// Per-pseudo-channel memory state.
    pub hbm_channels: Vec<HbmChannelSnapshot>,
    /// Outstanding fetch tags (truncated to the first few).
    pub outstanding_tags: Vec<u64>,
}

impl TileSnapshot {
    /// Whether this tile holds any stuck scatter-side work.
    pub fn has_work(&self) -> bool {
        self.vpref_pending > 0
            || self.vpref_inflight > 0
            || self.records_ready > 0
            || self.line_inflight > 0
            || self.row_queue_depths.iter().any(|&d| d > 0)
    }
}

/// One PE's queue depths at stall time; only PEs holding work are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Global PE index.
    pub node: usize,
    /// GU input queue depth.
    pub gu_queue: usize,
    /// Router output buffer depths, indexed eject/north/south/west/east.
    pub out_depths: [usize; 5],
    /// Apply queue depth.
    pub apply_queue: usize,
}

/// The machine state embedded in a watchdog or deadlock error.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSnapshot {
    /// Cycle at which the watchdog expired.
    pub cycle: u64,
    /// Cycles since the last observed forward progress.
    pub stalled_for: u64,
    /// Phase the sequencer was in ("Scatter" or "Apply").
    pub phase: &'static str,
    /// The unit blamed for the stall.
    pub suspect: StalledUnit,
    /// Per-tile frontend state.
    pub tiles: Vec<TileSnapshot>,
    /// Per-PE state, restricted to PEs holding work.
    pub busy_nodes: Vec<NodeSnapshot>,
    /// Vertices awaiting apply.
    pub apply_inflight: usize,
    /// Pending DOM replica broadcasts.
    pub broadcast_backlog: u64,
    /// Remaining frontend fetch-stall cycles.
    pub fetch_stall: u64,
    /// Fault-delayed flits parked between routers.
    pub delayed_flits: usize,
}

impl StallSnapshot {
    /// Whether the snapshot recorded no stuck work anywhere (a sequencer
    /// wedge rather than a unit deadlock).
    pub fn is_empty(&self) -> bool {
        self.tiles.iter().all(|t| !t.has_work())
            && self.busy_nodes.is_empty()
            && self.apply_inflight == 0
            && self.delayed_flits == 0
    }
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stall snapshot @ cycle {} ({} phase, {} cycles without progress): suspect {}",
            self.cycle, self.phase, self.stalled_for, self.suspect
        )?;
        writeln!(
            f,
            "  apply_inflight={} broadcast_backlog={} fetch_stall={} delayed_flits={}",
            self.apply_inflight, self.broadcast_backlog, self.fetch_stall, self.delayed_flits
        )?;
        for t in &self.tiles {
            writeln!(
                f,
                "  tile {}: vpend={} vinfl={} rec={} linfl={} wb={} rows={:?} tags={:?}",
                t.tile,
                t.vpref_pending,
                t.vpref_inflight,
                t.records_ready,
                t.line_inflight,
                t.write_backlog,
                t.row_queue_depths,
                t.outstanding_tags,
            )?;
            for ch in &t.hbm_channels {
                if ch.outstanding > 0 || ch.stalled {
                    writeln!(
                        f,
                        "    hbm ch {}: outstanding={}{}",
                        ch.channel,
                        ch.outstanding,
                        if ch.stalled { " STALLED" } else { "" }
                    )?;
                }
            }
        }
        for n in &self.busy_nodes {
            writeln!(
                f,
                "  pe {}: gu={} out={:?} apply={}",
                n.node, n.gu_queue, n.out_depths, n.apply_queue
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> StallSnapshot {
        StallSnapshot {
            cycle: 1000,
            stalled_for: 500,
            phase: "Scatter",
            suspect: StalledUnit::RouterPort { node: 3, dir: 2 },
            tiles: vec![TileSnapshot {
                tile: 0,
                vpref_pending: 0,
                vpref_inflight: 0,
                records_ready: 0,
                line_inflight: 2,
                write_backlog: 0,
                row_queue_depths: vec![0, 4],
                hbm_channels: vec![HbmChannelSnapshot {
                    channel: 0,
                    outstanding: 2,
                    stalled: true,
                }],
                outstanding_tags: vec![7, 9],
            }],
            busy_nodes: vec![NodeSnapshot {
                node: 3,
                gu_queue: 16,
                out_depths: [0, 0, 24, 0, 0],
                apply_queue: 0,
            }],
            apply_inflight: 0,
            broadcast_backlog: 0,
            fetch_stall: 0,
            delayed_flits: 0,
        }
    }

    #[test]
    fn display_summarizes_the_stall() {
        let err = SimError::DeadlockDetected {
            snapshot: Box::new(snap()),
        };
        let msg = err.to_string();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("router port south of PE 3"), "{msg}");
        let detail = err.snapshot().unwrap().to_string();
        assert!(detail.contains("tile 0"), "{detail}");
        assert!(detail.contains("STALLED"), "{detail}");
    }

    #[test]
    fn snapshot_emptiness_reflects_recorded_work() {
        assert!(!snap().is_empty());
        let empty = StallSnapshot {
            tiles: vec![],
            busy_nodes: vec![],
            ..snap()
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn config_errors_render_their_detail() {
        let err = SimError::config("GU queue must be non-empty");
        assert_eq!(
            err.to_string(),
            "invalid configuration: GU queue must be non-empty"
        );
        assert!(err.snapshot().is_none());
    }

    #[test]
    fn interrupted_variants_carry_partial_counters() {
        let mut stats = SimStats::default();
        stats.cycles = 123;
        let err = SimError::DeadlineExceeded {
            cycle: 123,
            partial: Box::new(stats),
        };
        assert_eq!(err.to_string(), "simulation deadline exceeded at cycle 123");
        assert_eq!(err.partial_stats().map(|s| s.cycles), Some(123));
        assert!(err.snapshot().is_none());
        let cancelled = SimError::Cancelled {
            cycle: 7,
            partial: Box::new(SimStats::default()),
        };
        assert!(cancelled.to_string().contains("cancelled at cycle 7"));
        assert!(cancelled.partial_stats().is_some());
    }

    #[test]
    fn direction_names_cover_all_ports() {
        assert_eq!(dir_name(0), "eject");
        assert_eq!(dir_name(4), "east");
        assert_eq!(dir_name(9), "?");
    }
}
