//! Workload-to-PE mapping strategies (Section IV-A).
//!
//! Where an edge workload executes determines how far its update must
//! travel. The paper compares three mappings (Figure 10, Table II):
//!
//! * **Source-oriented** (SOM): all edges of a vertex execute at the PE
//!   holding the source's property; updates route 2D to the destination's
//!   home PE — O(M·√K) Scatter traffic.
//! * **Destination-oriented** (DOM): edges execute at the destination's
//!   home PE against a local replica of every source — zero Scatter
//!   traffic, but Apply must refresh replicas in all K PEs: O(N·K), plus
//!   O(N·K) extra storage and off-chip CSR duplication.
//! * **Row-oriented** (ROM, ScalaGraph's contribution): the edge executes
//!   in the destination's *column* (and tile), at the source's row — all
//!   routing is intra-column, halving Scatter traffic versus SOM while
//!   keeping Apply local.

/// The workload-to-PE mapping used by a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mapping {
    /// Source-oriented mapping (Graphicionado, AccuGraph, GraphDynS).
    SourceOriented,
    /// Destination-oriented mapping (GraphP, GraphQ-style).
    DestinationOriented,
    /// Row-oriented mapping (ScalaGraph, the default).
    #[default]
    RowOriented,
}

impl Mapping {
    /// All mappings, in the order of Figure 17's bars.
    pub const ALL: [Mapping; 3] = [
        Mapping::SourceOriented,
        Mapping::DestinationOriented,
        Mapping::RowOriented,
    ];

    /// Short label used in experiment output ("SOM"/"DOM"/"ROM").
    pub fn label(&self) -> &'static str {
        match self {
            Mapping::SourceOriented => "SOM",
            Mapping::DestinationOriented => "DOM",
            Mapping::RowOriented => "ROM",
        }
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Analytic per-iteration communication volumes of Table II, in units of
/// "vertex-update traversals".
///
/// `k` is the PE count, `n` the number of active vertices, and `m` the
/// number of active edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunicationEstimate {
    /// On-chip Scatter-phase traffic.
    pub scatter: f64,
    /// On-chip Apply-phase traffic.
    pub apply: f64,
    /// Off-chip traffic in element units.
    pub offchip: f64,
}

impl Mapping {
    /// Table II's asymptotic communication estimate for this mapping.
    pub fn estimate(&self, k: usize, n: u64, m: u64) -> CommunicationEstimate {
        let sqrt_k = (k as f64).sqrt();
        match self {
            Mapping::SourceOriented => CommunicationEstimate {
                scatter: m as f64 * sqrt_k,
                apply: n as f64,
                offchip: (n + m) as f64,
            },
            Mapping::DestinationOriented => CommunicationEstimate {
                scatter: 0.0,
                apply: (n as f64) * (k as f64),
                offchip: n as f64 * k as f64 + m as f64,
            },
            Mapping::RowOriented => CommunicationEstimate {
                scatter: m as f64 * sqrt_k / 2.0,
                apply: n as f64,
                offchip: (n + m) as f64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Mapping::RowOriented.label(), "ROM");
        assert_eq!(Mapping::default(), Mapping::RowOriented);
        assert_eq!(Mapping::SourceOriented.to_string(), "SOM");
    }

    #[test]
    fn rom_scatter_is_half_of_som() {
        let som = Mapping::SourceOriented.estimate(256, 1000, 10_000);
        let rom = Mapping::RowOriented.estimate(256, 1000, 10_000);
        assert!((rom.scatter - som.scatter / 2.0).abs() < 1e-9);
        assert_eq!(rom.apply, som.apply);
    }

    #[test]
    fn dom_apply_grows_with_k() {
        let d256 = Mapping::DestinationOriented.estimate(256, 1000, 10_000);
        let d512 = Mapping::DestinationOriented.estimate(512, 1000, 10_000);
        assert_eq!(d256.scatter, 0.0);
        assert!(d512.apply > d256.apply);
        assert!(d512.offchip > d256.offchip);
    }

    #[test]
    fn dom_total_exceeds_rom_when_k_large_and_degree_low() {
        // "When K is large, the amount of communication incurred may exceed
        // that incurred by the source-oriented mapping."
        let k = 4096;
        let n = 100_000u64;
        let m = 300_000u64; // avg degree 3
        let dom = Mapping::DestinationOriented.estimate(k, n, m);
        let rom = Mapping::RowOriented.estimate(k, n, m);
        assert!(
            dom.scatter + dom.apply > rom.scatter + rom.apply,
            "dom {} rom {}",
            dom.scatter + dom.apply,
            rom.scatter + rom.apply
        );
    }
}
