//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is a declarative schedule of hardware faults — link
//! outages, lossy or slow links, stalled HBM pseudo-channels, payload
//! corruption — attached to a configuration via
//! [`ScalaGraphConfig::fault_plan`](crate::ScalaGraphConfig::fault_plan).
//! The engine consults a [`FaultInjector`] built from the plan at its NoC
//! and memory hooks; all randomness comes from one xorshift stream seeded
//! by the plan, so a given plan perturbs a run identically every time.
//! With no plan attached the hooks are never exercised and the simulation
//! is bit-identical to an un-instrumented run.

/// A mesh link, named by the PE it leaves and the direction it heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Towards the row above.
    North,
    /// Towards the row below.
    South,
    /// Towards the column to the left.
    West,
    /// Towards the column to the right.
    East,
}

impl LinkDir {
    /// The engine's router output-port index for this direction.
    pub fn port_index(self) -> usize {
        match self {
            LinkDir::North => 1,
            LinkDir::South => 2,
            LinkDir::West => 3,
            LinkDir::East => 4,
        }
    }
}

/// What a fault does while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link carries nothing: zero credit, full back-pressure.
    LinkDown {
        /// PE the link leaves.
        node: usize,
        /// Direction the link heads.
        dir: LinkDir,
    },
    /// Each flit crossing the link is silently dropped with probability
    /// `1/one_in` (`one_in <= 1` drops every flit).
    LinkDrop {
        /// PE the link leaves.
        node: usize,
        /// Direction the link heads.
        dir: LinkDir,
        /// Drop one flit in this many.
        one_in: u32,
    },
    /// Each flit crossing the link is held for `cycles` extra cycles
    /// before continuing (a degraded or retrained link).
    LinkDelay {
        /// PE the link leaves.
        node: usize,
        /// Direction the link heads.
        dir: LinkDir,
        /// Extra cycles per flit.
        cycles: u64,
    },
    /// Pins an HBM pseudo-channel for `cycles` starting at the fault's
    /// activation cycle: no service, no retirement, no new requests.
    HbmStall {
        /// Tile owning the channel.
        tile: usize,
        /// Pseudo-channel index within the tile.
        channel: usize,
        /// Stall duration in cycles (`u64::MAX` pins it forever).
        cycles: u64,
    },
    /// Corrupts the destination id of flits crossing the link with
    /// probability `1/one_in`. With `out_of_range` the corrupted id points
    /// past the vertex array (the machine must surface
    /// [`SimError::FaultUnrecoverable`](crate::SimError::FaultUnrecoverable));
    /// without it the id stays valid and the run completes with wrong-but-
    /// well-formed results, as real silent data corruption would.
    CorruptPayload {
        /// PE the link leaves.
        node: usize,
        /// Direction the link heads.
        dir: LinkDir,
        /// Corrupt one flit in this many.
        one_in: u32,
        /// Whether the corrupted id leaves the valid vertex range.
        out_of_range: bool,
    },
}

/// One scheduled fault: a kind plus an active window in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// First cycle the fault is active.
    pub from_cycle: u64,
    /// First cycle the fault is no longer active (`u64::MAX` = permanent).
    pub until_cycle: u64,
}

impl Fault {
    /// A permanent fault, active from cycle 0.
    pub fn new(kind: FaultKind) -> Self {
        Fault {
            kind,
            from_cycle: 0,
            until_cycle: u64::MAX,
        }
    }

    /// Restricts the fault to `[from, until)` cycles.
    pub fn window(mut self, from: u64, until: u64) -> Self {
        self.from_cycle = from;
        self.until_cycle = until;
        self
    }

    /// Whether the fault is active at `cycle`.
    pub fn active(&self, cycle: u64) -> bool {
        cycle >= self.from_cycle && cycle < self.until_cycle
    }
}

/// A deterministic schedule of faults, attached to a configuration.
///
/// # Example
///
/// ```
/// use scalagraph::fault::{Fault, FaultKind, FaultPlan, LinkDir};
///
/// let plan = FaultPlan::seeded(7)
///     .with(Fault::new(FaultKind::LinkDelay { node: 5, dir: LinkDir::South, cycles: 3 }))
///     .with(Fault::new(FaultKind::HbmStall { tile: 0, channel: 2, cycles: 100 }).window(50, 51));
/// assert_eq!(plan.faults.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the injector's xorshift stream (probabilistic faults).
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What the engine must do to one flit at a faulty link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitAction {
    /// Discard the flit.
    Drop,
    /// Hold the flit for this many extra cycles.
    Delay(u64),
    /// Corrupt the flit's destination id.
    Corrupt {
        /// Whether the corrupted id leaves the valid vertex range.
        out_of_range: bool,
    },
}

/// Runtime state of a [`FaultPlan`]: the seeded RNG plus one-shot
/// activation tracking for HBM stalls.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: u64,
    hbm_applied: Vec<bool>,
}

impl FaultInjector {
    /// Builds an injector; returns `None` for an empty plan so the engine
    /// can skip the hooks entirely.
    pub fn new(plan: FaultPlan) -> Option<Self> {
        if plan.is_empty() {
            return None;
        }
        let n = plan.faults.len();
        Some(FaultInjector {
            // Zero would freeze the xorshift stream.
            rng: plan.seed | 1,
            plan,
            hbm_applied: vec![false; n],
        })
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn hits(&mut self, one_in: u32) -> bool {
        one_in <= 1 || self.next_rand().is_multiple_of(u64::from(one_in))
    }

    /// HBM stalls whose window opens by `cycle` and which have not yet been
    /// applied: `(tile, channel, stall_cycles)`.
    pub fn hbm_stalls_at(&mut self, cycle: u64) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for (i, f) in self.plan.faults.iter().enumerate() {
            if self.hbm_applied[i] || !f.active(cycle) {
                continue;
            }
            if let FaultKind::HbmStall {
                tile,
                channel,
                cycles,
            } = f.kind
            {
                self.hbm_applied[i] = true;
                out.push((tile, channel, cycles));
            }
        }
        out
    }

    /// The earliest cycle strictly after `now` at which a not-yet-applied
    /// HBM stall fault activates, if any. Lets a fast-forwarding engine
    /// bound its jump so [`hbm_stalls_at`](Self::hbm_stalls_at) is still
    /// consulted on exactly the cycles it would have been when stepping.
    pub fn next_hbm_stall_cycle(&self, now: u64) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        for (i, f) in self.plan.faults.iter().enumerate() {
            if self.hbm_applied[i] || !matches!(f.kind, FaultKind::HbmStall { .. }) {
                continue;
            }
            // The fault fires on the first stepped cycle inside its window.
            let fire = f.from_cycle.max(now + 1);
            if fire < f.until_cycle {
                earliest = Some(earliest.map_or(fire, |e| e.min(fire)));
            }
        }
        earliest
    }

    /// Whether the link leaving `node` towards port `dir` is down at
    /// `cycle`.
    pub fn link_blocked(&self, cycle: u64, node: usize, dir: usize) -> bool {
        self.plan.faults.iter().any(|f| {
            f.active(cycle)
                && matches!(f.kind, FaultKind::LinkDown { node: n, dir: d }
                    if n == node && d.port_index() == dir)
        })
    }

    /// The action to apply to the next flit crossing the link leaving
    /// `node` towards port `dir` at `cycle`, if any. The first matching
    /// active fault wins; probabilistic faults consult the seeded stream
    /// per flit.
    pub fn flit_action(&mut self, cycle: u64, node: usize, dir: usize) -> Option<FlitAction> {
        for i in 0..self.plan.faults.len() {
            let f = self.plan.faults[i];
            if !f.active(cycle) {
                continue;
            }
            match f.kind {
                FaultKind::LinkDrop {
                    node: n,
                    dir: d,
                    one_in,
                } if n == node && d.port_index() == dir && self.hits(one_in) => {
                    return Some(FlitAction::Drop);
                }
                FaultKind::LinkDelay {
                    node: n,
                    dir: d,
                    cycles,
                } if n == node && d.port_index() == dir => {
                    return Some(FlitAction::Delay(cycles));
                }
                FaultKind::CorruptPayload {
                    node: n,
                    dir: d,
                    one_in,
                    out_of_range,
                } if n == node && d.port_index() == dir && self.hits(one_in) => {
                    return Some(FlitAction::Corrupt { out_of_range });
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_builds_no_injector() {
        assert!(FaultInjector::new(FaultPlan::seeded(1)).is_none());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn windows_gate_activity() {
        let f = Fault::new(FaultKind::LinkDown {
            node: 0,
            dir: LinkDir::East,
        })
        .window(10, 20);
        assert!(!f.active(9));
        assert!(f.active(10));
        assert!(f.active(19));
        assert!(!f.active(20));
    }

    #[test]
    fn link_down_blocks_only_its_link() {
        let plan = FaultPlan::seeded(1).with(Fault::new(FaultKind::LinkDown {
            node: 3,
            dir: LinkDir::South,
        }));
        let inj = FaultInjector::new(plan).unwrap();
        assert!(inj.link_blocked(0, 3, LinkDir::South.port_index()));
        assert!(!inj.link_blocked(0, 3, LinkDir::North.port_index()));
        assert!(!inj.link_blocked(0, 4, LinkDir::South.port_index()));
    }

    #[test]
    fn hbm_stalls_fire_once() {
        let plan = FaultPlan::seeded(1).with(
            Fault::new(FaultKind::HbmStall {
                tile: 1,
                channel: 4,
                cycles: 99,
            })
            .window(5, u64::MAX),
        );
        let mut inj = FaultInjector::new(plan).unwrap();
        assert!(inj.hbm_stalls_at(4).is_empty());
        assert_eq!(inj.hbm_stalls_at(5), vec![(1, 4, 99)]);
        assert!(inj.hbm_stalls_at(6).is_empty(), "one-shot activation");
    }

    #[test]
    fn next_hbm_stall_cycle_tracks_unapplied_faults() {
        let plan = FaultPlan::seeded(1)
            .with(
                Fault::new(FaultKind::HbmStall {
                    tile: 0,
                    channel: 0,
                    cycles: 9,
                })
                .window(5, 8),
            )
            .with(
                Fault::new(FaultKind::HbmStall {
                    tile: 0,
                    channel: 1,
                    cycles: 9,
                })
                .window(30, 40),
            )
            .with(Fault::new(FaultKind::LinkDown {
                node: 0,
                dir: LinkDir::East,
            }));
        let mut inj = FaultInjector::new(plan).unwrap();
        assert_eq!(inj.next_hbm_stall_cycle(0), Some(5));
        assert_eq!(inj.next_hbm_stall_cycle(6), Some(7), "window still open");
        assert_eq!(inj.next_hbm_stall_cycle(7), Some(30), "window closed");
        let _ = inj.hbm_stalls_at(5);
        assert_eq!(inj.next_hbm_stall_cycle(0), Some(30), "applied is spent");
        let _ = inj.hbm_stalls_at(30);
        assert_eq!(inj.next_hbm_stall_cycle(0), None);
    }

    #[test]
    fn drop_probability_is_deterministic_per_seed() {
        let plan = |seed| {
            FaultPlan::seeded(seed).with(Fault::new(FaultKind::LinkDrop {
                node: 0,
                dir: LinkDir::East,
                one_in: 3,
            }))
        };
        let sample = |seed| -> Vec<bool> {
            let mut inj = FaultInjector::new(plan(seed)).unwrap();
            (0..64)
                .map(|c| inj.flit_action(c, 0, LinkDir::East.port_index()).is_some())
                .collect()
        };
        let a = sample(11);
        assert_eq!(a, sample(11), "same seed, same schedule");
        assert_ne!(a, sample(12), "different seed, different schedule");
        let drops = a.iter().filter(|&&d| d).count();
        assert!(drops > 0 && drops < 64, "one-in-3 must be partial: {drops}");
    }

    #[test]
    fn always_drop_and_delay_need_no_rng() {
        let plan = FaultPlan::seeded(1)
            .with(Fault::new(FaultKind::LinkDrop {
                node: 0,
                dir: LinkDir::West,
                one_in: 1,
            }))
            .with(Fault::new(FaultKind::LinkDelay {
                node: 1,
                dir: LinkDir::West,
                cycles: 7,
            }));
        let mut inj = FaultInjector::new(plan).unwrap();
        for c in 0..10 {
            assert_eq!(
                inj.flit_action(c, 0, LinkDir::West.port_index()),
                Some(FlitAction::Drop)
            );
            assert_eq!(
                inj.flit_action(c, 1, LinkDir::West.port_index()),
                Some(FlitAction::Delay(7))
            );
            assert_eq!(inj.flit_action(c, 2, LinkDir::West.port_index()), None);
        }
    }
}
