//! Accelerator configuration.

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::mapping::Mapping;
use crate::placement::Placement;
use crate::sim::CYCLE_SAFETY_CAP;
use scalagraph_hwmodel::{max_frequency_mhz, InterconnectKind, OPERATING_CLOCK_MHZ};
use scalagraph_mem::HbmConfig;

/// Default watchdog window: generously above any legitimate quiet period
/// (HBM round trips are tens of cycles, fetch stalls are counted as
/// progress), far below the global cycle cap.
pub const DEFAULT_WATCHDOG_STALL_CYCLES: u64 = 25_000;

/// Off-chip memory preset for a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryPreset {
    /// One U280 HBM2 stack per tile (the paper's hardware: 230 GB/s,
    /// 16 pseudo-channels each).
    U280,
    /// Unlimited bandwidth (the >1,024-PE scalability study of Section
    /// V-E).
    Unlimited,
    /// Explicit per-tile memory configuration.
    Custom(HbmConfig),
}

/// Full configuration of a ScalaGraph instance.
///
/// Defaults mirror the paper's ScalaGraph-512: two tiles of 16×16 PEs, a
/// 16-register aggregation pipeline, 16-way degree-aware scheduling,
/// inter-phase pipelining on, row-oriented mapping, 250 MHz.
///
/// # Example
///
/// ```
/// use scalagraph::ScalaGraphConfig;
///
/// let cfg = ScalaGraphConfig::scalagraph_512();
/// assert_eq!(cfg.placement.num_pes(), 512);
/// let small = ScalaGraphConfig::with_pes(128);
/// assert_eq!(small.placement.num_pes(), 128);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalaGraphConfig {
    /// PE array geometry.
    pub placement: Placement,
    /// Workload-to-PE mapping (Section IV-A).
    pub mapping: Mapping,
    /// Registers in each RU's update-aggregation pipeline (Section IV-B);
    /// 0 disables aggregation (pure FIFO).
    pub aggregation_registers: usize,
    /// Maximum distinct low-degree vertices the degree-aware scheduler may
    /// dispatch in one cycle (Section IV-C); 1 disables the mechanism.
    pub max_scheduled_vertices: usize,
    /// Inter-phase pipelining (Section IV-D). Automatically disabled at run
    /// time for non-monotonic algorithms regardless of this flag.
    pub inter_phase_pipelining: bool,
    /// Vertices whose properties fit on-chip simultaneously (total
    /// scratchpad capacity); larger graphs are sliced (Section III-A).
    pub spd_capacity_vertices: usize,
    /// Off-chip memory per tile.
    pub memory: MemoryPreset,
    /// Operating clock in MHz; `None` derives it from the hardware model
    /// (min of 250 MHz and the mesh's synthesizable maximum).
    pub clock_mhz: Option<f64>,
    /// Updates one NoC link carries per cycle. FPGA NoC links are wide
    /// (256-bit) buses, so one link transfer moves up to four 8-byte
    /// vertex updates; the update-aggregation pipeline keeps this width
    /// sufficient (without aggregation the columns congest, Figure 18).
    pub link_width: usize,
    /// GU input queue depth, in edge workloads.
    pub gu_queue_capacity: usize,
    /// Router output queue depth, in updates.
    pub router_queue_capacity: usize,
    /// Progress watchdog window in cycles: if no unit makes forward
    /// progress for this long, [`Simulator::try_run`](crate::Simulator::try_run)
    /// returns a [`SimError::DeadlockDetected`]/[`SimError::WatchdogStall`]
    /// with a diagnostic snapshot. `0` disables the watchdog (the global
    /// cycle safety cap still applies).
    pub watchdog_stall_cycles: u64,
    /// Optional deterministic fault schedule (see [`crate::fault`]).
    /// `None` leaves every fault hook cold; results are then bit-identical
    /// to a build without the subsystem.
    pub fault_plan: Option<FaultPlan>,
    /// Idle-cycle fast-forward: when every unit is quiescent and the
    /// machine is only waiting on timers (fetch stalls, HBM latency,
    /// delayed flits, broadcast drain), jump the clock straight to the
    /// earliest release cycle instead of stepping one cycle at a time.
    /// Results, `SimStats`, watchdog behaviour, and telemetry windows are
    /// bit-identical either way — the flag trades nothing but wall-clock
    /// (pinned by the bit-identity test suite).
    pub fast_forward: bool,
    /// Event-driven stepping: every unit posts its next-activity cycle
    /// into a per-device calendar (see [`crate::calendar`]) and the engine
    /// visits only the units scheduled for the current cycle, advancing
    /// the clock event-to-event. Subsumes [`fast_forward`](Self::fast_forward)
    /// — a fully quiescent device is the degenerate "one event at cycle K"
    /// case — and therefore requires it to be enabled. Results, `SimStats`,
    /// watchdog/cycle-limit firing cycles, fault behaviour, and telemetry
    /// windows are bit-identical to stepped execution (pinned by the
    /// bit-identity test suite); only events-dispatched / units-skipped
    /// diagnostics differ, and those live beside the summary, not inside
    /// the compared state.
    pub event_driven: bool,
    /// Hard per-run cycle budget: the run ends with
    /// [`SimError::DeadlineExceeded`] once the clock reaches this cycle
    /// without converging. Unlike a wall-clock deadline this is measured
    /// in *simulated* time, so it is deterministic and lands on exactly
    /// the same cycle — with the same partial counters and telemetry
    /// windows — whether or not fast-forward is engaged. `None` leaves
    /// only the global cycle safety cap. Must be positive and at most
    /// [`CYCLE_SAFETY_CAP`](crate::CYCLE_SAFETY_CAP).
    pub cycle_limit: Option<u64>,
}

impl ScalaGraphConfig {
    /// The paper's flagship configuration: 512 PEs as two 16×16 tiles.
    pub fn scalagraph_512() -> Self {
        Self::with_pes(512)
    }

    /// The 128-PE configuration used for iso-PE comparisons: two 16×4
    /// tiles.
    pub fn scalagraph_128() -> Self {
        Self::with_pes(128)
    }

    /// A configuration with `pes` processing elements, built the way the
    /// scalability study does (Section V-E): two tiles, 16 rows each,
    /// growing one column at a time — 32 PEs is 2×(16×1), 1,024 is
    /// 2×(16×32).
    ///
    /// # Panics
    ///
    /// Panics unless `pes` is a positive multiple of 32.
    pub fn with_pes(pes: usize) -> Self {
        assert!(
            pes >= 32 && pes.is_multiple_of(32),
            "PE count must be a positive multiple of 32 (two tiles of 16 rows)"
        );
        let cols = pes / 32;
        ScalaGraphConfig {
            placement: Placement::new(2, 16, cols),
            mapping: Mapping::RowOriented,
            aggregation_registers: 16,
            max_scheduled_vertices: 16,
            inter_phase_pipelining: true,
            // 6 MB of scratchpad at 4 bytes per property plus a temporary
            // slot: ~768 K vertices resident.
            spd_capacity_vertices: 768 * 1024,
            memory: MemoryPreset::U280,
            clock_mhz: None,
            link_width: 4,
            gu_queue_capacity: 16,
            router_queue_capacity: 8,
            watchdog_stall_cycles: DEFAULT_WATCHDOG_STALL_CYCLES,
            fault_plan: None,
            fast_forward: false,
            event_driven: false,
            cycle_limit: None,
        }
    }

    /// The effective clock in MHz: an explicit override, or the paper's
    /// methodology — the conservative 250 MHz operating point, capped by
    /// the mesh's synthesizable frequency at this PE count. Above the
    /// U280's route-out limit the paper itself switches to a simulator
    /// pinned at 250 MHz, which we mirror.
    pub fn effective_clock_mhz(&self) -> f64 {
        if let Some(mhz) = self.clock_mhz {
            return mhz;
        }
        match max_frequency_mhz(InterconnectKind::Mesh, self.placement.num_pes()) {
            scalagraph_hwmodel::SynthesisOutcome::Routed { fmax_mhz } => {
                fmax_mhz.min(OPERATING_CLOCK_MHZ)
            }
            scalagraph_hwmodel::SynthesisOutcome::RouteFailure => OPERATING_CLOCK_MHZ,
        }
    }

    /// Per-tile memory configuration at the effective clock.
    pub fn tile_memory(&self) -> HbmConfig {
        let clock_hz = self.effective_clock_mhz() * 1e6;
        match self.memory {
            MemoryPreset::U280 => HbmConfig::u280_stack(clock_hz),
            // The >1,024-PE study assumes "sufficient off-chip bandwidth"
            // (Section V-E): pseudo-channels — and with them the
            // prefetcher count — grow with the PE array width so the
            // frontend never becomes the artificial limiter.
            MemoryPreset::Unlimited => HbmConfig::unlimited(self.placement.cols.max(16)),
            MemoryPreset::Custom(c) => c,
        }
    }

    /// Validates internal consistency, rejecting degenerate configurations
    /// (empty PE array, zero queues or scratchpad, out-of-range scheduler
    /// width — the EDU dispatches one 64-byte line per cycle, so at most 16
    /// vertices can be scheduled) before they can panic deep inside
    /// `mapping`/`placement` arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        let p = self.placement;
        if p.tiles == 0 || p.rows_per_tile == 0 || p.cols == 0 {
            return Err(SimError::config(format!(
                "PE array must be non-empty (tiles={} rows={} cols={})",
                p.tiles, p.rows_per_tile, p.cols
            )));
        }
        if self.gu_queue_capacity == 0 {
            return Err(SimError::config("GU queue must be non-empty"));
        }
        if self.router_queue_capacity == 0 {
            return Err(SimError::config("router queue must be non-empty"));
        }
        if self.link_width == 0 {
            return Err(SimError::config("link width must be positive"));
        }
        if !(1..=16).contains(&self.max_scheduled_vertices) {
            return Err(SimError::config(
                "degree-aware scheduler width must be in 1..=16",
            ));
        }
        if self.spd_capacity_vertices == 0 {
            return Err(SimError::config("SPD capacity must be positive"));
        }
        if let Some(mhz) = self.clock_mhz {
            if mhz.is_nan() || mhz <= 0.0 {
                return Err(SimError::config("clock override must be positive"));
            }
        }
        if let MemoryPreset::Custom(hbm) = &self.memory {
            if hbm.channels == 0 {
                return Err(SimError::config("memory must expose at least one channel"));
            }
            if hbm.bytes_per_cycle_per_channel.is_nan() || hbm.bytes_per_cycle_per_channel <= 0.0 {
                return Err(SimError::config("memory bandwidth must be positive"));
            }
            if hbm.queue_depth == 0 {
                return Err(SimError::config("memory queue depth must be positive"));
            }
        }
        // Deadline-path knobs. The fast-forward watchdog emulation computes
        // `now + wait + (threshold - 1)` in u64; bounding both the watchdog
        // window and the cycle limit by the safety cap keeps every such
        // fire-cycle computation overflow-free and keeps the knobs
        // meaningful (beyond the cap the run ends as CycleCapExceeded
        // before either could fire).
        if self.watchdog_stall_cycles > CYCLE_SAFETY_CAP {
            return Err(SimError::config(format!(
                "watchdog window {} exceeds the cycle safety cap {CYCLE_SAFETY_CAP}",
                self.watchdog_stall_cycles
            )));
        }
        if let Some(limit) = self.cycle_limit {
            if limit == 0 {
                return Err(SimError::config(
                    "cycle limit must be positive (None disables it)",
                ));
            }
            if limit > CYCLE_SAFETY_CAP {
                return Err(SimError::config(format!(
                    "cycle limit {limit} exceeds the cycle safety cap {CYCLE_SAFETY_CAP}"
                )));
            }
        }
        // Event-driven knob coherence. The calendar can only honor knob
        // combinations it can express as events: a disabled watchdog leaves
        // a fully quiescent wedge with no pending event at all (the skip
        // would leap straight to the safety cap instead of firing a
        // diagnosable stall), and disabling fast-forward under event-driven
        // would ask for a mode that both skips idle units and steps every
        // idle cycle — the whole-device skip *is* the calendar's degenerate
        // case.
        if self.event_driven {
            if !self.fast_forward {
                return Err(SimError::config(
                    "event_driven requires fast_forward: the calendar subsumes the \
                     whole-device idle skip (enable both or neither)",
                ));
            }
            if self.watchdog_stall_cycles == 0 {
                return Err(SimError::config(
                    "event_driven cannot honor a zero-period (disabled) watchdog: \
                     a quiescent wedge would post no wakeup event",
                ));
            }
        }
        if let Some(plan) = &self.fault_plan {
            for f in &plan.faults {
                if f.until_cycle <= f.from_cycle {
                    return Err(SimError::config(format!(
                        "fault window [{}, {}) is empty",
                        f.from_cycle, f.until_cycle
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for ScalaGraphConfig {
    fn default() -> Self {
        Self::scalagraph_512()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_geometry() {
        let c512 = ScalaGraphConfig::scalagraph_512();
        assert_eq!(c512.placement.tiles, 2);
        assert_eq!(c512.placement.cols, 16);
        let c128 = ScalaGraphConfig::scalagraph_128();
        assert_eq!(c128.placement.cols, 4);
        let c32 = ScalaGraphConfig::with_pes(32);
        assert_eq!(c32.placement.cols, 1);
    }

    #[test]
    fn effective_clock_is_250_up_to_1024() {
        for pes in [32, 128, 512, 1024] {
            let c = ScalaGraphConfig::with_pes(pes);
            assert_eq!(c.effective_clock_mhz(), 250.0, "{pes} PEs");
        }
        // Beyond the FPGA: simulator pinned at 250 MHz (Section V-E).
        assert_eq!(
            ScalaGraphConfig::with_pes(4096).effective_clock_mhz(),
            250.0
        );
    }

    #[test]
    fn clock_override_wins() {
        let mut c = ScalaGraphConfig::scalagraph_128();
        c.clock_mhz = Some(100.0);
        assert_eq!(c.effective_clock_mhz(), 100.0);
    }

    #[test]
    fn tile_memory_presets() {
        let c = ScalaGraphConfig::scalagraph_512();
        assert_eq!(c.tile_memory().channels, 16);
        let mut u = ScalaGraphConfig::scalagraph_512();
        u.memory = MemoryPreset::Unlimited;
        assert!(u.tile_memory().total_bytes_per_cycle() > 1e9);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn rejects_odd_pe_count() {
        let _ = ScalaGraphConfig::with_pes(100);
    }

    #[test]
    fn validate_rejects_wide_scheduler() {
        let mut c = ScalaGraphConfig::scalagraph_128();
        c.max_scheduled_vertices = 20;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("scheduler width"), "{err}");
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let base = ScalaGraphConfig::with_pes(32);
        assert!(base.validate().is_ok());
        let break_it: [fn(&mut ScalaGraphConfig); 6] = [
            |c| c.gu_queue_capacity = 0,
            |c| c.router_queue_capacity = 0,
            |c| c.link_width = 0,
            |c| c.max_scheduled_vertices = 0,
            |c| c.spd_capacity_vertices = 0,
            |c| c.clock_mhz = Some(-1.0),
        ];
        for (i, f) in break_it.iter().enumerate() {
            let mut c = base.clone();
            f(&mut c);
            assert!(
                matches!(c.validate(), Err(SimError::ConfigInvalid { .. })),
                "case {i} must be rejected"
            );
        }
    }

    #[test]
    fn validate_rejects_overflowing_watchdog_window() {
        let mut c = ScalaGraphConfig::with_pes(32);
        c.watchdog_stall_cycles = CYCLE_SAFETY_CAP + 1;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("watchdog window"), "{err}");
        // The cap itself is the largest accepted window.
        c.watchdog_stall_cycles = CYCLE_SAFETY_CAP;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_cycle_limit() {
        let mut c = ScalaGraphConfig::with_pes(32);
        c.cycle_limit = Some(0);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("cycle limit"), "{err}");
    }

    #[test]
    fn validate_rejects_overflowing_cycle_limit() {
        let mut c = ScalaGraphConfig::with_pes(32);
        c.cycle_limit = Some(CYCLE_SAFETY_CAP + 1);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("cycle limit"), "{err}");
        c.cycle_limit = Some(CYCLE_SAFETY_CAP);
        assert!(c.validate().is_ok());
        // The deadline path composes with fast-forward: the same bounds
        // hold with the skip optimisation engaged.
        c.fast_forward = true;
        assert!(c.validate().is_ok());
        c.cycle_limit = Some(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_event_driven_without_fast_forward() {
        let mut c = ScalaGraphConfig::with_pes(32);
        c.event_driven = true;
        c.fast_forward = false;
        let err = c.validate().unwrap_err();
        assert!(
            matches!(err, SimError::ConfigInvalid { .. }),
            "typed error expected, got {err}"
        );
        assert!(err.to_string().contains("fast_forward"), "{err}");
        c.fast_forward = true;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_event_driven_with_zero_period_watchdog() {
        let mut c = ScalaGraphConfig::with_pes(32);
        c.fast_forward = true;
        c.event_driven = true;
        c.watchdog_stall_cycles = 0;
        let err = c.validate().unwrap_err();
        assert!(
            matches!(err, SimError::ConfigInvalid { .. }),
            "typed error expected, got {err}"
        );
        assert!(err.to_string().contains("watchdog"), "{err}");
        // A disabled watchdog stays legal in the per-cycle modes.
        c.event_driven = false;
        assert!(c.validate().is_ok());
        // And the smallest positive window is legal under event-driven.
        c.event_driven = true;
        c.watchdog_stall_cycles = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_fault_windows() {
        use crate::fault::{Fault, FaultKind, FaultPlan, LinkDir};
        let mut c = ScalaGraphConfig::with_pes(32);
        c.fault_plan = Some(
            FaultPlan::seeded(1).with(
                Fault::new(FaultKind::LinkDown {
                    node: 0,
                    dir: LinkDir::East,
                })
                .window(10, 10),
            ),
        );
        assert!(c.validate().is_err());
    }
}
