//! Off-chip memory models for the ScalaGraph reproduction.
//!
//! The Alveo U280 card the paper targets carries two 4 GB HBM2 stacks with
//! 460 GB/s aggregate bandwidth, exposed as 32 pseudo-channels; each
//! prefetcher in ScalaGraph "connects to a pseudo channel of HBM to achieve
//! high memory-level parallelism" (Section III-A). This crate models that
//! memory at request granularity: per-pseudo-channel queues with a byte-rate
//! service budget and a fixed latency pipe, which is the level of detail the
//! paper's throughput arguments operate at (bandwidth × line size ×
//! frequency, Section I).
//!
//! # Example
//!
//! ```
//! use scalagraph_mem::{Hbm, HbmConfig, MemRequest};
//!
//! let mut hbm = Hbm::new(HbmConfig::u280(250_000_000.0));
//! assert!(hbm.try_request(0, MemRequest::read(42, 64)));
//! let mut done = None;
//! for _ in 0..1000 {
//!     hbm.step();
//!     if let Some(r) = hbm.pop_ready(0) {
//!         done = Some(r);
//!         break;
//!     }
//! }
//! assert_eq!(done.unwrap().tag, 42);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;

/// One off-chip memory request. The `tag` is opaque to the memory model;
/// simulators use it to route the response back to the issuing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-owned identifier returned unchanged with the response.
    pub tag: u64,
    /// Transfer size in bytes (usually one 64-byte line).
    pub bytes: u32,
    /// Whether this is a write (writes consume bandwidth but produce no
    /// response data; they still complete through the latency pipe so
    /// write-backs can be ordered).
    pub write: bool,
}

impl MemRequest {
    /// A read of `bytes` bytes tagged `tag`.
    pub fn read(tag: u64, bytes: u32) -> Self {
        MemRequest {
            tag,
            bytes,
            write: false,
        }
    }

    /// A write of `bytes` bytes tagged `tag`.
    pub fn write(tag: u64, bytes: u32) -> Self {
        MemRequest {
            tag,
            bytes,
            write: true,
        }
    }
}

/// Configuration of an off-chip memory device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmConfig {
    /// Number of independent pseudo-channels.
    pub channels: usize,
    /// Service rate per channel, in bytes per accelerator cycle.
    pub bytes_per_cycle_per_channel: f64,
    /// Access latency in accelerator cycles (queueing excluded).
    pub latency_cycles: u32,
    /// Maximum outstanding requests per channel; `try_request` fails beyond
    /// this depth, modelling finite AXI outstanding-transaction budgets.
    pub queue_depth: usize,
    /// Maximum extra latency, in cycles, added per request (uniform,
    /// deterministic per seed). Real HBM latency varies with bank state and
    /// refresh; simulators must produce identical *results* regardless —
    /// the timing-independence property tests exercise this knob.
    pub latency_jitter: u32,
}

impl HbmConfig {
    /// Returns this configuration with latency jitter up to `jitter`
    /// cycles.
    pub fn with_jitter(self, jitter: u32) -> Self {
        HbmConfig {
            latency_jitter: jitter,
            ..self
        }
    }
}

impl HbmConfig {
    /// The U280's two HBM2 stacks: 32 pseudo-channels, 460 GB/s aggregate,
    /// ~128 ns access latency. `clock_hz` is the accelerator clock the
    /// byte-rate is expressed against (the paper uses 250 MHz).
    pub fn u280(clock_hz: f64) -> Self {
        Self::from_bandwidth(460.0e9, 32, clock_hz)
    }

    /// A single U280 HBM stack (one ScalaGraph tile's private stack):
    /// 16 pseudo-channels, 230 GB/s.
    pub fn u280_stack(clock_hz: f64) -> Self {
        Self::from_bandwidth(230.0e9, 16, clock_hz)
    }

    /// A representative DDR4-2400 channel: 19.2 GB/s, one channel
    /// (Section II-B's comparison point).
    pub fn ddr4(clock_hz: f64) -> Self {
        Self::from_bandwidth(19.2e9, 1, clock_hz)
    }

    /// An idealized memory with effectively unlimited bandwidth, used by the
    /// >1,024-PE scalability study (Section V-E: "a cycle-accurate simulator
    /// > ... with sufficient off-chip bandwidth").
    pub fn unlimited(channels: usize) -> Self {
        HbmConfig {
            channels,
            bytes_per_cycle_per_channel: 1.0e9,
            latency_cycles: 32,
            queue_depth: usize::MAX / 2,
            latency_jitter: 0,
        }
    }

    /// Builds a config from an aggregate bandwidth in bytes/second split
    /// evenly over `channels`, relative to `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `clock_hz <= 0`.
    pub fn from_bandwidth(bytes_per_second: f64, channels: usize, clock_hz: f64) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(clock_hz > 0.0, "clock must be positive");
        HbmConfig {
            channels,
            bytes_per_cycle_per_channel: bytes_per_second / channels as f64 / clock_hz,
            latency_cycles: (128e-9 * clock_hz).round() as u32,
            // Cover the latency-bandwidth product (~0.9 lines/cycle * 32
            // cycles = 29 outstanding) with headroom, as HBM AXI masters
            // are provisioned in practice.
            queue_depth: 64,
            latency_jitter: 0,
        }
    }

    /// Aggregate bandwidth in bytes per cycle.
    pub fn total_bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle_per_channel * self.channels as f64
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Channel {
    pending: VecDeque<MemRequest>,
    in_flight: VecDeque<(u64, MemRequest)>, // (ready_cycle, request)
    ready: VecDeque<MemRequest>,
    credit: f64,
}

/// Cumulative traffic statistics of a memory device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Bytes read (serviced).
    pub bytes_read: u64,
    /// Bytes written (serviced).
    pub bytes_written: u64,
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Cycles in which at least one channel serviced data.
    pub busy_cycles: u64,
    /// Total cycles stepped.
    pub cycles: u64,
}

/// Cumulative per-pseudo-channel traffic counters, for time- and
/// location-resolved telemetry (the device-wide [`MemStats`] cannot say
/// *which* channel ran hot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTelemetry {
    /// Bytes serviced (reads + writes).
    pub bytes: u64,
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Cycles spent pinned by an injected stall.
    pub stall_cycles: u64,
}

impl MemStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Achieved bandwidth as a fraction of the configured peak.
    pub fn utilization(&self, config: &HbmConfig) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / (self.cycles as f64 * config.total_bytes_per_cycle())
        }
    }
}

/// A clocked multi-pseudo-channel memory device.
///
/// Per cycle, each channel accrues `bytes_per_cycle_per_channel` of service
/// credit; queued requests are drained in order as credit allows, then
/// complete `latency_cycles` later.
#[derive(Debug, Clone, PartialEq)]
pub struct Hbm {
    config: HbmConfig,
    channels: Vec<Channel>,
    now: u64,
    stats: MemStats,
    /// Xorshift state for deterministic latency jitter.
    jitter_state: u64,
    /// Per-channel stall deadline (fault injection): while `now` is below
    /// the deadline the channel services nothing and accepts nothing.
    stalled_until: Vec<u64>,
    /// Per-channel cumulative traffic counters.
    telemetry: Vec<ChannelTelemetry>,
}

impl Hbm {
    /// Creates a memory device from a configuration.
    pub fn new(config: HbmConfig) -> Self {
        Hbm {
            channels: vec![Channel::default(); config.channels],
            stalled_until: vec![0; config.channels],
            telemetry: vec![ChannelTelemetry::default(); config.channels],
            config,
            now: 0,
            stats: MemStats::default(),
            jitter_state: 0x9e3779b97f4a7c15,
        }
    }

    fn next_jitter(&mut self) -> u64 {
        if self.config.latency_jitter == 0 {
            return 0;
        }
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        x % (self.config.latency_jitter as u64 + 1)
    }

    /// The device configuration.
    pub fn config(&self) -> &HbmConfig {
        &self.config
    }

    /// Number of pseudo-channels.
    pub fn num_channels(&self) -> usize {
        self.config.channels
    }

    /// Enqueues a request on `channel`. Returns `false` (dropping nothing)
    /// when the channel queue is full — the caller must retry next cycle,
    /// exactly like a stalled AXI master.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `bytes == 0`.
    pub fn try_request(&mut self, channel: usize, request: MemRequest) -> bool {
        assert!(request.bytes > 0, "zero-byte memory request");
        if self.is_stalled(channel) {
            return false;
        }
        let ch = &mut self.channels[channel];
        if ch.pending.len() + ch.in_flight.len() >= self.config.queue_depth {
            return false;
        }
        ch.pending.push_back(request);
        true
    }

    /// Whether `channel` can accept another request this cycle.
    pub fn can_accept(&self, channel: usize) -> bool {
        let ch = &self.channels[channel];
        !self.is_stalled(channel) && ch.pending.len() + ch.in_flight.len() < self.config.queue_depth
    }

    /// Pins `channel` for `cycles` starting now: no service, no
    /// retirement, no new requests (fault injection). `u64::MAX` pins it
    /// forever; a second stall extends the deadline, never shortens it.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn stall_channel(&mut self, channel: usize, cycles: u64) {
        let deadline = self.now.saturating_add(cycles);
        let until = &mut self.stalled_until[channel];
        *until = (*until).max(deadline);
    }

    /// Whether an injected stall is currently pinning `channel`.
    pub fn is_stalled(&self, channel: usize) -> bool {
        self.stalled_until[channel] > self.now
    }

    /// Requests queued or in flight on `channel` (unconsumed responses
    /// excluded).
    pub fn outstanding(&self, channel: usize) -> usize {
        let ch = &self.channels[channel];
        ch.pending.len() + ch.in_flight.len()
    }

    /// Tags of requests queued or in flight across all channels, up to
    /// `limit` (diagnostic snapshots).
    pub fn outstanding_tags(&self, limit: usize) -> Vec<u64> {
        let mut tags = Vec::new();
        'outer: for ch in &self.channels {
            for req in ch.pending.iter().chain(ch.in_flight.iter().map(|(_, r)| r)) {
                if tags.len() >= limit {
                    break 'outer;
                }
                tags.push(req.tag);
            }
        }
        tags
    }

    /// Advances the device by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        let mut any_busy = false;
        let base_latency = self.config.latency_cycles as u64;
        let jitter_on = self.config.latency_jitter > 0;
        for i in 0..self.channels.len() {
            if self.stalled_until[i] > self.now {
                // A pinned channel freezes completely; its in-flight
                // latency deadlines simply age past.
                self.telemetry[i].stall_cycles += 1;
                continue;
            }
            let jitter = if jitter_on { self.next_jitter() } else { 0 };
            let ch = &mut self.channels[i];
            // Service the head of the queue with this cycle's credit. Idle
            // channels do not bank unbounded credit: cap carry-over at one
            // cycle's worth so a long-idle channel cannot burst above peak.
            if ch.pending.is_empty() {
                ch.credit = ch.credit.min(self.config.bytes_per_cycle_per_channel);
            }
            ch.credit += self.config.bytes_per_cycle_per_channel;
            while let Some(&front) = ch.pending.front() {
                if ch.credit < front.bytes as f64 {
                    break;
                }
                ch.credit -= front.bytes as f64;
                ch.pending.pop_front();
                ch.in_flight
                    .push_back((self.now + base_latency + jitter, front));
                any_busy = true;
            }
            // Retire in-flight requests whose latency elapsed (zero-latency
            // configurations complete in the same cycle they are serviced).
            while let Some(&(ready, req)) = ch.in_flight.front() {
                if ready > self.now {
                    break;
                }
                ch.in_flight.pop_front();
                let tel = &mut self.telemetry[i];
                tel.bytes += req.bytes as u64;
                if req.write {
                    self.stats.bytes_written += req.bytes as u64;
                    self.stats.writes += 1;
                    tel.writes += 1;
                } else {
                    self.stats.bytes_read += req.bytes as u64;
                    self.stats.reads += 1;
                    tel.reads += 1;
                    ch.ready.push_back(req);
                }
            }
        }
        if any_busy {
            self.stats.busy_cycles += 1;
        }
    }

    /// Advances the device by `cycles` cycles in one jump, bit-identically
    /// to calling [`step`](Self::step) that many times, under the
    /// precondition that none of those cycles would have serviced or retired
    /// a request. The caller establishes the precondition via
    /// [`next_event_cycle`](Self::next_event_cycle); violating it is a logic
    /// error (debug assertions catch it).
    ///
    /// Replicated exactly: `now`, cycle counters, per-channel stall
    /// telemetry, the idle-cycle credit cap (one idle cycle leaves
    /// `min(credit, rate) + rate`; two or more leave `2 * rate`), and the
    /// jitter RNG state (one draw per unstalled channel per cycle — idle
    /// draws discard the value, so only the draw *count* matters).
    pub fn advance(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let rate = self.config.bytes_per_cycle_per_channel;
        let jitter_on = self.config.latency_jitter > 0;
        let mut draws = 0u64;
        for i in 0..self.channels.len() {
            // Skipped cycles are now+1 ..= now+cycles; cycle c is pinned
            // while c < stalled_until.
            let stalled = self.stalled_until[i]
                .saturating_sub(self.now + 1)
                .min(cycles);
            self.telemetry[i].stall_cycles += stalled;
            let active = cycles - stalled;
            if active == 0 {
                continue;
            }
            let ch = &mut self.channels[i];
            debug_assert!(
                ch.pending.is_empty(),
                "advance over a channel that would service pending work"
            );
            debug_assert!(
                ch.in_flight
                    .front()
                    .is_none_or(|&(ready, _)| ready > self.now + cycles),
                "advance over a channel that would retire in-flight work"
            );
            if active == 1 {
                ch.credit = ch.credit.min(rate) + rate;
            } else {
                ch.credit = rate + rate;
            }
            if jitter_on {
                draws += active;
            }
        }
        for _ in 0..draws {
            let _ = self.next_jitter();
        }
        self.now += cycles;
        self.stats.cycles += cycles;
    }

    /// The earliest future cycle at which [`step`](Self::step) could service,
    /// retire, or unpin anything, or `None` if the device is fully drained
    /// and will never act again on its own. Used by simulators to bound an
    /// idle-cycle [`advance`](Self::advance): jumping `now` to any cycle
    /// strictly below the returned value is observationally identical to
    /// stepping.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        let mut fold = |c: u64| earliest = Some(earliest.map_or(c, |e| e.min(c)));
        for (i, ch) in self.channels.iter().enumerate() {
            // The step that increments `now` to `stalled_until` is the first
            // active one for a pinned channel.
            let first_active = (self.now + 1).max(self.stalled_until[i]);
            if !ch.ready.is_empty() {
                // Unconsumed responses: the caller may act next cycle.
                fold(self.now + 1);
            }
            if !ch.pending.is_empty() {
                // Queued work services at the first unpinned cycle
                // (conservatively imminent — credit arithmetic stays in
                // step()).
                fold(first_active);
            }
            if let Some(&(ready, _)) = ch.in_flight.front() {
                fold(first_active.max(ready));
            }
        }
        earliest
    }

    /// [`next_event_cycle`](Self::next_event_cycle) reshaped for an
    /// event-driven caller that tracks its own clock: the earliest cycle
    /// *strictly after* `now` at which the device may act. The clamp
    /// matters when the caller asks mid-cycle — an unconsumed response is
    /// "actionable now", but the next *stepping* opportunity is `now + 1`.
    pub fn next_activity_cycle(&self, now: u64) -> Option<u64> {
        self.next_event_cycle().map(|c| c.max(now + 1))
    }

    /// Pops the next completed read on `channel`, if any.
    pub fn pop_ready(&mut self, channel: usize) -> Option<MemRequest> {
        self.channels[channel].ready.pop_front()
    }

    /// Whether every queue in the device is empty (no pending, in-flight, or
    /// unconsumed responses).
    pub fn is_idle(&self) -> bool {
        self.channels
            .iter()
            .all(|c| c.pending.is_empty() && c.in_flight.is_empty() && c.ready.is_empty())
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Cumulative traffic counters of one pseudo-channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_telemetry(&self, channel: usize) -> ChannelTelemetry {
        self.telemetry[channel]
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HbmConfig {
        HbmConfig {
            channels: 2,
            bytes_per_cycle_per_channel: 64.0,
            latency_cycles: 4,
            queue_depth: 3,
            latency_jitter: 0,
        }
    }

    #[test]
    fn read_completes_after_latency() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(0, MemRequest::read(7, 64)));
        // Serviced on cycle 1, ready at cycle 1 + 4.
        for c in 1..=4 {
            hbm.step();
            assert!(hbm.pop_ready(0).is_none(), "ready too early at cycle {c}");
        }
        hbm.step();
        assert_eq!(hbm.pop_ready(0).unwrap().tag, 7);
        assert!(hbm.is_idle());
    }

    #[test]
    fn bandwidth_limits_throughput() {
        // 64 B/cycle, requests of 64 B: exactly one serviced per cycle.
        let mut hbm = Hbm::new(HbmConfig {
            queue_depth: 1000,
            ..tiny_config()
        });
        for i in 0..10 {
            assert!(hbm.try_request(0, MemRequest::read(i, 64)));
        }
        let mut completions = Vec::new();
        for cycle in 1..=30 {
            hbm.step();
            while let Some(r) = hbm.pop_ready(0) {
                completions.push((cycle, r.tag));
            }
        }
        assert_eq!(completions.len(), 10);
        // One completion per cycle once the pipe fills.
        for w in completions.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 1);
        }
    }

    #[test]
    fn half_rate_channel_services_every_other_cycle() {
        let mut hbm = Hbm::new(HbmConfig {
            channels: 1,
            bytes_per_cycle_per_channel: 32.0,
            latency_cycles: 0,
            queue_depth: 100,
            latency_jitter: 0,
        });
        for i in 0..4 {
            hbm.try_request(0, MemRequest::read(i, 64));
        }
        let mut done = 0;
        for _ in 0..8 {
            hbm.step();
            while hbm.pop_ready(0).is_some() {
                done += 1;
            }
        }
        assert_eq!(done, 4, "32 B/cycle serves four 64 B lines in 8 cycles");
    }

    #[test]
    fn queue_depth_back_pressure() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(1, MemRequest::read(0, 64)));
        assert!(hbm.try_request(1, MemRequest::read(1, 64)));
        assert!(hbm.try_request(1, MemRequest::read(2, 64)));
        assert!(!hbm.try_request(1, MemRequest::read(3, 64)));
        assert!(!hbm.can_accept(1));
        assert!(hbm.can_accept(0));
    }

    #[test]
    fn writes_consume_bandwidth_but_produce_no_response() {
        let mut hbm = Hbm::new(tiny_config());
        hbm.try_request(0, MemRequest::write(9, 64));
        for _ in 0..10 {
            hbm.step();
        }
        assert!(hbm.pop_ready(0).is_none());
        assert_eq!(hbm.stats().bytes_written, 64);
        assert_eq!(hbm.stats().writes, 1);
        assert!(hbm.is_idle());
    }

    #[test]
    fn channels_are_independent() {
        let mut hbm = Hbm::new(tiny_config());
        hbm.try_request(0, MemRequest::read(0, 64));
        hbm.try_request(1, MemRequest::read(1, 64));
        for _ in 0..5 {
            hbm.step();
        }
        assert_eq!(hbm.pop_ready(0).unwrap().tag, 0);
        assert_eq!(hbm.pop_ready(1).unwrap().tag, 1);
    }

    #[test]
    fn stats_utilization() {
        let mut hbm = Hbm::new(HbmConfig {
            queue_depth: 1000,
            ..tiny_config()
        });
        for i in 0..8 {
            hbm.try_request(0, MemRequest::read(i, 64));
        }
        for _ in 0..20 {
            hbm.step();
        }
        let u = hbm.stats().utilization(hbm.config());
        // 8 lines * 64 B over 20 cycles * 128 B/cycle peak = 0.2.
        assert!((u - 0.2).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn presets_are_sane() {
        let u280 = HbmConfig::u280(250e6);
        assert_eq!(u280.channels, 32);
        assert!((u280.total_bytes_per_cycle() - 1840.0).abs() < 1.0);
        assert_eq!(u280.latency_cycles, 32);
        let ddr = HbmConfig::ddr4(250e6);
        assert!((ddr.total_bytes_per_cycle() - 76.8).abs() < 0.1);
        let unl = HbmConfig::unlimited(32);
        assert!(unl.total_bytes_per_cycle() > 1e10);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let run = |jitter: u32| -> Vec<u64> {
            let mut hbm = Hbm::new(tiny_config().with_jitter(jitter));
            let mut completions = Vec::new();
            let mut issued = 0u64;
            for cycle in 1..=400u64 {
                if issued < 20 && hbm.try_request(0, MemRequest::read(issued, 64)) {
                    issued += 1;
                }
                hbm.step();
                while hbm.pop_ready(0).is_some() {
                    completions.push(cycle);
                }
            }
            assert_eq!(completions.len(), 20, "jitter {jitter}: all must complete");
            completions
        };
        let a = run(8);
        let b = run(8);
        assert_eq!(a, b, "same jitter config must be deterministic");
        let c = run(0);
        assert_ne!(a, c, "jitter must change completion timing");
        // Jittered completions never beat the base latency.
        for (i, &cycle) in c.iter().enumerate() {
            assert!(a[i] >= cycle);
        }
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_request_panics() {
        let mut hbm = Hbm::new(tiny_config());
        let _ = hbm.try_request(0, MemRequest::read(0, 0));
    }

    #[test]
    fn stalled_channel_freezes_and_recovers() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(0, MemRequest::read(3, 64)));
        hbm.stall_channel(0, 10);
        assert!(hbm.is_stalled(0));
        assert!(!hbm.can_accept(0));
        assert!(!hbm.try_request(0, MemRequest::read(4, 64)));
        assert!(hbm.can_accept(1), "other channels keep working");
        for _ in 0..10 {
            hbm.step();
            assert!(hbm.pop_ready(0).is_none(), "no service while pinned");
        }
        assert!(!hbm.is_stalled(0));
        assert_eq!(hbm.outstanding(0), 1);
        assert_eq!(hbm.outstanding_tags(8), vec![3]);
        // Serviced on the first unpinned cycle, ready after the latency.
        let mut tag = None;
        for _ in 0..6 {
            hbm.step();
            if let Some(r) = hbm.pop_ready(0) {
                tag = Some(r.tag);
                break;
            }
        }
        assert_eq!(tag, Some(3));
        assert!(hbm.is_idle());
    }

    #[test]
    fn permanent_stall_never_lifts() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(1, MemRequest::read(9, 64)));
        hbm.stall_channel(1, u64::MAX);
        for _ in 0..1000 {
            hbm.step();
        }
        assert!(hbm.is_stalled(1));
        assert!(hbm.pop_ready(1).is_none());
        assert_eq!(hbm.outstanding(1), 1);
    }

    #[test]
    fn channel_telemetry_tracks_bytes_and_stalls() {
        let mut hbm = Hbm::new(tiny_config());
        hbm.try_request(0, MemRequest::read(0, 64));
        hbm.try_request(0, MemRequest::write(1, 64));
        hbm.stall_channel(1, 5);
        for _ in 0..10 {
            hbm.step();
        }
        let ch0 = hbm.channel_telemetry(0);
        assert_eq!(ch0.bytes, 128);
        assert_eq!((ch0.reads, ch0.writes), (1, 1));
        assert_eq!(ch0.stall_cycles, 0);
        let ch1 = hbm.channel_telemetry(1);
        assert_eq!(ch1.bytes, 0);
        // Stalled while `now < deadline`: the deadline cycle itself already
        // services again, so a 5-cycle stall freezes steps 1..=4.
        assert_eq!(ch1.stall_cycles, 4);
        // Per-channel counters sum to the device-wide aggregate.
        let total: u64 = (0..hbm.num_channels())
            .map(|c| hbm.channel_telemetry(c).bytes)
            .sum();
        assert_eq!(total, hbm.stats().total_bytes());
    }

    #[test]
    fn advance_is_bit_identical_to_idle_steps() {
        for jitter in [0u32, 8] {
            // Build a device with history: leftover credit on channel 0, a
            // pinned channel 1, and fractional credit from a 48 B transfer.
            let mut hbm = Hbm::new(tiny_config().with_jitter(jitter));
            assert!(hbm.try_request(0, MemRequest::read(1, 48)));
            for _ in 0..20 {
                hbm.step();
            }
            while hbm.pop_ready(0).is_some() {}
            hbm.stall_channel(1, 9);
            let mut stepped = hbm.clone();
            let mut jumped = hbm.clone();
            for span in [1u64, 2, 5, 13] {
                for _ in 0..span {
                    stepped.step();
                }
                jumped.advance(span);
                assert_eq!(stepped, jumped, "jitter {jitter}, span {span}");
            }
            // The RNG stream must also line up for future jittered traffic.
            assert!(stepped.try_request(0, MemRequest::read(2, 64)));
            assert!(jumped.try_request(0, MemRequest::read(2, 64)));
            for _ in 0..50 {
                stepped.step();
                jumped.step();
            }
            assert_eq!(stepped, jumped, "jitter {jitter}, post-advance traffic");
        }
    }

    #[test]
    fn advance_stops_short_of_the_next_event() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(0, MemRequest::read(7, 64)));
        hbm.step(); // serviced at cycle 1, ready at 1 + 4
        assert_eq!(hbm.next_event_cycle(), Some(5));
        let mut stepped = hbm.clone();
        hbm.advance(3); // cycles 2..=4 are pure latency wait
        for _ in 0..3 {
            stepped.step();
        }
        assert_eq!(hbm, stepped);
        hbm.step();
        assert_eq!(hbm.pop_ready(0).unwrap().tag, 7);
        assert_eq!(hbm.next_event_cycle(), None, "drained device never acts");
    }

    #[test]
    fn next_event_cycle_sees_pinned_channels() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(1, MemRequest::read(3, 64)));
        hbm.stall_channel(1, 10);
        // Pending work behind a pin: nothing can happen before the pin
        // lifts at cycle 10.
        assert_eq!(hbm.next_event_cycle(), Some(10));
        let mut stepped = hbm.clone();
        hbm.advance(9);
        for _ in 0..9 {
            stepped.step();
        }
        assert_eq!(hbm, stepped);
        assert_eq!(hbm.channel_telemetry(1).stall_cycles, 9);
    }

    #[test]
    fn next_activity_cycle_clamps_to_the_future() {
        let mut hbm = Hbm::new(tiny_config());
        assert!(hbm.try_request(0, MemRequest::read(7, 64)));
        hbm.step(); // serviced at cycle 1, ready at 5
        assert_eq!(hbm.next_event_cycle(), Some(5));
        assert_eq!(hbm.next_activity_cycle(1), Some(5));
        // An unconsumed response is actionable "now"; the next stepping
        // opportunity is still strictly in the caller's future.
        for _ in 0..4 {
            hbm.step();
        }
        assert_eq!(hbm.next_event_cycle(), Some(hbm.now() + 1));
        assert_eq!(hbm.next_activity_cycle(hbm.now()), Some(hbm.now() + 1));
        while hbm.pop_ready(0).is_some() {}
        assert_eq!(hbm.next_activity_cycle(hbm.now()), None);
    }

    #[test]
    fn stall_extends_but_never_shortens() {
        let mut hbm = Hbm::new(tiny_config());
        hbm.stall_channel(0, 20);
        hbm.stall_channel(0, 5);
        for _ in 0..10 {
            hbm.step();
        }
        assert!(hbm.is_stalled(0), "longer deadline must win");
    }
}
