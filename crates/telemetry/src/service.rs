//! Service-level metrics for batch execution.
//!
//! The rest of this crate watches a *single* simulation from the inside.
//! This module watches a *fleet* of simulations from the outside: how many
//! jobs were admitted, rejected, retried, killed by a deadline, quarantined
//! by a circuit breaker. A [`ServiceMetrics`] is a bag of atomic counters a
//! batch runtime's workers bump from many threads without coordination;
//! [`ServiceCounters`] is a plain snapshot for reporting.
//!
//! The counters are deliberately monotonic (except the queue-depth gauge):
//! a balanced ledger — `submitted == completed + failed + cancelled +
//! rejected` — is the batch runtime's core invariant, and monotonic
//! counters make the check meaningful at any observation point after the
//! run drains.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters a batch runtime bumps while it runs.
///
/// All methods take `&self`; relaxed ordering everywhere since the counters
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_kills: AtomicU64,
    retries: AtomicU64,
    panics_contained: AtomicU64,
    degraded: AtomicU64,
    quarantined: AtomicU64,
    breaker_opened: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $name:ident => $field:ident),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    )+};
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    bump! {
        /// A job entered the runtime (before admission control).
        job_submitted => submitted,
        /// Admission control turned a job away (queue full or shutdown).
        job_rejected => rejected,
        /// A job finished with a usable result.
        job_completed => completed,
        /// A job ended in an error outcome (sim error, panic, quarantine,
        /// malformed spec, over budget).
        job_failed => failed,
        /// A job was cancelled (explicitly or by a deadline) before
        /// completing.
        job_cancelled => cancelled,
        /// A deadline expiry was the cancellation cause. Subset of
        /// [`ServiceMetrics::job_cancelled`].
        deadline_kill => deadline_kills,
        /// One retry attempt was scheduled after a transient failure.
        retry_scheduled => retries,
        /// A worker caught a panic and converted it into a structured
        /// outcome.
        panic_contained => panics_contained,
        /// A job ran in a degraded (down-scaled) configuration to fit its
        /// resource budget.
        job_degraded => degraded,
        /// An open circuit breaker refused a job.
        job_quarantined => quarantined,
        /// A circuit breaker transitioned closed -> open.
        breaker_opened => breaker_opened,
    }

    /// Records a job entering the admission queue.
    ///
    /// Callers must bump this *before* the job becomes visible to a
    /// consumer, so no consumer's [`queue_left`](Self::queue_left) can
    /// observe the gauge before its matching increment.
    pub fn queue_entered(&self) {
        let depth = self
            .queue_depth
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job leaving the admission queue. Saturates at zero: a
    /// stray decrement degrades the gauge instead of wrapping it to
    /// `u64::MAX`.
    pub fn queue_left(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// A point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> ServiceCounters {
        ServiceCounters {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

/// Plain snapshot of a [`ServiceMetrics`] (all counts observed together).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs submitted to the runtime.
    pub submitted: u64,
    /// Jobs turned away by admission control.
    pub rejected: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs that ended in an error outcome.
    pub failed: u64,
    /// Jobs cancelled before completion (includes deadline kills).
    pub cancelled: u64,
    /// Cancellations caused by a deadline expiry.
    pub deadline_kills: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Panics caught and contained by workers.
    pub panics_contained: u64,
    /// Jobs run in a degraded configuration.
    pub degraded: u64,
    /// Jobs refused by an open circuit breaker.
    pub quarantined: u64,
    /// Closed -> open breaker transitions.
    pub breaker_opened: u64,
    /// Jobs sitting in the admission queue right now.
    pub queue_depth: u64,
    /// High-water mark of the admission queue.
    pub queue_peak: u64,
}

impl ServiceCounters {
    /// Whether every submitted job is accounted for by exactly one terminal
    /// bucket. The batch runtime asserts this after draining.
    pub fn balanced(&self) -> bool {
        self.submitted == self.completed + self.failed + self.cancelled + self.rejected
    }
}

impl std::fmt::Display for ServiceCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted = {} completed + {} failed + {} cancelled + {} rejected ({})",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.rejected,
            if self.balanced() {
                "balanced"
            } else {
                "UNBALANCED"
            }
        )?;
        writeln!(
            f,
            "resilience: {} retries, {} deadline kills, {} panics contained, {} degraded",
            self.retries, self.deadline_kills, self.panics_contained, self.degraded
        )?;
        write!(
            f,
            "pressure: queue peak {}, {} quarantined, {} breaker trips",
            self.queue_peak, self.quarantined, self.breaker_opened
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ServiceMetrics::new();
        for _ in 0..5 {
            m.job_submitted();
        }
        m.job_completed();
        m.job_completed();
        m.job_failed();
        m.job_cancelled();
        m.deadline_kill();
        m.job_rejected();
        m.retry_scheduled();
        m.panic_contained();
        let c = m.snapshot();
        assert_eq!(c.submitted, 5);
        assert_eq!(c.completed, 2);
        assert_eq!(c.failed, 1);
        assert_eq!(c.cancelled, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.deadline_kills, 1);
        assert!(c.balanced(), "{c}");
    }

    #[test]
    fn queue_gauge_tracks_depth_and_peak() {
        let m = ServiceMetrics::new();
        m.queue_entered();
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        let c = m.snapshot();
        assert_eq!(c.queue_depth, 2);
        assert_eq!(c.queue_peak, 3);
    }

    #[test]
    fn queue_gauge_saturates_at_zero_instead_of_wrapping() {
        let m = ServiceMetrics::new();
        m.queue_left(); // stray decrement: must not wrap to u64::MAX
        assert_eq!(m.snapshot().queue_depth, 0);
        m.queue_entered(); // ...and must not overflow-panic afterwards
        let c = m.snapshot();
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.queue_peak, 1);
    }

    #[test]
    fn unbalanced_ledger_is_detected() {
        let m = ServiceMetrics::new();
        m.job_submitted();
        m.job_submitted();
        m.job_completed();
        let c = m.snapshot();
        assert!(!c.balanced());
        assert!(format!("{c}").contains("UNBALANCED"));
    }

    #[test]
    fn metrics_are_shareable_across_threads() {
        let m = std::sync::Arc::new(ServiceMetrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.job_submitted();
                        m.job_completed();
                    }
                });
            }
        });
        let c = m.snapshot();
        assert_eq!(c.submitted, 4000);
        assert_eq!(c.completed, 4000);
        assert!(c.balanced());
    }
}
