//! Service-level metrics for batch execution.
//!
//! The rest of this crate watches a *single* simulation from the inside.
//! This module watches a *fleet* of simulations from the outside: how many
//! jobs were admitted, rejected, retried, killed by a deadline, quarantined
//! by a circuit breaker. A [`ServiceMetrics`] is a bag of atomic counters a
//! batch runtime's workers bump from many threads without coordination;
//! [`ServiceCounters`] is a plain snapshot for reporting.
//!
//! The counters are deliberately monotonic (except the queue-depth gauge):
//! a balanced ledger — `submitted == completed + failed + cancelled +
//! rejected` — is the batch runtime's core invariant, and monotonic
//! counters make the check meaningful at any observation point after the
//! run drains.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters a batch runtime bumps while it runs.
///
/// All methods take `&self`; relaxed ordering everywhere since the counters
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline_kills: AtomicU64,
    retries: AtomicU64,
    panics_contained: AtomicU64,
    degraded: AtomicU64,
    quarantined: AtomicU64,
    breaker_opened: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    // Serve-side counters: a long-lived daemon watches its wire traffic and
    // its caches with the same metrics bag its executor already bumps.
    connections: AtomicU64,
    requests_ok: AtomicU64,
    requests_error: AtomicU64,
    graph_cache_hits: AtomicU64,
    graph_cache_misses: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $name:ident => $field:ident),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    )+};
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    bump! {
        /// A job entered the runtime (before admission control).
        job_submitted => submitted,
        /// Admission control turned a job away (queue full or shutdown).
        job_rejected => rejected,
        /// A job finished with a usable result.
        job_completed => completed,
        /// A job ended in an error outcome (sim error, panic, quarantine,
        /// malformed spec, over budget).
        job_failed => failed,
        /// A job was cancelled (explicitly or by a deadline) before
        /// completing.
        job_cancelled => cancelled,
        /// A deadline expiry was the cancellation cause. Subset of
        /// [`ServiceMetrics::job_cancelled`].
        deadline_kill => deadline_kills,
        /// One retry attempt was scheduled after a transient failure.
        retry_scheduled => retries,
        /// A worker caught a panic and converted it into a structured
        /// outcome.
        panic_contained => panics_contained,
        /// A job ran in a degraded (down-scaled) configuration to fit its
        /// resource budget.
        job_degraded => degraded,
        /// An open circuit breaker refused a job.
        job_quarantined => quarantined,
        /// A circuit breaker transitioned closed -> open.
        breaker_opened => breaker_opened,
        /// A client connection was accepted by the serve listener.
        conn_opened => connections,
        /// A request was answered with a protocol-level success.
        request_ok => requests_ok,
        /// A request was answered with a typed error response.
        request_error => requests_error,
        /// A job's graph was served from the shared immutable graph cache.
        graph_cache_hit => graph_cache_hits,
        /// A job's graph had to be built (cache miss / first build).
        graph_cache_miss => graph_cache_misses,
        /// A request was answered from the scenario-memoization layer.
        memo_hit => memo_hits,
        /// A request missed the memoization layer and executed.
        memo_miss => memo_misses,
    }

    /// Adds request bytes read off the wire.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds response bytes written to the wire.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a job entering the admission queue.
    ///
    /// Callers must bump this *before* the job becomes visible to a
    /// consumer, so no consumer's [`queue_left`](Self::queue_left) can
    /// observe the gauge before its matching increment.
    pub fn queue_entered(&self) {
        let depth = self
            .queue_depth
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a job leaving the admission queue. Saturates at zero: a
    /// stray decrement degrades the gauge instead of wrapping it to
    /// `u64::MAX`.
    pub fn queue_left(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// A point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> ServiceCounters {
        ServiceCounters {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_error: self.requests_error.load(Ordering::Relaxed),
            graph_cache_hits: self.graph_cache_hits.load(Ordering::Relaxed),
            graph_cache_misses: self.graph_cache_misses.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Plain snapshot of a [`ServiceMetrics`] (all counts observed together).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs submitted to the runtime.
    pub submitted: u64,
    /// Jobs turned away by admission control.
    pub rejected: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs that ended in an error outcome.
    pub failed: u64,
    /// Jobs cancelled before completion (includes deadline kills).
    pub cancelled: u64,
    /// Cancellations caused by a deadline expiry.
    pub deadline_kills: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Panics caught and contained by workers.
    pub panics_contained: u64,
    /// Jobs run in a degraded configuration.
    pub degraded: u64,
    /// Jobs refused by an open circuit breaker.
    pub quarantined: u64,
    /// Closed -> open breaker transitions.
    pub breaker_opened: u64,
    /// Jobs sitting in the admission queue right now.
    pub queue_depth: u64,
    /// High-water mark of the admission queue.
    pub queue_peak: u64,
    /// Client connections accepted by the serve listener.
    pub connections: u64,
    /// Requests answered with a protocol-level success.
    pub requests_ok: u64,
    /// Requests answered with a typed error response.
    pub requests_error: u64,
    /// Jobs whose graph came from the shared graph cache.
    pub graph_cache_hits: u64,
    /// Jobs whose graph had to be built.
    pub graph_cache_misses: u64,
    /// Requests answered from the memoization layer.
    pub memo_hits: u64,
    /// Requests that missed the memoization layer and executed.
    pub memo_misses: u64,
    /// Request bytes read off the wire.
    pub bytes_in: u64,
    /// Response bytes written to the wire.
    pub bytes_out: u64,
}

impl ServiceCounters {
    /// Whether every submitted job is accounted for by exactly one terminal
    /// bucket. The batch runtime asserts this after draining.
    pub fn balanced(&self) -> bool {
        self.submitted == self.completed + self.failed + self.cancelled + self.rejected
    }
}

impl std::fmt::Display for ServiceCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted = {} completed + {} failed + {} cancelled + {} rejected ({})",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.rejected,
            if self.balanced() {
                "balanced"
            } else {
                "UNBALANCED"
            }
        )?;
        writeln!(
            f,
            "resilience: {} retries, {} deadline kills, {} panics contained, {} degraded",
            self.retries, self.deadline_kills, self.panics_contained, self.degraded
        )?;
        write!(
            f,
            "pressure: queue peak {}, {} quarantined, {} breaker trips",
            self.queue_peak, self.quarantined, self.breaker_opened
        )?;
        // The serve line only appears once the metrics have actually seen
        // wire traffic, so batch-mode output is unchanged.
        if self.connections > 0 || self.requests_ok + self.requests_error > 0 {
            write!(
                f,
                "\nserve: {} conns, {} ok + {} error responses, graph cache {}/{} hit, \
                 memo {}/{} hit, {} B in / {} B out",
                self.connections,
                self.requests_ok,
                self.requests_error,
                self.graph_cache_hits,
                self.graph_cache_hits + self.graph_cache_misses,
                self.memo_hits,
                self.memo_hits + self.memo_misses,
                self.bytes_in,
                self.bytes_out
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ServiceMetrics::new();
        for _ in 0..5 {
            m.job_submitted();
        }
        m.job_completed();
        m.job_completed();
        m.job_failed();
        m.job_cancelled();
        m.deadline_kill();
        m.job_rejected();
        m.retry_scheduled();
        m.panic_contained();
        let c = m.snapshot();
        assert_eq!(c.submitted, 5);
        assert_eq!(c.completed, 2);
        assert_eq!(c.failed, 1);
        assert_eq!(c.cancelled, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.deadline_kills, 1);
        assert!(c.balanced(), "{c}");
    }

    #[test]
    fn queue_gauge_tracks_depth_and_peak() {
        let m = ServiceMetrics::new();
        m.queue_entered();
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        let c = m.snapshot();
        assert_eq!(c.queue_depth, 2);
        assert_eq!(c.queue_peak, 3);
    }

    #[test]
    fn queue_gauge_saturates_at_zero_instead_of_wrapping() {
        let m = ServiceMetrics::new();
        m.queue_left(); // stray decrement: must not wrap to u64::MAX
        assert_eq!(m.snapshot().queue_depth, 0);
        m.queue_entered(); // ...and must not overflow-panic afterwards
        let c = m.snapshot();
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.queue_peak, 1);
    }

    #[test]
    fn serve_counters_accumulate_and_render_only_when_used() {
        let m = ServiceMetrics::new();
        assert!(
            !format!("{}", m.snapshot()).contains("serve:"),
            "idle metrics must not grow a serve line"
        );
        m.conn_opened();
        m.request_ok();
        m.request_ok();
        m.request_error();
        m.graph_cache_miss();
        m.graph_cache_hit();
        m.memo_miss();
        m.memo_hit();
        m.add_bytes_in(120);
        m.add_bytes_out(480);
        let c = m.snapshot();
        assert_eq!(c.connections, 1);
        assert_eq!(c.requests_ok, 2);
        assert_eq!(c.requests_error, 1);
        assert_eq!((c.graph_cache_hits, c.graph_cache_misses), (1, 1));
        assert_eq!((c.memo_hits, c.memo_misses), (1, 1));
        assert_eq!((c.bytes_in, c.bytes_out), (120, 480));
        let line = format!("{c}");
        assert!(line.contains("serve: 1 conns"), "{line}");
        assert!(line.contains("memo 1/2 hit"), "{line}");
    }

    #[test]
    fn unbalanced_ledger_is_detected() {
        let m = ServiceMetrics::new();
        m.job_submitted();
        m.job_submitted();
        m.job_completed();
        let c = m.snapshot();
        assert!(!c.balanced());
        assert!(format!("{c}").contains("UNBALANCED"));
    }

    #[test]
    fn metrics_are_shareable_across_threads() {
        let m = std::sync::Arc::new(ServiceMetrics::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.job_submitted();
                        m.job_completed();
                    }
                });
            }
        });
        let c = m.snapshot();
        assert_eq!(c.submitted, 4000);
        assert_eq!(c.completed, 4000);
        assert!(c.balanced());
    }
}
