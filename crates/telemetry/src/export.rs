//! Serializers for recorded telemetry: Chrome trace-event JSON (loadable in
//! `ui.perfetto.dev` or `chrome://tracing`), a tidy per-window CSV, and a
//! mesh-link utilization heatmap JSON keyed by `(x, y, direction, window)`.
//!
//! Timestamps in the Chrome trace use **1 cycle = 1 µs** (the trace-event
//! format counts microseconds); wall-clock time at a given `clock_mhz` is
//! `cycles / clock_mhz` µs. The conversion factor is recorded in the trace's
//! `otherData` so tooling can rescale.

use std::io::{self, Write};
use std::path::Path;

use crate::recorder::Recorder;
use crate::{DIR_NAMES, INSTANT_TRACK};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes one trace event object, prefixing a comma separator unless it is
/// the first.
struct EventWriter<'w, W: Write> {
    w: &'w mut W,
    first: bool,
}

impl<'w, W: Write> EventWriter<'w, W> {
    fn new(w: &'w mut W) -> Self {
        EventWriter { w, first: true }
    }

    fn event(&mut self, body: &str) -> io::Result<()> {
        if self.first {
            self.first = false;
        } else {
            self.w.write_all(b",\n  ")?;
        }
        self.w.write_all(body.as_bytes())
    }
}

impl Recorder {
    /// Writes the recording as Chrome trace-event JSON.
    ///
    /// The output is an object format trace (`{"traceEvents": [...]}`) with
    /// metadata naming the process and the timeline tracks, `B`/`E` span
    /// pairs (always balanced — the recorder closes open spans at run end),
    /// `C` counter events for the windowed tile/HBM series, and `i` instant
    /// events for fault/watchdog activity. Load it at <https://ui.perfetto.dev>.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"{\"traceEvents\": [\n  ")?;
        let mut ev = EventWriter::new(w);

        ev.event("{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"scalagraph-sim\"}}")?;
        let tracks: [(u64, &str); 5] = [
            (0, "run"),
            (1, "iterations"),
            (2, "scatter"),
            (3, "apply"),
            (INSTANT_TRACK, "events"),
        ];
        for (tid, name) in tracks {
            ev.event(&format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{name}\"}}}}"
            ))?;
        }

        for span in self.spans() {
            let name = json_escape(&span.name.to_string());
            let tid = span.name.track();
            ev.event(&format!(
                "{{\"ph\": \"B\", \"pid\": 0, \"tid\": {tid}, \"ts\": {}, \"name\": \"{name}\"}}",
                span.begin
            ))?;
            ev.event(&format!(
                "{{\"ph\": \"E\", \"pid\": 0, \"tid\": {tid}, \"ts\": {}, \"name\": \"{name}\"}}",
                span.end
            ))?;
        }

        for row in self.tile_windows() {
            ev.event(&format!(
                "{{\"ph\": \"C\", \"pid\": 0, \"ts\": {}, \"name\": \"tile{}\", \"args\": {{\"gu_busy\": {}, \"queue_depth\": {}, \"agg_merges\": {}, \"dispatched_edges\": {}}}}}",
                row.start_cycle,
                row.tile,
                row.sample.gu_busy,
                row.sample.queue_depth,
                row.sample.agg_merges,
                row.sample.dispatched_edges
            ))?;
        }

        for row in self.hbm_windows() {
            // HBM rows carry no start cycle; the nominal window start is
            // exact for every full window and only approximate for the
            // final partial one.
            let ts = (row.window * self.window_cycles()).min(self.run_cycles());
            ev.event(&format!(
                "{{\"ph\": \"C\", \"pid\": 0, \"ts\": {ts}, \"name\": \"hbm t{}c{}\", \"args\": {{\"bytes\": {}, \"stall_cycles\": {}, \"outstanding\": {}}}}}",
                row.tile, row.channel, row.sample.bytes, row.sample.stall_cycles, row.sample.outstanding
            ))?;
        }

        for (cycle, kind) in self.events() {
            let name = json_escape(&kind.to_string());
            ev.event(&format!(
                "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {INSTANT_TRACK}, \"ts\": {cycle}, \"s\": \"g\", \"name\": \"{name}\"}}"
            ))?;
        }

        let topo = self.topology();
        write!(
            w,
            "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {{\"tool\": \"scalagraph-telemetry\", \"cycles_per_us\": 1, \"clock_mhz\": {}, \"window_cycles\": {}, \"tiles\": {}, \"rows_per_tile\": {}, \"cols\": {}, \"channels_per_tile\": {}}}}}\n",
            topo.clock_mhz,
            self.window_cycles(),
            topo.tiles,
            topo.rows_per_tile,
            topo.cols,
            topo.channels_per_tile
        )
    }

    /// Writes the windowed time-series as a tidy CSV:
    /// `kind,window,subject,metric,value` — one row per metric, easy to
    /// pivot in pandas/R/spreadsheets.
    pub fn write_windows_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "kind,window,subject,metric,value")?;
        for row in self.tile_windows() {
            let t = row.tile;
            let s = row.sample;
            for (metric, value) in [
                ("gu_busy", s.gu_busy),
                ("queue_depth", s.queue_depth),
                ("agg_merges", s.agg_merges),
                ("dispatched_edges", s.dispatched_edges),
            ] {
                writeln!(w, "tile,{},tile{t},{metric},{value}", row.window)?;
            }
        }
        for row in self.hbm_windows() {
            let s = row.sample;
            for (metric, value) in [
                ("bytes", s.bytes),
                ("stall_cycles", s.stall_cycles),
                ("outstanding", s.outstanding),
            ] {
                writeln!(
                    w,
                    "hbm,{},t{}c{},{metric},{value}",
                    row.window, row.tile, row.channel
                )?;
            }
        }
        for row in self.link_windows() {
            let subject = format!("pe{}:{}", row.node, DIR_NAMES[row.dir]);
            writeln!(
                w,
                "link,{},{subject},traversals,{}",
                row.window, row.traversals
            )?;
            writeln!(w, "link,{},{subject},blocked,{}", row.window, row.blocked)?;
        }
        Ok(())
    }

    /// Writes the mesh-link utilization heatmap as JSON keyed by
    /// `(x, y, direction, window)`. Utilization is traversals divided by
    /// the window length (1.0 = one update every cycle). Only links with
    /// activity appear.
    pub fn write_link_heatmap<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let topo = self.topology();
        let cols = topo.cols.max(1);
        write!(
            w,
            "{{\"window_cycles\": {}, \"cols\": {}, \"rows\": {}, \"links\": [",
            self.window_cycles(),
            topo.cols,
            topo.global_rows()
        )?;
        for (i, row) in self.link_windows().iter().enumerate() {
            if i > 0 {
                w.write_all(b",")?;
            }
            write!(
                w,
                "\n  {{\"x\": {}, \"y\": {}, \"direction\": \"{}\", \"window\": {}, \"traversals\": {}, \"blocked\": {}, \"utilization\": {:.6}}}",
                row.node % cols,
                row.node / cols,
                DIR_NAMES[row.dir],
                row.window,
                row.traversals,
                row.blocked,
                row.traversals as f64 / self.window_cycles() as f64
            )?;
        }
        w.write_all(b"\n]}\n")
    }

    /// [`write_chrome_trace`](Self::write_chrome_trace) to a file path,
    /// creating parent directories.
    pub fn export_chrome_trace<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.export_with(path, Self::write_chrome_trace)
    }

    /// [`write_windows_csv`](Self::write_windows_csv) to a file path,
    /// creating parent directories.
    pub fn export_windows_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.export_with(path, Self::write_windows_csv)
    }

    /// [`write_link_heatmap`](Self::write_link_heatmap) to a file path,
    /// creating parent directories.
    pub fn export_link_heatmap<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.export_with(path, Self::write_link_heatmap)
    }

    fn export_with<P: AsRef<Path>>(
        &self,
        path: P,
        write: impl Fn(&Self, &mut io::BufWriter<std::fs::File>) -> io::Result<()>,
    ) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        write(self, &mut w)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, HbmChannelSample, InstantKind, SpanName, TileSample, Topology};

    fn recorded() -> Recorder {
        let mut r = Recorder::new(100);
        r.on_run_start(Topology {
            tiles: 1,
            rows_per_tile: 2,
            cols: 2,
            channels_per_tile: 2,
            clock_mhz: 250.0,
        });
        r.span_begin(0, SpanName::Iteration(0));
        r.span_begin(0, SpanName::Scatter { iter: 0, slice: 0 });
        r.link_traversal(0, crate::DIR_EAST, 4);
        r.routing_latency(3);
        r.tile_sample(
            0,
            TileSample {
                gu_busy: 42,
                queue_depth: 2,
                agg_merges: 7,
                dispatched_edges: 19,
            },
        );
        r.hbm_sample(
            0,
            1,
            HbmChannelSample {
                bytes: 4096,
                stall_cycles: 0,
                outstanding: 3,
            },
        );
        r.roll_window(100);
        r.instant(120, InstantKind::WatchdogStall { stalled_for: 64 });
        r.span_end(150, SpanName::Scatter { iter: 0, slice: 0 });
        r.span_end(160, SpanName::Iteration(0));
        r.on_run_end(200);
        r
    }

    #[test]
    fn chrome_trace_has_balanced_spans_and_metadata() {
        let mut buf = Vec::new();
        recorded().write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("scalagraph-sim"));
        let begins = text.matches("\"ph\": \"B\"").count();
        let ends = text.matches("\"ph\": \"E\"").count();
        assert_eq!(begins, ends);
        assert!(begins >= 3, "run + iteration + scatter spans expected");
        assert!(text.contains("\"ph\": \"C\""));
        assert!(text.contains("watchdog stall"));
        // Braces and brackets balance (cheap structural sanity check; the
        // integration tests run a real JSON parser over this output).
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn csv_is_tidy_and_covers_all_kinds() {
        let mut buf = Vec::new();
        recorded().write_windows_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("kind,window,subject,metric,value"));
        assert!(text.contains("tile,0,tile0,gu_busy,42"));
        assert!(text.contains("hbm,0,t0c1,bytes,4096"));
        assert!(text.contains("link,0,pe0:east,traversals,4"));
        for line in text.lines().skip(1) {
            assert_eq!(line.split(',').count(), 5, "not tidy: {line}");
        }
    }

    #[test]
    fn heatmap_keys_links_by_position() {
        let mut buf = Vec::new();
        recorded().write_link_heatmap(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"x\": 0"));
        assert!(text.contains("\"direction\": \"east\""));
        assert!(text.contains("\"utilization\": 0.040000"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_writes_files_with_parents() {
        let dir = std::env::temp_dir().join("scalagraph-telemetry-test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = recorded();
        let trace = dir.join("nested/trace.json");
        rec.export_chrome_trace(&trace).unwrap();
        rec.export_windows_csv(dir.join("windows.csv")).unwrap();
        rec.export_link_heatmap(dir.join("heatmap.json")).unwrap();
        assert!(trace.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
