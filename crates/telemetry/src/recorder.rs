//! The recording collector: windowed time-series, span timeline, latency
//! histogram, and the [`TelemetrySummary`] derived from them.

use crate::{Collector, HbmChannelSample, InstantKind, SpanName, TileSample, Topology};

/// Routing latencies are histogrammed exactly up to this many cycles; the
/// final bucket absorbs everything beyond (the true maximum is tracked
/// separately).
const LATENCY_BUCKETS: usize = 4096;

/// One finished metrics window of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileWindowRow {
    /// Window index (0-based).
    pub window: u64,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Tile index.
    pub tile: usize,
    /// The sampled activity.
    pub sample: TileSample,
}

/// One finished metrics window of one HBM pseudo-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmWindowRow {
    /// Window index (0-based).
    pub window: u64,
    /// Tile owning the channel.
    pub tile: usize,
    /// Pseudo-channel index.
    pub channel: usize,
    /// The sampled activity.
    pub sample: HbmChannelSample,
}

/// One mesh link's traffic over one metrics window. Only links that moved
/// or refused traffic produce rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkWindowRow {
    /// Window index (0-based).
    pub window: u64,
    /// Source PE of the directed link.
    pub node: usize,
    /// Direction index (1..=4).
    pub dir: usize,
    /// Updates that crossed the link this window.
    pub traversals: u64,
    /// Cycles the link refused traffic this window.
    pub blocked: u64,
}

/// Event-core activity over one metrics window: unit-visits the
/// event-driven engine executed vs. proved idle and skipped. Only the
/// event-driven engine produces rows (per-cycle engines visit every unit
/// and report nothing), so these are mode *diagnostics* — deliberately
/// kept out of [`TelemetrySummary`], which stays bit-identical across
/// stepped / fast-forward / event-driven execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventWindowRow {
    /// Window index (0-based).
    pub window: u64,
    /// Unit-visits executed this window.
    pub dispatched: u64,
    /// Unit-visits skipped this window (idle units plus whole-device
    /// skipped cycles).
    pub skipped: u64,
}

/// A recorded span (begin/end pair on the timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// What the span is.
    pub name: SpanName,
    /// Cycle the span opened.
    pub begin: u64,
    /// Cycle the span closed.
    pub end: u64,
}

/// The hottest (link, window) the recorder observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeakLink {
    /// Column of the source PE.
    pub x: usize,
    /// Global mesh row of the source PE.
    pub y: usize,
    /// Direction index (1..=4).
    pub dir: usize,
    /// Window index the peak occurred in.
    pub window: u64,
    /// Updates that crossed the link in that window.
    pub traversals: u64,
}

/// Aggregates distilled from a recording, cheap enough to attach to every
/// record of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySummary {
    /// Metrics window length in cycles.
    pub window_cycles: u64,
    /// Windows recorded (including the final partial one).
    pub windows: u64,
    /// Total run length in cycles.
    pub run_cycles: u64,
    /// The hottest (link, window), if any link carried traffic.
    pub peak_link: Option<PeakLink>,
    /// Peak per-link utilization in updates/cycle (peak traversals divided
    /// by the window length).
    pub peak_link_utilization: f64,
    /// Total link traversals across all windows.
    pub total_link_traversals: u64,
    /// Median routing latency in cycles (0 when nothing was delivered).
    pub routing_latency_p50: u64,
    /// 95th-percentile routing latency in cycles.
    pub routing_latency_p95: u64,
    /// Maximum routing latency in cycles.
    pub routing_latency_max: u64,
    /// Cycles covered by a Scatter span with no Apply span active.
    pub scatter_only_cycles: u64,
    /// Cycles covered by an Apply span with no Scatter span active.
    pub apply_only_cycles: u64,
    /// Cycles where Scatter and Apply spans overlapped (inter-phase
    /// pipelining at work).
    pub overlap_cycles: u64,
    /// Off-chip bytes observed through the per-channel windows.
    pub offchip_bytes: u64,
    /// Fault/watchdog instants recorded.
    pub instants: u64,
}

impl std::fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "telemetry: {} windows of {} cycles over {} cycles",
            self.windows, self.window_cycles, self.run_cycles
        )?;
        match self.peak_link {
            Some(p) => writeln!(
                f,
                "  peak link        : ({},{}) {} in window {} — {} updates ({:.3}/cycle)",
                p.x,
                p.y,
                crate::DIR_NAMES[p.dir],
                p.window,
                p.traversals,
                self.peak_link_utilization
            )?,
            None => writeln!(f, "  peak link        : none (no NoC traffic)")?,
        }
        writeln!(
            f,
            "  routing latency  : p50 {} / p95 {} / max {} cycles",
            self.routing_latency_p50, self.routing_latency_p95, self.routing_latency_max
        )?;
        writeln!(
            f,
            "  phase breakdown  : scatter-only {} / apply-only {} / overlapped {} cycles",
            self.scatter_only_cycles, self.apply_only_cycles, self.overlap_cycles
        )?;
        writeln!(
            f,
            "  link traversals  : {} total",
            self.total_link_traversals
        )?;
        write!(
            f,
            "  off-chip traffic : {:.2} MB | fault/watchdog events: {}",
            self.offchip_bytes as f64 / 1e6,
            self.instants
        )
    }
}

/// The recording [`Collector`]: accumulates windowed metrics, spans, and
/// instants, and exports them (see the [`export`](crate::export) module and
/// the `write_*` methods).
#[derive(Debug, Clone)]
pub struct Recorder {
    pub(crate) topo: Topology,
    pub(crate) window: u64,
    window_start: u64,
    window_index: u64,
    end_cycle: u64,
    /// Current-window per-link traversal counts, `node * 4 + (dir - 1)`.
    cur_links: Vec<u64>,
    /// Current-window per-link back-pressure counts.
    cur_blocked: Vec<u64>,
    pub(crate) tile_rows: Vec<TileWindowRow>,
    pub(crate) hbm_rows: Vec<HbmWindowRow>,
    pub(crate) link_rows: Vec<LinkWindowRow>,
    pub(crate) spans: Vec<SpanRecord>,
    open_spans: Vec<(SpanName, u64)>,
    pub(crate) instants: Vec<(u64, InstantKind)>,
    event_rows: Vec<EventWindowRow>,
    latency_hist: Vec<u64>,
    latency_count: u64,
    latency_max: u64,
}

impl Recorder {
    /// A recorder sampling every `window` cycles (clamped to at least 1).
    pub fn new(window: u64) -> Self {
        Recorder {
            topo: Topology::default(),
            window: window.max(1),
            window_start: 0,
            window_index: 0,
            end_cycle: 0,
            cur_links: Vec::new(),
            cur_blocked: Vec::new(),
            tile_rows: Vec::new(),
            hbm_rows: Vec::new(),
            link_rows: Vec::new(),
            spans: Vec::new(),
            open_spans: Vec::new(),
            instants: Vec::new(),
            event_rows: Vec::new(),
            latency_hist: vec![0; LATENCY_BUCKETS],
            latency_count: 0,
            latency_max: 0,
        }
    }

    /// The machine geometry captured at run start.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The metrics window length in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window
    }

    /// Finished per-tile window rows, in (window, tile) order.
    pub fn tile_windows(&self) -> &[TileWindowRow] {
        &self.tile_rows
    }

    /// Finished per-channel window rows.
    pub fn hbm_windows(&self) -> &[HbmWindowRow] {
        &self.hbm_rows
    }

    /// Finished per-link window rows (links with activity only).
    pub fn link_windows(&self) -> &[LinkWindowRow] {
        &self.link_rows
    }

    /// Recorded spans. All spans are closed once
    /// [`on_run_end`](Collector::on_run_end) has run.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Recorded instants as `(cycle, kind)`.
    pub fn events(&self) -> &[(u64, InstantKind)] {
        &self.instants
    }

    /// The cycle the run ended at.
    pub fn run_cycles(&self) -> u64 {
        self.end_cycle
    }

    /// Event-core diagnostics per window (event-driven runs only; empty
    /// otherwise). Windows where nothing was dispatched *or* skipped
    /// produce no row.
    pub fn event_windows(&self) -> &[EventWindowRow] {
        &self.event_rows
    }

    /// Total event-core unit-visits over the whole run, as
    /// `(dispatched, skipped)`. `(0, 0)` for per-cycle runs.
    pub fn event_core_totals(&self) -> (u64, u64) {
        self.event_rows
            .iter()
            .fold((0, 0), |(d, s), r| (d + r.dispatched, s + r.skipped))
    }

    /// Fraction of unit-visits the event-driven run actually executed:
    /// `dispatched / (dispatched + skipped)`. `None` when no event-core
    /// rows were recorded (per-cycle runs).
    pub fn event_busy_fraction(&self) -> Option<f64> {
        let (d, s) = self.event_core_totals();
        if d + s == 0 {
            None
        } else {
            Some(d as f64 / (d + s) as f64)
        }
    }

    fn flush_links(&mut self, window: u64) {
        for idx in 0..self.cur_links.len() {
            let (traversals, blocked) = (self.cur_links[idx], self.cur_blocked[idx]);
            if traversals == 0 && blocked == 0 {
                continue;
            }
            self.link_rows.push(LinkWindowRow {
                window,
                node: idx / 4,
                dir: idx % 4 + 1,
                traversals,
                blocked,
            });
            self.cur_links[idx] = 0;
            self.cur_blocked[idx] = 0;
        }
    }

    /// Routing-latency percentile from the histogram (`q` in `[0, 1]`).
    fn latency_percentile(&self, q: f64) -> u64 {
        if self.latency_count == 0 {
            return 0;
        }
        let rank = ((self.latency_count as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.latency_hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The overflow bucket reports the observed maximum.
                return if bucket == LATENCY_BUCKETS - 1 {
                    self.latency_max
                } else {
                    bucket as u64
                };
            }
        }
        self.latency_max
    }

    /// Scatter/Apply overlap breakdown via an interval sweep over the span
    /// timeline.
    fn phase_breakdown(&self) -> (u64, u64, u64) {
        // Events: (cycle, track, +1/-1) for Scatter (track 2) and Apply
        // (track 3) spans.
        let mut edges: Vec<(u64, u64, i64)> = Vec::new();
        for s in &self.spans {
            let track = s.name.track();
            if track == 2 || track == 3 {
                edges.push((s.begin, track, 1));
                edges.push((s.end, track, -1));
            }
        }
        edges.sort_unstable();
        let (mut scatter, mut apply) = (0i64, 0i64);
        let (mut scatter_only, mut apply_only, mut overlap) = (0u64, 0u64, 0u64);
        let mut prev = 0u64;
        for (cycle, track, delta) in edges {
            let len = cycle.saturating_sub(prev);
            match (scatter > 0, apply > 0) {
                (true, true) => overlap += len,
                (true, false) => scatter_only += len,
                (false, true) => apply_only += len,
                (false, false) => {}
            }
            prev = cycle;
            if track == 2 {
                scatter += delta;
            } else {
                apply += delta;
            }
        }
        (scatter_only, apply_only, overlap)
    }

    /// Distills the recording into a [`TelemetrySummary`].
    pub fn summary(&self) -> TelemetrySummary {
        let peak = self
            .link_rows
            .iter()
            .max_by_key(|r| r.traversals)
            .filter(|r| r.traversals > 0);
        let peak_link = peak.map(|r| PeakLink {
            x: r.node % self.topo.cols.max(1),
            y: r.node / self.topo.cols.max(1),
            dir: r.dir,
            window: r.window,
            traversals: r.traversals,
        });
        let (scatter_only, apply_only, overlap) = self.phase_breakdown();
        TelemetrySummary {
            window_cycles: self.window,
            windows: self.window_index,
            run_cycles: self.end_cycle,
            peak_link,
            peak_link_utilization: peak
                .map(|r| r.traversals as f64 / self.window as f64)
                .unwrap_or(0.0),
            total_link_traversals: self.link_rows.iter().map(|r| r.traversals).sum(),
            routing_latency_p50: self.latency_percentile(0.50),
            routing_latency_p95: self.latency_percentile(0.95),
            routing_latency_max: self.latency_max,
            scatter_only_cycles: scatter_only,
            apply_only_cycles: apply_only,
            overlap_cycles: overlap,
            offchip_bytes: self.hbm_rows.iter().map(|r| r.sample.bytes).sum(),
            instants: self.instants.len() as u64,
        }
    }
}

impl Collector for Recorder {
    const ENABLED: bool = true;

    fn on_run_start(&mut self, topo: Topology) {
        self.topo = topo;
        let links = topo.num_nodes() * 4;
        self.cur_links = vec![0; links];
        self.cur_blocked = vec![0; links];
        self.window_start = 0;
        self.window_index = 0;
        self.spans.push(SpanRecord {
            name: SpanName::Run,
            begin: 0,
            end: 0,
        });
        // The Run span is re-closed at on_run_end; track it as open.
        self.spans.pop();
        self.open_spans.push((SpanName::Run, 0));
    }

    fn on_run_end(&mut self, now: u64) {
        self.end_cycle = now;
        // Close every open span so begin/end events always balance.
        while let Some((name, begin)) = self.open_spans.pop() {
            self.spans.push(SpanRecord {
                name,
                begin,
                end: now,
            });
        }
        self.spans.sort_by_key(|s| (s.begin, s.name.track()));
    }

    fn window_due(&self, now: u64) -> bool {
        now >= self.window_start + self.window
    }

    fn window_deadline(&self) -> Option<u64> {
        Some(self.window_start + self.window)
    }

    fn roll_window(&mut self, now: u64) {
        let window = self.window_index;
        self.flush_links(window);
        self.window_index += 1;
        // Re-anchor instead of adding `window` so a late roll (the final
        // partial window) does not generate phantom empty windows.
        self.window_start = now;
    }

    fn tile_sample(&mut self, tile: usize, sample: TileSample) {
        self.tile_rows.push(TileWindowRow {
            window: self.window_index,
            start_cycle: self.window_start,
            tile,
            sample,
        });
    }

    fn hbm_sample(&mut self, tile: usize, channel: usize, sample: HbmChannelSample) {
        self.hbm_rows.push(HbmWindowRow {
            window: self.window_index,
            tile,
            channel,
            sample,
        });
    }

    fn link_traversal(&mut self, node: usize, dir: usize, count: u64) {
        debug_assert!((1..=4).contains(&dir));
        let idx = node * 4 + (dir - 1);
        if let Some(slot) = self.cur_links.get_mut(idx) {
            *slot += count;
        }
    }

    fn link_backpressure(&mut self, node: usize, dir: usize) {
        let idx = node * 4 + (dir.saturating_sub(1));
        if let Some(slot) = self.cur_blocked.get_mut(idx) {
            *slot += 1;
        }
    }

    fn routing_latency(&mut self, cycles: u64) {
        let bucket = (cycles as usize).min(LATENCY_BUCKETS - 1);
        self.latency_hist[bucket] += 1;
        self.latency_count += 1;
        self.latency_max = self.latency_max.max(cycles);
    }

    fn span_begin(&mut self, now: u64, span: SpanName) {
        self.open_spans.push((span, now));
    }

    fn span_end(&mut self, now: u64, span: SpanName) {
        if let Some(pos) = self.open_spans.iter().rposition(|&(n, _)| n == span) {
            let (name, begin) = self.open_spans.remove(pos);
            self.spans.push(SpanRecord {
                name,
                begin,
                end: now,
            });
        }
    }

    fn instant(&mut self, now: u64, event: InstantKind) {
        self.instants.push((now, event));
    }

    fn event_core_sample(&mut self, dispatched: u64, skipped: u64) {
        if dispatched == 0 && skipped == 0 {
            return;
        }
        self.event_rows.push(EventWindowRow {
            window: self.window_index,
            dispatched,
            skipped,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DIR_EAST;

    fn topo22() -> Topology {
        Topology {
            tiles: 1,
            rows_per_tile: 2,
            cols: 2,
            channels_per_tile: 2,
            clock_mhz: 250.0,
        }
    }

    #[test]
    fn windows_roll_and_flush_links() {
        let mut r = Recorder::new(100);
        r.on_run_start(topo22());
        assert!(!r.window_due(99));
        assert!(r.window_due(100));
        r.link_traversal(1, DIR_EAST, 3);
        r.link_traversal(1, DIR_EAST, 2);
        r.roll_window(100);
        r.link_traversal(0, DIR_EAST, 1);
        r.roll_window(200);
        r.on_run_end(200);
        assert_eq!(r.link_windows().len(), 2);
        assert_eq!(r.link_windows()[0].traversals, 5);
        assert_eq!(r.link_windows()[0].window, 0);
        assert_eq!(r.link_windows()[1].window, 1);
    }

    #[test]
    fn spans_balance_even_when_left_open() {
        let mut r = Recorder::new(10);
        r.on_run_start(topo22());
        r.span_begin(0, SpanName::Iteration(0));
        r.span_begin(5, SpanName::Scatter { iter: 0, slice: 0 });
        r.span_end(20, SpanName::Iteration(0));
        // Scatter left open: on_run_end must close it (and the Run span).
        r.on_run_end(30);
        assert_eq!(r.spans().len(), 3);
        assert!(r.spans().iter().all(|s| s.end >= s.begin));
        let scatter = r
            .spans()
            .iter()
            .find(|s| matches!(s.name, SpanName::Scatter { .. }))
            .unwrap();
        assert_eq!(scatter.end, 30);
    }

    #[test]
    fn latency_percentiles() {
        let mut r = Recorder::new(10);
        r.on_run_start(topo22());
        for lat in 1..=100u64 {
            r.routing_latency(lat);
        }
        r.on_run_end(100);
        let s = r.summary();
        assert_eq!(s.routing_latency_p50, 50);
        assert_eq!(s.routing_latency_p95, 95);
        assert_eq!(s.routing_latency_max, 100);
        assert!(s.routing_latency_p50 <= s.routing_latency_p95);
    }

    #[test]
    fn latency_overflow_bucket_reports_max() {
        let mut r = Recorder::new(10);
        r.on_run_start(topo22());
        r.routing_latency(1_000_000);
        r.on_run_end(10);
        let s = r.summary();
        assert_eq!(s.routing_latency_p50, 1_000_000);
        assert_eq!(s.routing_latency_max, 1_000_000);
    }

    #[test]
    fn phase_breakdown_detects_overlap() {
        let mut r = Recorder::new(10);
        r.on_run_start(topo22());
        r.span_begin(0, SpanName::Scatter { iter: 0, slice: 0 });
        r.span_end(100, SpanName::Scatter { iter: 0, slice: 0 });
        r.span_begin(60, SpanName::Apply(0));
        r.span_end(150, SpanName::Apply(0));
        r.on_run_end(150);
        let s = r.summary();
        assert_eq!(s.scatter_only_cycles, 60);
        assert_eq!(s.overlap_cycles, 40);
        assert_eq!(s.apply_only_cycles, 50);
    }

    #[test]
    fn event_core_rows_stay_out_of_the_summary() {
        let mut r = Recorder::new(100);
        r.on_run_start(topo22());
        let mut quiet = r.clone();
        r.event_core_sample(40, 360);
        r.roll_window(100);
        r.event_core_sample(0, 0); // empty window: no row
        r.roll_window(200);
        r.event_core_sample(10, 90);
        r.on_run_end(250);
        quiet.roll_window(100);
        quiet.roll_window(200);
        quiet.on_run_end(250);
        assert_eq!(r.event_windows().len(), 2);
        assert_eq!(r.event_windows()[0].window, 0);
        assert_eq!(r.event_windows()[1].window, 2);
        assert_eq!(r.event_core_totals(), (50, 450));
        assert!((r.event_busy_fraction().unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(quiet.event_busy_fraction(), None);
        // The diagnostics must not leak into the compared summary.
        assert_eq!(r.summary(), quiet.summary());
    }

    #[test]
    fn summary_peak_link_has_coordinates() {
        let mut r = Recorder::new(50);
        r.on_run_start(topo22());
        r.link_traversal(3, DIR_EAST, 7);
        r.roll_window(50);
        r.on_run_end(50);
        let s = r.summary();
        let p = s.peak_link.unwrap();
        assert_eq!((p.x, p.y, p.dir, p.traversals), (1, 1, DIR_EAST, 7));
        assert!((s.peak_link_utilization - 7.0 / 50.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("peak link"), "{text}");
    }
}
