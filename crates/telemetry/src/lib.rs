//! Time-resolved telemetry for the ScalaGraph simulator.
//!
//! The end-of-run aggregates in `SimStats` answer *how much* — this crate
//! answers *when* and *where*: when the mesh saturates, which links and HBM
//! pseudo-channels run hot, where inter-phase pipelining actually overlaps.
//!
//! The design splits into three pieces:
//!
//! * [`Collector`] — the hook trait the simulation engine emits into. Its
//!   associated `ENABLED` constant lets the engine guard every emission
//!   point with a compile-time `if C::ENABLED` branch, so a run with the
//!   default [`NullCollector`] monomorphizes to exactly the un-instrumented
//!   machine: bit-identical results, no measurable overhead.
//! * [`Recorder`] — the full-fat collector: windowed time-series of
//!   per-tile and per-HBM-channel activity, per-mesh-link traversal counts,
//!   a span timeline of phases/iterations/slices, instantaneous fault and
//!   watchdog events, and a routing-latency histogram.
//! * [`export`] — serializers for the captured data: Chrome trace-event
//!   JSON (loadable in `ui.perfetto.dev` or `chrome://tracing`), a
//!   per-window CSV, and a mesh-link heatmap JSON keyed by
//!   `(x, y, direction, window)`.
//!
//! # Example
//!
//! ```
//! use scalagraph_telemetry::{Recorder, Topology};
//!
//! let mut rec = Recorder::new(256);
//! // The engine drives the collector; here we stand in for it.
//! use scalagraph_telemetry::{Collector, SpanName};
//! rec.on_run_start(Topology { tiles: 1, rows_per_tile: 2, cols: 2, channels_per_tile: 1, clock_mhz: 250.0 });
//! rec.span_begin(0, SpanName::Iteration(0));
//! rec.link_traversal(0, 4, 3);
//! rec.routing_latency(5);
//! rec.span_end(900, SpanName::Iteration(0));
//! rec.on_run_end(1000);
//! let summary = rec.summary();
//! assert_eq!(summary.run_cycles, 1000);
//! let mut json = Vec::new();
//! rec.write_chrome_trace(&mut json).unwrap();
//! assert!(String::from_utf8(json).unwrap().contains("traceEvents"));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod export;
pub mod recorder;
pub mod service;

pub use recorder::{
    EventWindowRow, HbmWindowRow, LinkWindowRow, PeakLink, Recorder, TelemetrySummary,
    TileWindowRow,
};
pub use service::{ServiceCounters, ServiceMetrics};

/// Router output-port direction indices, matching the engine's encoding:
/// 0 = eject (local scratchpad), 1..=4 the four mesh directions.
pub const DIR_EJECT: usize = 0;
/// Towards the row above.
pub const DIR_NORTH: usize = 1;
/// Towards the row below.
pub const DIR_SOUTH: usize = 2;
/// Towards the column to the left.
pub const DIR_WEST: usize = 3;
/// Towards the column to the right.
pub const DIR_EAST: usize = 4;

/// Human-readable names for the direction indices above.
pub const DIR_NAMES: [&str; 5] = ["eject", "north", "south", "west", "east"];

/// Geometry of the machine being observed, given to the collector at run
/// start so it can size its per-tile/per-link/per-channel storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Number of tiles (each with a private HBM stack).
    pub tiles: usize,
    /// PE rows per tile.
    pub rows_per_tile: usize,
    /// PE columns (global across tiles).
    pub cols: usize,
    /// HBM pseudo-channels per tile.
    pub channels_per_tile: usize,
    /// Effective clock in MHz (trace metadata only).
    pub clock_mhz: f64,
}

impl Topology {
    /// Total PEs (mesh nodes).
    pub fn num_nodes(&self) -> usize {
        self.tiles * self.rows_per_tile * self.cols
    }

    /// Rows of the global mesh (tiles stacked vertically).
    pub fn global_rows(&self) -> usize {
        self.tiles * self.rows_per_tile
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            tiles: 1,
            rows_per_tile: 1,
            cols: 1,
            channels_per_tile: 1,
            clock_mhz: 250.0,
        }
    }
}

/// A named interval on the span timeline. Every variant lives on its own
/// timeline track so overlapping spans (a pipelined Scatter wave running
/// concurrently with an Apply pass) render side by side instead of nesting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanName {
    /// The whole run.
    Run,
    /// One algorithm iteration (indexed by the scatter wave it feeds).
    Iteration(u64),
    /// One Scatter wave: `(iteration, slice)`.
    Scatter {
        /// Iteration index of the wave.
        iter: u64,
        /// Graph slice being scattered.
        slice: u64,
    },
    /// One Apply pass, labelled by the iteration it completes.
    Apply(u64),
}

impl SpanName {
    /// Timeline track (Chrome trace `tid`) this span renders on.
    pub fn track(&self) -> u64 {
        match self {
            SpanName::Run => 0,
            SpanName::Iteration(_) => 1,
            SpanName::Scatter { .. } => 2,
            SpanName::Apply(_) => 3,
        }
    }
}

impl std::fmt::Display for SpanName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanName::Run => write!(f, "run"),
            SpanName::Iteration(i) => write!(f, "iteration {i}"),
            SpanName::Scatter { iter, slice } => write!(f, "scatter {iter}.{slice}"),
            SpanName::Apply(i) => write!(f, "apply {i}"),
        }
    }
}

/// Track index instants render on (below the span tracks).
pub const INSTANT_TRACK: u64 = 4;

/// A point event on the timeline: fault activations and watchdog firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantKind {
    /// An injected link fault discarded a flit leaving `node` via `dir`.
    FlitDropped {
        /// PE the flit left.
        node: usize,
        /// Direction index (1..=4).
        dir: usize,
    },
    /// An injected link fault parked a flit leaving `node` via `dir`.
    FlitDelayed {
        /// PE the flit left.
        node: usize,
        /// Direction index (1..=4).
        dir: usize,
    },
    /// An injected fault corrupted a flit's destination id.
    FlitCorrupted {
        /// PE the flit left.
        node: usize,
        /// Direction index (1..=4).
        dir: usize,
    },
    /// The fault plan pinned an HBM pseudo-channel.
    HbmStallInjected {
        /// Tile owning the channel.
        tile: usize,
        /// Pseudo-channel index.
        channel: usize,
        /// Stall duration in cycles.
        cycles: u64,
    },
    /// The progress watchdog fired after `stalled_for` quiet cycles.
    WatchdogStall {
        /// Quiet cycles observed before firing.
        stalled_for: u64,
    },
}

impl std::fmt::Display for InstantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantKind::FlitDropped { node, dir } => {
                write!(f, "flit dropped @pe{node}/{}", DIR_NAMES[*dir])
            }
            InstantKind::FlitDelayed { node, dir } => {
                write!(f, "flit delayed @pe{node}/{}", DIR_NAMES[*dir])
            }
            InstantKind::FlitCorrupted { node, dir } => {
                write!(f, "flit corrupted @pe{node}/{}", DIR_NAMES[*dir])
            }
            InstantKind::HbmStallInjected {
                tile,
                channel,
                cycles,
            } => write!(f, "hbm stall tile{tile}/ch{channel} ({cycles} cyc)"),
            InstantKind::WatchdogStall { stalled_for } => {
                write!(f, "watchdog stall ({stalled_for} quiet cycles)")
            }
        }
    }
}

/// One tile's activity over one metrics window (deltas over the window,
/// except `queue_depth` which is a point sample at the window boundary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileSample {
    /// GU busy cycles accumulated by the tile's PEs this window.
    pub gu_busy: u64,
    /// Point sample: GU input queue + router output occupancy, summed over
    /// the tile's PEs.
    pub queue_depth: u64,
    /// Updates coalesced by the tile's aggregation pipelines this window.
    pub agg_merges: u64,
    /// Edges dispatched by the tile's EDUs this window.
    pub dispatched_edges: u64,
}

/// One HBM pseudo-channel's activity over one metrics window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HbmChannelSample {
    /// Bytes serviced (reads + writes) this window.
    pub bytes: u64,
    /// Cycles this window the channel spent pinned by an injected stall.
    pub stall_cycles: u64,
    /// Point sample: requests queued or in flight at the window boundary.
    pub outstanding: u64,
}

/// The emission points of the simulation engine.
///
/// Every method has a no-op default so collectors implement only what they
/// record. The engine guards each call with `if C::ENABLED`, so a collector
/// whose `ENABLED` is `false` (the [`NullCollector`]) costs nothing — the
/// branches constant-fold away during monomorphization.
pub trait Collector {
    /// Compile-time switch the engine guards every hook with.
    const ENABLED: bool;

    /// The run is starting; `topo` describes the machine.
    fn on_run_start(&mut self, topo: Topology) {
        let _ = topo;
    }

    /// The run ended (successfully or not) at cycle `now`. Collectors
    /// close any open spans here.
    fn on_run_end(&mut self, now: u64) {
        let _ = now;
    }

    /// Whether the current metrics window ends at or before `now`. When it
    /// does, the engine samples every tile and channel
    /// ([`tile_sample`](Self::tile_sample) /
    /// [`hbm_sample`](Self::hbm_sample)) and then calls
    /// [`roll_window`](Self::roll_window).
    fn window_due(&self, now: u64) -> bool {
        let _ = now;
        false
    }

    /// Close the current metrics window at cycle `now` and start the next.
    fn roll_window(&mut self, now: u64) {
        let _ = now;
    }

    /// The cycle at which [`window_due`](Self::window_due) next turns true,
    /// if the collector samples on a window. Engines that fast-forward
    /// through idle cycles clamp their jump to this deadline so every window
    /// boundary is still observed at exactly the cycle it would have been
    /// when stepping. `None` means "no deadline"; an enabled collector
    /// without a known deadline therefore suppresses fast-forwarding.
    fn window_deadline(&self) -> Option<u64> {
        None
    }

    /// Per-window tile activity, delivered once per tile per window.
    fn tile_sample(&mut self, tile: usize, sample: TileSample) {
        let _ = (tile, sample);
    }

    /// Per-window HBM pseudo-channel activity.
    fn hbm_sample(&mut self, tile: usize, channel: usize, sample: HbmChannelSample) {
        let _ = (tile, channel, sample);
    }

    /// `count` updates crossed the link leaving `node` in direction `dir`
    /// (1..=4) this cycle.
    fn link_traversal(&mut self, node: usize, dir: usize, count: u64) {
        let _ = (node, dir, count);
    }

    /// The link leaving `node` in direction `dir` refused traffic this
    /// cycle (downstream buffer full or link downed).
    fn link_backpressure(&mut self, node: usize, dir: usize) {
        let _ = (node, dir);
    }

    /// An update reached its scratchpad `cycles` after injection.
    fn routing_latency(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// A span opened at cycle `now`.
    fn span_begin(&mut self, now: u64, span: SpanName) {
        let _ = (now, span);
    }

    /// A span closed at cycle `now`. Always paired with the
    /// [`span_begin`](Self::span_begin) carrying the same [`SpanName`].
    fn span_end(&mut self, now: u64, span: SpanName) {
        let _ = (now, span);
    }

    /// A point event occurred at cycle `now`.
    fn instant(&mut self, now: u64, event: InstantKind) {
        let _ = (now, event);
    }

    /// Event-core activity of the metrics window that just closed:
    /// `dispatched` unit-visits actually executed and `skipped` unit-visits
    /// the calendar proved idle and never touched. Emitted only by the
    /// event-driven engine (per-cycle engines visit everything and report
    /// nothing here), right before each [`roll_window`](Self::roll_window)
    /// and once more at run end for the final partial window. These are
    /// mode *diagnostics*: they live beside the compared telemetry, so
    /// summaries stay bit-identical across stepped / fast-forward /
    /// event-driven execution.
    fn event_core_sample(&mut self, dispatched: u64, skipped: u64) {
        let _ = (dispatched, skipped);
    }
}

/// The default collector: records nothing, costs nothing. With this
/// collector the engine compiles to exactly the un-instrumented machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullCollector;

impl Collector for NullCollector {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_collector_is_disabled_and_zero_sized() {
        assert!(!NullCollector::ENABLED);
        assert_eq!(std::mem::size_of::<NullCollector>(), 0);
        // The default hooks are callable no-ops.
        let mut c = NullCollector;
        c.on_run_start(Topology::default());
        c.link_traversal(0, DIR_EAST, 1);
        c.span_begin(0, SpanName::Run);
        c.span_end(1, SpanName::Run);
        c.on_run_end(1);
        assert!(!c.window_due(u64::MAX));
    }

    #[test]
    fn topology_derived_dims() {
        let t = Topology {
            tiles: 2,
            rows_per_tile: 16,
            cols: 4,
            channels_per_tile: 16,
            clock_mhz: 250.0,
        };
        assert_eq!(t.num_nodes(), 128);
        assert_eq!(t.global_rows(), 32);
    }

    #[test]
    fn span_tracks_are_distinct() {
        let spans = [
            SpanName::Run,
            SpanName::Iteration(0),
            SpanName::Scatter { iter: 0, slice: 0 },
            SpanName::Apply(0),
        ];
        let mut tracks: Vec<u64> = spans.iter().map(SpanName::track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        assert_eq!(tracks.len(), spans.len());
        assert!(tracks.iter().all(|&t| t != INSTANT_TRACK));
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(
            SpanName::Scatter { iter: 3, slice: 1 }.to_string(),
            "scatter 3.1"
        );
        assert_eq!(
            InstantKind::FlitDropped {
                node: 7,
                dir: DIR_WEST
            }
            .to_string(),
            "flit dropped @pe7/west"
        );
    }
}
