//! Minimal hand-rolled JSON: enough for scenario files, nothing more.
//!
//! The workspace deliberately has no `serde_json` dependency (the telemetry
//! exporters hand-roll their Chrome-trace JSON for the same reason), so the
//! conformance harness carries its own small value type, parser, and
//! pretty-printer. Integers are kept as `u64` end to end — scenario files
//! carry seeds and cycle counts that must survive a round trip without the
//! precision loss an `f64`-only representation would introduce.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token (no `.`, `e`, or sign).
    Int(u64),
    /// Any other numeric token.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so output is canonical.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required object member, as a scenario-flavoured error.
    pub fn req<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }

    /// Required unsigned-integer member.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("key `{key}` must be an unsigned integer"))
    }

    /// Required string member.
    pub fn req_str<'a>(&'a self, key: &str) -> Result<&'a str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("key `{key}` must be a string"))
    }

    /// Required bool member.
    pub fn req_bool(&self, key: &str) -> Result<bool, String> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| format!("key `{key}` must be a bool"))
    }

    /// Optional unsigned-integer member with a default.
    pub fn opt_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("key `{key}` must be an unsigned integer")),
        }
    }

    /// Optional bool member with a default.
    pub fn opt_bool(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("key `{key}` must be a bool")),
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical on-disk form of corpus files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the wire form used
    /// by line-delimited protocols, where a document must not contain a
    /// literal newline. Parses back to the same value as [`Json::pretty`].
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so the
                // byte stream is valid UTF-8).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if token.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if token.bytes().all(|b| b.is_ascii_digit()) {
        token
            .parse::<u64>()
            .map(Json::Int)
            .map_err(|_| format!("integer `{token}` out of range"))
    } else {
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number `{token}`"))
    }
}

/// Convenience object builder preserving member order.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("name", Json::Str("wedge \"quoted\"\n".into())),
            ("seed", Json::Int(u64::MAX)),
            (
                "list",
                Json::Arr(vec![Json::Int(1), Json::Bool(false), Json::Null]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn compact_output_is_single_line_and_round_trips() {
        let doc = obj(vec![
            ("name", Json::Str("a \"b\"\n".into())),
            ("seed", Json::Int(u64::MAX)),
            (
                "list",
                Json::Arr(vec![Json::Int(1), Json::Bool(false), Json::Null]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.compact();
        assert!(!text.contains('\n'), "{text}");
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(
            text,
            "{\"name\":\"a \\\"b\\\"\\n\",\"seed\":18446744073709551615,\
             \"list\":[1,false,null],\"empty\":{}}"
        );
    }

    #[test]
    fn pretty_output_is_stable() {
        let doc = obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Int(2)])),
        ]);
        assert_eq!(doc.pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn accessors_type_check() {
        let doc = parse("{\"n\": 3, \"s\": \"x\", \"b\": true}").unwrap();
        assert_eq!(doc.req_u64("n").unwrap(), 3);
        assert_eq!(doc.req_str("s").unwrap(), "x");
        assert!(doc.req_bool("b").unwrap());
        assert!(doc.req_u64("s").is_err());
        assert!(doc.req_u64("missing").is_err());
        assert_eq!(doc.opt_u64("missing", 7).unwrap(), 7);
        assert!(doc.opt_bool("n", false).is_err());
    }
}
