//! The differential oracle: runs one scenario across every declared
//! engine/mode/collector combination and diffs the results.
//!
//! The comparison matrix:
//!
//! | engine                  | properties | iterations/frontier | stats | telemetry |
//! |-------------------------|------------|---------------------|-------|-----------|
//! | reference (golden)      | —          | —                   | —     | —         |
//! | scalagraph/stepped      | vs golden  | vs golden¹          | —     | —         |
//! | scalagraph/fast-forward | bit-exact vs stepped | bit-exact  | bit-exact | —    |
//! | scalagraph/recording    | bit-exact vs stepped | bit-exact  | bit-exact | run_cycles = cycles |
//! | graphdyns               | vs golden  | vs golden           | —     | —         |
//! | gunrock                 | vs golden  | vs golden           | —     | —         |
//!
//! ¹ strict when inter-phase pipelining did not engage (or the scenario
//! forces `strict_frontier`); a pipelined Apply may legally observe
//! next-wave updates early and converge in fewer iterations, so the
//! pipelined check relaxes to `iterations <= reference`.
//!
//! Floating-point properties (PageRank) are compared to the golden run
//! within `1e-4` (reduction order differs per engine) but bit-exactly
//! *between* ScalaGraph execution modes.

use crate::scenario::{AlgoSpec, Expectation, Scenario};
use scalagraph::telemetry::Recorder;
use scalagraph::{ScalaGraphConfig, SimError, SimStats, Simulator};
use scalagraph_algo::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp, WidestPath};
use scalagraph_algo::{Algorithm, ReferenceEngine};
use scalagraph_baselines::{GraphDyns, GraphDynsConfig, GunrockModel};
use scalagraph_graph::Csr;

/// Engine label constants, used in [`Mismatch`] reports.
pub mod engines {
    /// The golden sequential engine.
    pub const REFERENCE: &str = "reference";
    /// ScalaGraph, stepping every cycle.
    pub const STEPPED: &str = "scalagraph/stepped";
    /// ScalaGraph with idle-cycle fast-forward.
    pub const FAST_FORWARD: &str = "scalagraph/fast-forward";
    /// ScalaGraph with the event-driven stepping core.
    pub const EVENT_DRIVEN: &str = "scalagraph/event-driven";
    /// ScalaGraph with a telemetry recorder attached.
    pub const RECORDING: &str = "scalagraph/recording";
    /// The GraphDynS baseline model.
    pub const GRAPHDYNS: &str = "graphdyns";
    /// The Gunrock GPU model.
    pub const GUNROCK: &str = "gunrock";
}

/// Final vertex properties in a comparison-friendly form.
#[derive(Debug, Clone, PartialEq)]
pub enum Props {
    /// Integer-valued algorithms (BFS, SSSP, CC, widest path).
    Ints(Vec<u32>),
    /// Float-valued algorithms (PageRank).
    Floats(Vec<f32>),
}

impl Props {
    fn len(&self) -> usize {
        match self {
            Props::Ints(v) => v.len(),
            Props::Floats(v) => v.len(),
        }
    }
}

/// Everything observed from one completed engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDigest {
    /// Final vertex properties.
    pub props: Props,
    /// Iterations executed.
    pub iterations: u64,
    /// Total traversed edges.
    pub traversed_edges: u64,
    /// Frontier size entering each iteration (empty for engines that do
    /// not expose it, i.e. Gunrock).
    pub frontier_sizes: Vec<usize>,
    /// Full counter set, for the cycle-accurate engines.
    pub stats: Option<SimStats>,
    /// `TelemetrySummary::run_cycles`, for the recording mode.
    pub telemetry_run_cycles: Option<u64>,
}

/// Everything observed from one failed engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorDigest {
    /// `SimError` variant name.
    pub variant: &'static str,
    /// Cycle of the stall snapshot (0 when the error carries none).
    pub cycle: u64,
    /// Cycles without progress at expiry.
    pub stalled_for: u64,
    /// Phase the sequencer was in.
    pub phase: String,
    /// Display form of the blamed unit.
    pub suspect: String,
}

impl ErrorDigest {
    fn from_error(e: &SimError) -> Self {
        let variant = match e {
            SimError::ConfigInvalid { .. } => "ConfigInvalid",
            SimError::ProtocolViolation { .. } => "ProtocolViolation",
            SimError::FaultUnrecoverable { .. } => "FaultUnrecoverable",
            SimError::DeadlockDetected { .. } => "DeadlockDetected",
            SimError::WatchdogStall { .. } => "WatchdogStall",
            SimError::CycleCapExceeded { .. } => "CycleCapExceeded",
            SimError::Cancelled { .. } => "Cancelled",
            SimError::DeadlineExceeded { .. } => "DeadlineExceeded",
            _ => "Unknown",
        };
        // The interruption variants carry no stall snapshot but do know the
        // cycle they fired on; surface it so digests of two interrupted
        // modes can be compared cycle-exactly.
        if let SimError::Cancelled { cycle, .. } | SimError::DeadlineExceeded { cycle, .. } = e {
            return ErrorDigest {
                variant,
                cycle: *cycle,
                stalled_for: 0,
                phase: String::new(),
                suspect: String::new(),
            };
        }
        match e.snapshot() {
            Some(s) => ErrorDigest {
                variant,
                cycle: s.cycle,
                stalled_for: s.stalled_for,
                phase: s.phase.to_string(),
                suspect: s.suspect.to_string(),
            },
            None => ErrorDigest {
                variant,
                cycle: 0,
                stalled_for: 0,
                phase: String::new(),
                suspect: String::new(),
            },
        }
    }
}

/// The outcome of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The run completed.
    Converged(Box<RunDigest>),
    /// The run surfaced a [`SimError`].
    Errored(ErrorDigest),
}

/// One engine's observation inside a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Engine label (see [`engines`]).
    pub engine: &'static str,
    /// What happened.
    pub outcome: Outcome,
}

/// One divergence between two engines, naming the first diverging field.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// The first field that diverged (e.g. `properties[17]`,
    /// `stats.noc_hops`, `iterations`).
    pub field: String,
    /// Engine on the left of the comparison.
    pub left_engine: String,
    /// Engine on the right of the comparison.
    pub right_engine: String,
    /// Left value, rendered.
    pub left: String,
    /// Right value, rendered.
    pub right: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} = {} but {} = {}",
            self.field, self.left_engine, self.left, self.right_engine, self.right
        )
    }
}

/// The oracle's verdict on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Per-engine observations, in a fixed order.
    pub observations: Vec<Observation>,
    /// All divergences found (empty = the scenario conforms).
    pub mismatches: Vec<Mismatch>,
}

impl Report {
    /// Whether the scenario met its expectation with no divergence.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Deterministic text rendering (what `scalagraph-sim replay` prints).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario `{}`: {}",
            self.scenario,
            if self.passed() { "PASS" } else { "MISMATCH" }
        );
        for o in &self.observations {
            match &o.outcome {
                Outcome::Converged(d) => {
                    let _ = writeln!(
                        out,
                        "  {:<24} converged: {} iterations, {} traversed edges",
                        o.engine, d.iterations, d.traversed_edges
                    );
                }
                Outcome::Errored(e) => {
                    let _ = writeln!(
                        out,
                        "  {:<24} {}: cycle {}, stalled {} cycles, suspect {}",
                        o.engine, e.variant, e.cycle, e.stalled_for, e.suspect
                    );
                }
            }
        }
        for m in &self.mismatches {
            let _ = writeln!(out, "  mismatch {m}");
        }
        out
    }
}

/// Runs the full differential oracle for one scenario.
///
/// # Errors
///
/// Returns a description when the scenario itself is malformed (graph or
/// configuration cannot be built, algorithm root out of range). Engine
/// failures are *observations*, not errors.
pub fn run_scenario(s: &Scenario) -> Result<Report, String> {
    if s.modes.is_empty() {
        return Err(format!(
            "scenario `{}` enables no comparison engines: the mode matrix is empty \
             (set at least one of fast_forward/event_driven/recording/graphdyns/gunrock)",
            s.name
        ));
    }
    // A knob the calendar cannot honor is a malformed scenario, not an
    // engine failure: surface it before any engine runs.
    if s.modes.event_driven && s.config.watchdog_stall_cycles == 0 {
        return Err(format!(
            "scenario `{}` enables the event_driven mode with the watchdog disabled; \
             the calendar needs a finite stall horizon (set watchdog_stall_cycles > 0)",
            s.name
        ));
    }
    // Dynamic scenarios run every batch through the same per-engine
    // machinery via `run_static_on`, with the incremental algorithms
    // differentially checked against each batch's full recompute.
    if s.mutations.is_some() {
        return crate::dynamic::run_dynamic_scenario(s);
    }
    let graph = s.graph.build()?;
    run_static_on(s, &graph)
}

/// Runs the per-engine comparison matrix for one (possibly mutated) graph
/// snapshot. The caller has already performed the scenario-level sanity
/// checks in [`run_scenario`].
pub(crate) fn run_static_on(s: &Scenario, graph: &Csr) -> Result<Report, String> {
    let n = graph.num_vertices() as u32;
    let root_ok = |root: u32| {
        if root < n {
            Ok(())
        } else {
            Err(format!("root {root} out of range for {n} vertices"))
        }
    };
    match s.algo {
        AlgoSpec::Bfs { root } => {
            root_ok(root)?;
            run_typed(s, graph, &Bfs::from_root(root), Props::Ints)
        }
        AlgoSpec::Sssp { root } => {
            root_ok(root)?;
            run_typed(s, graph, &Sssp::from_root(root), Props::Ints)
        }
        AlgoSpec::Cc => run_typed(s, graph, &ConnectedComponents::new(), Props::Ints),
        AlgoSpec::PageRank { iters } => {
            if iters == 0 {
                return Err("pagerank needs at least 1 iteration".into());
            }
            run_typed(s, graph, &PageRank::new(iters), Props::Floats)
        }
        AlgoSpec::WidestPath { root } => {
            root_ok(root)?;
            run_typed(s, graph, &WidestPath::from_root(root), Props::Ints)
        }
    }
}

fn run_typed<A, F>(s: &Scenario, graph: &Csr, algo: &A, wrap: F) -> Result<Report, String>
where
    A: Algorithm,
    F: Fn(Vec<A::Prop>) -> Props,
{
    let mut cfg = s.config.build()?;
    cfg.fault_plan = s.fault_plan();
    cfg.validate().map_err(|e| e.to_string())?;

    let mut observations = Vec::new();

    // Golden reference (skipped for wedge scenarios: it cannot wedge, and
    // nothing is compared against it there).
    let golden = match s.expect {
        Expectation::Converge => {
            let run = ReferenceEngine::new().run(algo, graph);
            let digest = RunDigest {
                props: wrap(run.properties),
                iterations: run.iterations as u64,
                traversed_edges: run.traversed_edges,
                frontier_sizes: run.frontier_sizes,
                stats: None,
                telemetry_run_cycles: None,
            };
            observations.push(Observation {
                engine: engines::REFERENCE,
                outcome: Outcome::Converged(Box::new(digest.clone())),
            });
            Some(digest)
        }
        Expectation::Wedge { .. } => None,
    };

    let sim_digest = |result: Result<scalagraph::SimResult<A::Prop>, SimError>,
                      telemetry_run_cycles: Option<u64>| match result {
        Ok(r) => Outcome::Converged(Box::new(RunDigest {
            props: wrap(r.properties),
            iterations: r.stats.iterations,
            traversed_edges: r.stats.traversed_edges,
            frontier_sizes: r.frontier_sizes,
            stats: Some(r.stats),
            telemetry_run_cycles,
        })),
        Err(e) => Outcome::Errored(ErrorDigest::from_error(&e)),
    };

    // ScalaGraph, stepped (always).
    let mut stepped_cfg = cfg.clone();
    stepped_cfg.fast_forward = false;
    let mut stepped = sim_digest(try_run(algo, graph, stepped_cfg), None);
    if s.synthetic_bug {
        // Test-only hook: skew the stepped observation so the oracle has a
        // reproducible "bug" for shrinker/replay plumbing tests.
        if let Outcome::Converged(d) = &mut stepped {
            d.iterations += 1;
        }
    }
    observations.push(Observation {
        engine: engines::STEPPED,
        outcome: stepped,
    });

    // ScalaGraph, fast-forward.
    if s.modes.fast_forward {
        let mut ff_cfg = cfg.clone();
        ff_cfg.fast_forward = true;
        observations.push(Observation {
            engine: engines::FAST_FORWARD,
            outcome: sim_digest(try_run(algo, graph, ff_cfg), None),
        });
    }

    // ScalaGraph, event-driven (implies fast-forward; the two knobs are
    // validated together, so set both).
    if s.modes.event_driven {
        let mut ev_cfg = cfg.clone();
        ev_cfg.fast_forward = true;
        ev_cfg.event_driven = true;
        observations.push(Observation {
            engine: engines::EVENT_DRIVEN,
            outcome: sim_digest(try_run(algo, graph, ev_cfg), None),
        });
    }

    // ScalaGraph, stepped with a recording collector.
    if s.modes.recording {
        let mut rec_cfg = cfg.clone();
        rec_cfg.fast_forward = false;
        let mut recorder = Recorder::new(1000);
        let result = Simulator::try_new(algo, graph, rec_cfg)
            .and_then(|mut sim| sim.try_run_with(&mut recorder));
        let run_cycles = recorder.summary().run_cycles;
        observations.push(Observation {
            engine: engines::RECORDING,
            outcome: sim_digest(result, Some(run_cycles)),
        });
    }

    // Baselines only make sense for converging scenarios: neither models
    // the NoC/HBM fault hooks, so a wedge cannot reproduce there.
    if matches!(s.expect, Expectation::Converge) {
        if s.modes.graphdyns {
            let run = GraphDyns::new(GraphDynsConfig::with_pes(s.config.pes)).run(algo, graph);
            observations.push(Observation {
                engine: engines::GRAPHDYNS,
                outcome: Outcome::Converged(Box::new(RunDigest {
                    props: wrap(run.properties),
                    iterations: run.stats.iterations,
                    traversed_edges: run.stats.traversed_edges,
                    frontier_sizes: run.frontier_sizes,
                    stats: None,
                    telemetry_run_cycles: None,
                })),
            });
        }
        if s.modes.gunrock {
            let run = GunrockModel::v100().run(algo, graph);
            observations.push(Observation {
                engine: engines::GUNROCK,
                outcome: Outcome::Converged(Box::new(RunDigest {
                    props: wrap(run.properties),
                    iterations: run.iterations as u64,
                    traversed_edges: run.traversed_edges,
                    frontier_sizes: Vec::new(),
                    stats: None,
                    telemetry_run_cycles: None,
                })),
            });
        }
    }

    let mismatches = diff(s, golden.as_ref(), &observations);
    Ok(Report {
        scenario: s.name.clone(),
        observations,
        mismatches,
    })
}

fn try_run<A: Algorithm>(
    algo: &A,
    graph: &Csr,
    cfg: ScalaGraphConfig,
) -> Result<scalagraph::SimResult<A::Prop>, SimError> {
    Simulator::try_new(algo, graph, cfg)?.try_run()
}

// ----- diffing ------------------------------------------------------------

fn find(observations: &[Observation], engine: &str) -> Option<Outcome> {
    observations
        .iter()
        .find(|o| o.engine == engine)
        .map(|o| o.outcome.clone())
}

fn diff(s: &Scenario, golden: Option<&RunDigest>, observations: &[Observation]) -> Vec<Mismatch> {
    match &s.expect {
        Expectation::Converge => diff_converge(s, golden, observations),
        Expectation::Wedge { suspect_contains } => diff_wedge(suspect_contains, observations),
    }
}

fn diff_converge(
    s: &Scenario,
    golden: Option<&RunDigest>,
    observations: &[Observation],
) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let golden = match golden {
        Some(g) => g,
        None => return out,
    };
    let stepped = match find(observations, engines::STEPPED) {
        Some(Outcome::Converged(d)) => Some(d),
        _ => None,
    };
    // Strict frontier comparison unless pipelining actually engaged.
    let strict = s.strict_frontier.unwrap_or_else(|| {
        stepped
            .as_deref()
            .and_then(|d| d.stats.as_ref())
            .is_none_or(|st| !st.inter_phase_used)
    });

    for o in observations {
        if o.engine == engines::REFERENCE {
            continue;
        }
        let digest = match &o.outcome {
            Outcome::Converged(d) => d,
            Outcome::Errored(e) => {
                out.push(Mismatch {
                    field: "outcome".into(),
                    left_engine: engines::REFERENCE.into(),
                    right_engine: o.engine.into(),
                    left: "converged".into(),
                    right: format!("{} ({})", e.variant, e.suspect),
                });
                continue;
            }
        };
        // Properties vs golden, always.
        diff_props(
            &mut out,
            engines::REFERENCE,
            o.engine,
            &golden.props,
            &digest.props,
            true,
        );
        // Frontier evolution vs golden. The baselines replicate the
        // reference loop structure exactly, so they are always strict; the
        // ScalaGraph modes follow the scenario's strictness.
        let scalagraph_mode = o.engine.starts_with("scalagraph/");
        if !scalagraph_mode || strict {
            push_ne(
                &mut out,
                "iterations",
                engines::REFERENCE,
                o.engine,
                golden.iterations,
                digest.iterations,
            );
            push_ne(
                &mut out,
                "traversed_edges",
                engines::REFERENCE,
                o.engine,
                golden.traversed_edges,
                digest.traversed_edges,
            );
            if !digest.frontier_sizes.is_empty() || scalagraph_mode {
                diff_seq(
                    &mut out,
                    "frontier_sizes",
                    engines::REFERENCE,
                    o.engine,
                    &golden.frontier_sizes,
                    &digest.frontier_sizes,
                );
            }
        } else if digest.iterations > golden.iterations {
            // Pipelining may converge in fewer iterations, never more.
            push_ne(
                &mut out,
                "iterations",
                engines::REFERENCE,
                o.engine,
                golden.iterations,
                digest.iterations,
            );
        }
        // Recording mode: the telemetry summary must agree with the
        // counters it observed.
        if let (Some(run_cycles), Some(stats)) = (digest.telemetry_run_cycles, &digest.stats) {
            push_ne(
                &mut out,
                "telemetry.run_cycles",
                o.engine,
                o.engine,
                stats.cycles,
                run_cycles,
            );
        }
    }

    // ScalaGraph execution modes must be bit-identical to stepped.
    if let Some(stepped) = &stepped {
        for mode in [
            engines::FAST_FORWARD,
            engines::EVENT_DRIVEN,
            engines::RECORDING,
        ] {
            if let Some(Outcome::Converged(other)) = find(observations, mode) {
                diff_sim_modes(&mut out, engines::STEPPED, mode, stepped, &other);
            }
        }
    }
    out
}

fn diff_wedge(suspect_contains: &str, observations: &[Observation]) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let stepped = match find(observations, engines::STEPPED) {
        Some(Outcome::Errored(e)) => e,
        Some(Outcome::Converged(_)) => {
            out.push(Mismatch {
                field: "outcome".into(),
                left_engine: "expectation".into(),
                right_engine: engines::STEPPED.into(),
                left: "wedge".into(),
                right: "converged".into(),
            });
            return out;
        }
        None => return out,
    };
    if !stepped.suspect.contains(suspect_contains) {
        out.push(Mismatch {
            field: "suspect".into(),
            left_engine: "expectation".into(),
            right_engine: engines::STEPPED.into(),
            left: format!("contains `{suspect_contains}`"),
            right: stepped.suspect.clone(),
        });
    }
    // Every other ScalaGraph mode must fail identically: same variant, same
    // cycle, same diagnosis.
    for mode in [
        engines::FAST_FORWARD,
        engines::EVENT_DRIVEN,
        engines::RECORDING,
    ] {
        match find(observations, mode) {
            None => {}
            Some(Outcome::Converged(_)) => out.push(Mismatch {
                field: "outcome".into(),
                left_engine: engines::STEPPED.into(),
                right_engine: mode.into(),
                left: stepped.variant.into(),
                right: "converged".into(),
            }),
            Some(Outcome::Errored(e)) => {
                push_ne(
                    &mut out,
                    "error.variant",
                    engines::STEPPED,
                    mode,
                    stepped.variant,
                    e.variant,
                );
                push_ne(
                    &mut out,
                    "error.cycle",
                    engines::STEPPED,
                    mode,
                    stepped.cycle,
                    e.cycle,
                );
                push_ne(
                    &mut out,
                    "error.stalled_for",
                    engines::STEPPED,
                    mode,
                    stepped.stalled_for,
                    e.stalled_for,
                );
                push_ne(
                    &mut out,
                    "error.phase",
                    engines::STEPPED,
                    mode,
                    &stepped.phase,
                    &e.phase,
                );
                push_ne(
                    &mut out,
                    "error.suspect",
                    engines::STEPPED,
                    mode,
                    &stepped.suspect,
                    &e.suspect,
                );
            }
        }
    }
    out
}

/// Full bit-identity between two ScalaGraph execution modes.
fn diff_sim_modes(
    out: &mut Vec<Mismatch>,
    left_engine: &str,
    right_engine: &str,
    left: &RunDigest,
    right: &RunDigest,
) {
    diff_props(
        out,
        left_engine,
        right_engine,
        &left.props,
        &right.props,
        false,
    );
    diff_seq(
        out,
        "frontier_sizes",
        left_engine,
        right_engine,
        &left.frontier_sizes,
        &right.frontier_sizes,
    );
    if let (Some(a), Some(b)) = (&left.stats, &right.stats) {
        if a != b {
            for ((name, va), (_, vb)) in stats_fields(a).into_iter().zip(stats_fields(b)) {
                if va != vb {
                    out.push(Mismatch {
                        field: format!("stats.{name}"),
                        left_engine: left_engine.into(),
                        right_engine: right_engine.into(),
                        left: va,
                        right: vb,
                    });
                    break; // first diverging field only
                }
            }
        }
    }
}

/// `SimStats` as ordered (field, value) pairs, for first-divergence naming.
fn stats_fields(s: &SimStats) -> Vec<(&'static str, String)> {
    vec![
        ("cycles", s.cycles.to_string()),
        ("scatter_cycles", s.scatter_cycles.to_string()),
        ("apply_cycles", s.apply_cycles.to_string()),
        ("iterations", s.iterations.to_string()),
        ("traversed_edges", s.traversed_edges.to_string()),
        ("updates_produced", s.updates_produced.to_string()),
        ("updates_injected", s.updates_injected.to_string()),
        ("updates_delivered", s.updates_delivered.to_string()),
        ("agg_merges", s.agg_merges.to_string()),
        ("noc_hops", s.noc_hops.to_string()),
        ("noc_conflicts", s.noc_conflicts.to_string()),
        ("routing_latency_sum", s.routing_latency_sum.to_string()),
        ("routing_latency_count", s.routing_latency_count.to_string()),
        ("gu_busy_cycles", s.gu_busy_cycles.to_string()),
        ("pe_cycle_budget", s.pe_cycle_budget.to_string()),
        ("offchip_bytes_read", s.offchip_bytes_read.to_string()),
        ("offchip_bytes_written", s.offchip_bytes_written.to_string()),
        ("offchip_reads", s.offchip_reads.to_string()),
        ("slices", s.slices.to_string()),
        ("inter_phase_used", s.inter_phase_used.to_string()),
        ("activations", s.activations.to_string()),
        ("epref_lines", s.epref_lines.to_string()),
        ("epref_piggybacks", s.epref_piggybacks.to_string()),
        ("vpref_lines", s.vpref_lines.to_string()),
        (
            "dispatch_starved_row_cycles",
            s.dispatch_starved_row_cycles.to_string(),
        ),
        ("applies", s.applies.to_string()),
        ("flits_dropped", s.flits_dropped.to_string()),
        ("flits_delayed", s.flits_delayed.to_string()),
        ("updates_corrupted", s.updates_corrupted.to_string()),
        ("hbm_stalls_injected", s.hbm_stalls_injected.to_string()),
    ]
}

fn diff_props(
    out: &mut Vec<Mismatch>,
    left_engine: &str,
    right_engine: &str,
    left: &Props,
    right: &Props,
    tolerant: bool,
) {
    if left.len() != right.len() {
        out.push(Mismatch {
            field: "properties.len".into(),
            left_engine: left_engine.into(),
            right_engine: right_engine.into(),
            left: left.len().to_string(),
            right: right.len().to_string(),
        });
        return;
    }
    match (left, right) {
        (Props::Ints(a), Props::Floats(_)) | (Props::Floats(_), Props::Ints(a)) => {
            out.push(Mismatch {
                field: "properties.type".into(),
                left_engine: left_engine.into(),
                right_engine: right_engine.into(),
                left: format!("{} ints vs floats", a.len()),
                right: "mixed property types".into(),
            });
        }
        (Props::Ints(a), Props::Ints(b)) => {
            if let Some(i) = (0..a.len()).find(|&i| a[i] != b[i]) {
                out.push(Mismatch {
                    field: format!("properties[{i}]"),
                    left_engine: left_engine.into(),
                    right_engine: right_engine.into(),
                    left: a[i].to_string(),
                    right: b[i].to_string(),
                });
            }
        }
        (Props::Floats(a), Props::Floats(b)) => {
            let differs = |i: usize| {
                if tolerant {
                    (a[i] - b[i]).abs() > 1e-4
                } else {
                    a[i].to_bits() != b[i].to_bits()
                }
            };
            if let Some(i) = (0..a.len()).find(|&i| differs(i)) {
                out.push(Mismatch {
                    field: format!("properties[{i}]"),
                    left_engine: left_engine.into(),
                    right_engine: right_engine.into(),
                    left: format!("{:e}", a[i]),
                    right: format!("{:e}", b[i]),
                });
            }
        }
    }
}

fn diff_seq(
    out: &mut Vec<Mismatch>,
    field: &str,
    left_engine: &str,
    right_engine: &str,
    left: &[usize],
    right: &[usize],
) {
    if left.len() != right.len() {
        out.push(Mismatch {
            field: format!("{field}.len"),
            left_engine: left_engine.into(),
            right_engine: right_engine.into(),
            left: left.len().to_string(),
            right: right.len().to_string(),
        });
        return;
    }
    if let Some(i) = (0..left.len()).find(|&i| left[i] != right[i]) {
        out.push(Mismatch {
            field: format!("{field}[{i}]"),
            left_engine: left_engine.into(),
            right_engine: right_engine.into(),
            left: left[i].to_string(),
            right: right[i].to_string(),
        });
    }
}

fn push_ne<T: PartialEq + std::fmt::Display>(
    out: &mut Vec<Mismatch>,
    field: &str,
    left_engine: &str,
    right_engine: &str,
    left: T,
    right: T,
) {
    if left != right {
        out.push(Mismatch {
            field: field.into(),
            left_engine: left_engine.into(),
            right_engine: right_engine.into(),
            left: left.to_string(),
            right: right.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConfigSpec, Family, GraphSource, GraphSpec, ModeMatrix};

    fn converge_scenario(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            graph: GraphSpec {
                family: Family::Uniform {
                    vertices: 48,
                    edges: 220,
                    seed: 5,
                },
                symmetrize: false,
                max_weight: 0,
                weight_seed: 0,
                source: GraphSource::Generate,
            },
            algo: AlgoSpec::Bfs { root: 0 },
            config: ConfigSpec::small(),
            fault_seed: 0,
            faults: Vec::new(),
            modes: ModeMatrix::full(),
            expect: Expectation::Converge,
            strict_frontier: None,
            synthetic_bug: false,
            mutations: None,
        }
    }

    #[test]
    fn healthy_scenario_passes_all_engines() {
        let report = run_scenario(&converge_scenario("healthy")).unwrap();
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.observations.len(), 7, "all engines observed");
    }

    #[test]
    fn synthetic_bug_produces_an_iteration_mismatch() {
        let mut s = converge_scenario("synthetic");
        s.synthetic_bug = true;
        let report = run_scenario(&s).unwrap();
        assert!(!report.passed());
        let first = &report.mismatches[0];
        assert_eq!(first.field, "iterations");
        assert_eq!(first.right_engine, engines::STEPPED);
    }

    #[test]
    fn report_rendering_is_deterministic() {
        let mut s = converge_scenario("render");
        s.synthetic_bug = true;
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("MISMATCH"));
    }

    #[test]
    fn malformed_scenarios_are_rejected_not_observed() {
        let mut s = converge_scenario("bad-root");
        s.algo = AlgoSpec::Bfs { root: 5000 };
        assert!(run_scenario(&s).is_err());
        let mut s = converge_scenario("bad-pes");
        s.config.pes = 33;
        assert!(run_scenario(&s).is_err());
    }

    #[test]
    fn empty_mode_matrix_is_a_typed_usage_error() {
        let mut s = converge_scenario("all-modes-off");
        s.modes = ModeMatrix {
            fast_forward: false,
            event_driven: false,
            recording: false,
            graphdyns: false,
            gunrock: false,
        };
        let err = run_scenario(&s).unwrap_err();
        assert!(
            err.contains("mode matrix is empty"),
            "unexpected message: {err}"
        );
        assert!(err.contains("all-modes-off"), "names the scenario: {err}");
        // Any single engine makes the scenario runnable again.
        s.modes.fast_forward = true;
        assert!(run_scenario(&s).is_ok());
    }

    #[test]
    fn event_driven_with_watchdog_disabled_is_a_usage_error() {
        let mut s = converge_scenario("ev-no-watchdog");
        s.config.watchdog_stall_cycles = 0;
        let err = run_scenario(&s).unwrap_err();
        assert!(err.contains("watchdog"), "unexpected message: {err}");
        assert!(err.contains("ev-no-watchdog"), "names the scenario: {err}");
        // Dropping the event-driven mode makes the scenario runnable again.
        s.modes.event_driven = false;
        assert!(run_scenario(&s).is_ok());
    }
}
